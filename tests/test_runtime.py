"""Tests for the event-driven asynchronous runtime (repro.runtime)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import FedAsync, FedAvg, FedBuff, FedCM, make_method
from repro.cli import main as cli_main
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.parallel import resolve_workers
from repro.runtime import (
    AsyncFederatedSimulation,
    ConstantLatency,
    DropoutRetryLatency,
    LognormalLatency,
    ParetoLatency,
    SemiSyncFederatedSimulation,
    VirtualClock,
    make_latency_model,
)
from repro.simulation import (
    CommunicationModel,
    FederatedSimulation,
    FLConfig,
    History,
    TimedRoundRecord,
    load_history,
    save_history,
)
from repro.simulation.context import SimulationContext


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=6, seed=0, scale=0.3
    )


def _model_builder():
    return make_mlp(32, 10, seed=0)


def _tiny_cfg(**kw):
    base = dict(rounds=4, participation=0.5, local_epochs=1, seed=0,
                max_batches_per_round=3, eval_every=2, batch_size=10)
    base.update(kw)
    return FLConfig(**base)


class TestVirtualClock:
    def test_pop_order_and_now(self):
        clock = VirtualClock()
        clock.schedule(3.0, client_id=1)
        clock.schedule(1.0, client_id=2)
        clock.schedule(2.0, client_id=3)
        order = [clock.pop().client_id for _ in range(3)]
        assert order == [2, 3, 1]
        assert clock.now == 3.0

    def test_ties_break_in_schedule_order(self):
        clock = VirtualClock()
        for cid in (7, 8, 9):
            clock.schedule(1.0, client_id=cid)
        assert [clock.pop().client_id for _ in range(3)] == [7, 8, 9]

    def test_schedule_relative_to_now(self):
        clock = VirtualClock()
        clock.schedule(1.0, client_id=0)
        clock.pop()
        ev = clock.schedule(0.5, client_id=1)
        assert ev.time == pytest.approx(1.5)

    def test_invalid_delay(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.schedule(-1.0)
        with pytest.raises(ValueError):
            clock.schedule(float("inf"))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VirtualClock().pop()


class TestLatencyModels:
    def _ctx(self, ds):
        return SimulationContext(_model_builder(), ds, _tiny_cfg())

    def test_requires_bind(self, ds):
        with pytest.raises(RuntimeError):
            ConstantLatency().latency(0, 0)

    def test_constant_prices_data_size(self, ds):
        ctx = self._ctx(ds)
        lat = ConstantLatency().bind(ctx)
        vals = np.array([lat.latency(k, 0) for k in range(ds.num_clients)])
        assert (vals > 0).all()
        # repeat dispatches cost the same under the constant model
        assert lat.latency(0, 0) == lat.latency(0, 5)

    def test_deterministic_across_instances(self, ds):
        ctx = self._ctx(ds)
        a = LognormalLatency(sigma=1.0).bind(ctx)
        b = LognormalLatency(sigma=1.0).bind(ctx)
        for k in range(ds.num_clients):
            assert a.latency(k, 3) == b.latency(k, 3)

    def test_lognormal_device_heterogeneity(self, ds):
        ctx = self._ctx(ds)
        lat = LognormalLatency(sigma=1.0, jitter=0.0).bind(ctx)
        factors = {round(lat.factor(k, 0), 12) for k in range(ds.num_clients)}
        assert len(factors) > 1  # persistent per-device speeds differ

    def test_pareto_heavy_tail(self, ds):
        ctx = self._ctx(ds)
        lat = ParetoLatency(alpha=1.1).bind(ctx)
        factors = [lat.factor(0, i) for i in range(200)]
        assert min(factors) >= 1.0
        assert max(factors) > 5.0  # stragglers exist

    def test_dropout_retry_adds_cost(self, ds):
        ctx = self._ctx(ds)
        inner = ConstantLatency().bind(ctx)
        drop = DropoutRetryLatency(inner="constant", p_drop=0.9, max_retries=3).bind(ctx)
        base = inner.latency(0, 0)
        costs = [drop.latency(0, i) for i in range(50)]
        assert all(c >= base for c in costs)
        assert max(costs) > base  # at least one retry happened

    def test_registry(self):
        assert type(make_latency_model("lognormal")) is LognormalLatency
        with pytest.raises(KeyError):
            make_latency_model("warp-drive")

    def test_rebind_follows_new_seed(self, ds):
        lat = LognormalLatency(sigma=1.0)
        lat.bind(SimulationContext(_model_builder(), ds, _tiny_cfg(seed=0)))
        f0 = lat.factor(0, 0)
        lat.bind(SimulationContext(_model_builder(), ds, _tiny_cfg(seed=1)))
        assert lat.factor(0, 0) != f0
        # an explicit seed survives binding
        lat2 = LognormalLatency(sigma=1.0, seed=123)
        lat2.bind(SimulationContext(_model_builder(), ds, _tiny_cfg(seed=0)))
        assert lat2.seed == 123


class TestAsyncAlgorithms:
    def test_registry_and_comm_profiles(self):
        assert make_method("fedasync").algorithm.name == "fedasync"
        assert make_method("fedbuff", buffer_size=2).algorithm.buffer_size == 2
        cm = CommunicationModel(num_params=100, clients_per_round=4)
        for m in ("fedasync", "fedbuff"):
            assert cm.estimate(m, rounds=3).total > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FedAsync(mixing=0.0)
        with pytest.raises(ValueError):
            FedAsync(staleness_exponent=-1.0)
        with pytest.raises(ValueError):
            FedBuff(buffer_size=0)

    def test_staleness_discount_monotone(self):
        algo = FedAsync(staleness_exponent=0.5)
        w = [algo.staleness_weight(t) for t in range(5)]
        assert w[0] == 1.0
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_sync_fallback_runs_in_plain_engine(self, ds):
        cfg = _tiny_cfg()
        sim = FederatedSimulation(FedBuff(buffer_size=3), _model_builder(), ds, cfg)
        h = sim.run()
        assert len(h.records) == cfg.rounds

    def test_requires_server_apply(self, ds):
        with pytest.raises(TypeError):
            AsyncFederatedSimulation(FedAvg(), _model_builder(), ds, _tiny_cfg())


class TestAsyncEngine:
    def _run(self, ds, algo, workers=None, **kw):
        sim = AsyncFederatedSimulation(
            algo, _model_builder(), ds, _tiny_cfg(),
            latency_model=LognormalLatency(sigma=1.0),
            workers=workers, model_builder=_model_builder, **kw,
        )
        return sim, sim.run()

    def test_history_shape_and_timing(self, ds):
        sim, h = self._run(ds, FedAsync())
        assert len(h.records) == 4  # rounds windows
        assert all(isinstance(r, TimedRoundRecord) for r in h.records)
        times = [r.virtual_time for r in h.records]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert sim.total_virtual_time == times[-1]
        assert not np.isnan(h.final_accuracy)

    def test_same_seed_same_schedule(self, ds):
        _, h1 = self._run(ds, FedAsync())
        _, h2 = self._run(ds, FedAsync())
        assert [r.virtual_time for r in h1.records] == [r.virtual_time for r in h2.records]
        assert [r.staleness for r in h1.records] == [r.staleness for r in h2.records]

    @pytest.mark.parametrize("algo_builder", [FedAsync, lambda: FedBuff(buffer_size=3)])
    def test_workers_do_not_change_results(self, ds, algo_builder):
        """Same seed => identical event order, history and final parameters
        for workers=1 vs workers=4 (mirrors tests/test_parallel.py)."""
        sim1, h1 = self._run(ds, algo_builder())
        sim4, h4 = self._run(ds, algo_builder(), workers=4, algo_builder=algo_builder)
        np.testing.assert_array_equal(sim1.final_params, sim4.final_params)
        assert [r.virtual_time for r in h1.records] == [r.virtual_time for r in h4.records]
        assert [r.staleness for r in h1.records] == [r.staleness for r in h4.records]
        for r1, r4 in zip(h1.records, h4.records):
            np.testing.assert_array_equal(r1.selected, r4.selected)
            if not np.isnan(r1.test_accuracy):
                assert r1.test_accuracy == r4.test_accuracy

    @pytest.mark.filterwarnings("ignore:model has BatchNorm")
    def test_workers_invariance_with_batchnorm_buffers(self):
        """Buffered (BatchNorm) models: workers reset to the initial buffers
        per job, so results stay bit-identical across worker counts."""
        from repro.nn import build_model

        ds_img = load_federated_dataset(
            "svhn-lite", imbalance_factor=0.3, beta=0.3, num_clients=6, seed=0, scale=0.2
        )
        shape = ds_img.info.shape

        def mb():
            return build_model(
                "resnet-lite-18", in_channels=shape[0], image_size=shape[1],
                num_classes=ds_img.num_classes, width=2, seed=0, norm="batch",
            )

        assert mb().buffers  # the point of the test
        cfg = FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2, eval_every=1, batch_size=10)
        finals = {}
        for w in (1, 4):
            sim = AsyncFederatedSimulation(
                FedBuff(buffer_size=3), mb(), ds_img, cfg,
                latency_model=LognormalLatency(sigma=1.0),
                workers=w, model_builder=mb,
                algo_builder=lambda: FedBuff(buffer_size=3),
            )
            sim.run()
            finals[w] = sim.final_params
        np.testing.assert_array_equal(finals[1], finals[4])

    def test_fedbuff_applies_every_k(self, ds):
        sim, h = self._run(ds, FedBuff(buffer_size=3))
        # 4 windows x 3 updates = 12 arrivals; K=3 => 4 server steps
        assert h.records[-1].updates_applied == 4

    def test_staleness_grows_with_concurrency(self, ds):
        _, h_lo = self._run(ds, FedAsync(), concurrency=1)
        _, h_hi = self._run(ds, FedAsync(), concurrency=6)
        assert np.mean([r.staleness for r in h_lo.records]) == 0.0
        assert np.mean([r.staleness for r in h_hi.records]) > 0.0

    def test_lr_schedule_evaluated_per_window(self, ds):
        """The dispatch-seq round index must not distort lr schedules."""
        cfg = _tiny_cfg(lr_schedule=lambda r: 0.5 ** r)
        sim = AsyncFederatedSimulation(
            FedAsync(), _model_builder(), ds, cfg, latency_model=ConstantLatency()
        )
        sched = sim.ctx.config.lr_schedule
        w = sim.window
        # every dispatch within window i sees the base schedule's value at i
        assert sched(0) == 1.0
        assert sched(w - 1) == 1.0
        assert sched(w) == 0.5
        assert sched(3 * w) == 0.5 ** 3

    def test_batchnorm_buffers_tracked_on_every_backend(self):
        """The server-side EMA over arriving clients' BatchNorm statistics
        runs on every backend: buffers ride the job contract, so worker
        pools no longer freeze them (the PR-4 restriction is lifted) and
        the recorded accuracies match the serial run exactly."""
        import warnings as warnings_mod

        from repro.nn import build_model

        ds_img = load_federated_dataset(
            "svhn-lite", imbalance_factor=0.3, beta=0.3, num_clients=6, seed=0, scale=0.2
        )
        shape = ds_img.info.shape

        def mb():
            return build_model(
                "resnet-lite-18", in_channels=shape[0], image_size=shape[1],
                num_classes=ds_img.num_classes, width=2, seed=0, norm="batch",
            )

        buffers = {}
        accs = {}
        for workers in (None, 2):
            with warnings_mod.catch_warnings(record=True) as caught:
                warnings_mod.simplefilter("always")
                sim = AsyncFederatedSimulation(
                    FedAsync(), mb(), ds_img, _tiny_cfg(),
                    latency_model=ConstantLatency(),
                    workers=workers, model_builder=mb, algo_builder=FedAsync,
                )
                assert not caught  # no frozen-buffer warning anywhere
            buf0 = {k: v.copy() for k, v in sim.ctx.model.buffers.items()}
            h = sim.run()
            buffers[workers] = {k: v.copy() for k, v in sim.ctx.model.buffers.items()}
            accs[workers] = h.accuracy
            moved = any(
                not np.array_equal(buffers[workers][k], buf0[k]) for k in buf0
            )
            assert moved  # eval used the EMA estimate, not the initial buffers
        for k in buffers[None]:
            np.testing.assert_array_equal(buffers[None][k], buffers[2][k])
        np.testing.assert_array_equal(accs[None], accs[2])

    def test_default_algo_builder_warns_on_config_mismatch(self, ds):
        """workers>1 replicas default to type(algo)(); non-default
        hyperparameters must be flagged unless the algorithm whitelists
        them as server-side (replica_safe_hyperparams)."""
        import warnings

        class ProxAsync(FedAsync):
            def __init__(self, prox: float = 0.0):
                super().__init__()
                self.prox = prox  # pretend-client-side knob, not whitelisted

        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            AsyncFederatedSimulation(
                ProxAsync(prox=0.1), _model_builder(), ds, _tiny_cfg(),
                workers=2, model_builder=_model_builder,
            )
            assert any("prox" in str(x.message) for x in w)
        # whitelisted server-side knobs (FedAsync.mixing) stay silent, and
        # an explicit algo_builder always silences the check
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            AsyncFederatedSimulation(
                FedAsync(mixing=0.9), _model_builder(), ds, _tiny_cfg(),
                workers=2, model_builder=_model_builder,
            )
            AsyncFederatedSimulation(
                ProxAsync(prox=0.1), _model_builder(), ds, _tiny_cfg(),
                workers=2, model_builder=_model_builder,
                algo_builder=lambda: ProxAsync(prox=0.1),
            )
            assert not w

    def test_time_to_accuracy(self, ds):
        _, h = self._run(ds, FedAsync())
        tta = h.time_to_accuracy(0.0)
        assert tta is not None and tta > 0
        assert h.time_to_accuracy(2.0) is None


class TestAcceptanceMiniature:
    """Async reaches sync-level accuracy in less simulated time (ISSUE 1)."""

    def test_async_matches_sync_accuracy_faster(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.1, beta=0.3,
            num_clients=20, seed=0, scale=0.4,
        )
        cfg = FLConfig(rounds=30, participation=0.25, local_epochs=1, seed=0,
                       max_batches_per_round=6, eval_every=5, batch_size=10)
        lat = lambda: LognormalLatency(sigma=1.0)  # noqa: E731

        sync = SemiSyncFederatedSimulation(
            FedAvg(), make_mlp(32, 10, seed=0), ds, cfg, latency_model=lat()
        )
        h_sync = sync.run()

        for algo in (FedAsync(mixing=0.9), FedBuff(buffer_size=3)):
            asim = AsyncFederatedSimulation(
                algo, make_mlp(32, 10, seed=0), ds, cfg, latency_model=lat()
            )
            h = asim.run()
            # within 2 accuracy points of the synchronous FedAvg baseline...
            assert h.final_accuracy >= h_sync.final_accuracy - 0.02, algo.name
            # ...in less simulated wall-clock time than the straggler-blocked run
            assert asim.total_virtual_time < sync.total_virtual_time, algo.name


class TestSemiSync:
    def test_no_deadline_matches_sync_engine_exactly(self, ds):
        """deadline=None is the synchronous engine plus a virtual clock."""
        for method in ("fedavg", "fedcm"):
            cfg = _tiny_cfg()
            plain = FederatedSimulation(
                make_method(method).algorithm, _model_builder(), ds, cfg
            )
            hp = plain.run()
            semi = SemiSyncFederatedSimulation(
                make_method(method).algorithm, _model_builder(), ds, cfg,
                latency_model=LognormalLatency(sigma=1.0),
            )
            hs = semi.run()
            np.testing.assert_array_equal(plain.final_params, semi.final_params)
            np.testing.assert_array_equal(hp.accuracy, hs.accuracy)
            assert semi.total_virtual_time > 0

    def test_deadline_drops_late_clients(self, ds):
        cfg = _tiny_cfg()
        semi = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, cfg,
            latency_model=ParetoLatency(alpha=1.1), deadline=1e-3,
        )
        h = semi.run()
        dropped = sum(r.extras["n_dropped"] for r in h.records)
        assert dropped > 0
        # at least the fastest client is always kept
        assert all(len(r.selected) >= 1 for r in h.records)
        # when every client misses the deadline the round waits for the
        # kept (fastest) client, so virtual time overruns rounds * deadline
        assert semi.total_virtual_time > cfg.rounds * 1e-3

    def test_late_weight_downweights_instead_of_dropping(self, ds):
        cfg = _tiny_cfg()
        semi = SemiSyncFederatedSimulation(
            FedCM(alpha=0.1), _model_builder(), ds, cfg,
            latency_model=ParetoLatency(alpha=1.1), deadline=1e-3, late_weight=0.5,
        )
        h = semi.run()
        assert sum(r.extras["n_dropped"] for r in h.records) == 0
        assert sum(r.extras["n_late"] for r in h.records) > 0
        assert not np.isnan(h.final_accuracy)


class TestHistorySchemaV2:
    def test_timed_records_round_trip(self, tmp_path, ds):
        sim = AsyncFederatedSimulation(
            FedAsync(), _model_builder(), ds, _tiny_cfg(),
            latency_model=LognormalLatency(),
        )
        h = sim.run()
        h.records[0].extras["vec"] = np.array([1.5, np.nan, np.inf])
        h.records[0].extras["nested"] = {"a": [1, 2.5], "b": float("nan")}
        path = str(tmp_path / "h.json")
        save_history(path, h)
        h2 = load_history(path)
        assert isinstance(h2.records[0], TimedRoundRecord)
        for r, r2 in zip(h.records, h2.records):
            assert r2.virtual_time == r.virtual_time
            assert r2.staleness == r.staleness
            assert r2.concurrency == r.concurrency
            assert r2.updates_applied == r.updates_applied
        vec = h2.records[0].extras["vec"]
        np.testing.assert_array_equal(vec, np.array([1.5, np.nan, np.inf]))
        assert h2.records[0].extras["nested"]["a"] == [1, 2.5]
        assert np.isnan(h2.records[0].extras["nested"]["b"])

    def test_schema_key_written(self, tmp_path):
        h = History(algorithm="fedavg")
        h.records.append(TimedRoundRecord(round=0, test_accuracy=0.5, virtual_time=1.0))
        path = str(tmp_path / "h.json")
        save_history(path, h)
        with open(path) as f:
            payload = json.load(f)
        assert payload["schema"] == 2
        assert payload["records"][0]["kind"] == "timed"

    def test_v1_files_still_load(self, tmp_path):
        payload = {
            "algorithm": "fedavg",
            "records": [
                {
                    "round": 0,
                    "test_accuracy": 0.4,
                    "test_loss": None,
                    "wall_time": 0.1,
                    "selected": [0, 2],
                    "per_class_accuracy": [0.5, None],
                    "extras": {"alpha": 0.3},
                }
            ],
        }
        path = str(tmp_path / "v1.json")
        with open(path, "w") as f:
            json.dump(payload, f)
        h = load_history(path)
        assert type(h.records[0]).__name__ == "RoundRecord"
        assert h.records[0].test_accuracy == 0.4
        assert np.isnan(h.records[0].test_loss)
        assert h.records[0].extras == {"alpha": 0.3}


class TestResolveWorkers:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        assert resolve_workers() == 3

    def test_default_cap(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert 1 <= resolve_workers() <= 8

    def test_invalid(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_MAX_WORKERS", "zero")
        with pytest.raises(ValueError):
            resolve_workers()
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        with pytest.raises(ValueError):
            resolve_workers()


class TestRuntimeCLI:
    def test_runtime_subcommand_smoke(self, tmp_path, capsys):
        hist = str(tmp_path / "h.json")
        ckpt = str(tmp_path / "c.npz")
        rc = cli_main([
            "runtime", "--algorithm", "fedbuff", "--clients", "6", "--rounds", "2",
            "--max-batches", "2", "--eval-every", "1", "--buffer-size", "2",
            "--latency", "lognormal", "--target-accuracy", "0.05",
            "--save-history", hist, "--save-checkpoint", ckpt,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total virtual time" in out
        h = load_history(hist)
        assert isinstance(h.records[0], TimedRoundRecord)

    def test_runtime_semisync_smoke(self):
        rc = cli_main([
            "runtime", "--algorithm", "semisync", "--base-method", "fedavg",
            "--clients", "6", "--rounds", "2", "--max-batches", "2",
            "--eval-every", "1", "--deadline", "0.5", "--latency", "pareto",
        ])
        assert rc == 0
