"""Tests for the theory substrate: bounds and the quadratic testbed."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import (
    QuadraticProblem,
    RateConstants,
    beta_upper_bound,
    convergence_rate_bound,
    lr_condition,
    make_longtail_quadratic,
    run_quadratic_fl,
)


class TestBounds:
    def _c(self, **kw):
        base = dict(L=1.0, delta=10.0, sigma=1.0, n_clients=10, k_steps=20)
        base.update(kw)
        return RateConstants(**base)

    def test_rate_decreases_with_rounds(self):
        c = self._c()
        assert convergence_rate_bound(c, 100) > convergence_rate_bound(c, 10000)

    def test_rate_scales_with_noise(self):
        assert convergence_rate_bound(self._c(sigma=2.0), 100) > convergence_rate_bound(
            self._c(sigma=0.5), 100
        )

    def test_rate_improves_with_clients(self):
        assert convergence_rate_bound(self._c(n_clients=100), 100) < convergence_rate_bound(
            self._c(n_clients=1), 100
        )

    def test_asymptotic_rate_order(self):
        # bound must shrink like 1/sqrt(R) asymptotically
        c = self._c()
        r1, r2 = 10_000, 40_000
        b1, b2 = convergence_rate_bound(c, r1), convergence_rate_bound(c, r2)
        assert b2 < b1
        assert b1 / b2 == pytest.approx(2.0, rel=0.2)  # sqrt(4) = 2

    def test_beta_bound_infinite_without_noise(self):
        assert beta_upper_bound(self._c(sigma=0.0), 100) == float("inf")

    def test_beta_bound_shrinks_with_rounds(self):
        c = self._c()
        assert beta_upper_bound(c, 10000) < beta_upper_bound(c, 100)

    def test_lr_condition_structure(self):
        out = lr_condition(self._c(), rounds=100, eta=1e-4, beta=0.5)
        assert out["satisfied"] in (True, False)
        assert out["eta_k_l"] == pytest.approx(1e-4 * 20 * 1.0)
        assert out["min_bound"] <= out["one"]

    def test_tiny_lr_satisfies(self):
        out = lr_condition(self._c(), rounds=10, eta=1e-9, beta=0.5)
        assert out["satisfied"]

    def test_validation(self):
        with pytest.raises(ValueError):
            RateConstants(L=-1, delta=1, sigma=1, n_clients=1, k_steps=1)
        with pytest.raises(ValueError):
            convergence_rate_bound(self._c(), 0)
        with pytest.raises(ValueError):
            lr_condition(self._c(), 10, eta=0, beta=0.5)

    @settings(max_examples=30, deadline=None)
    @given(r=st.integers(1, 10**6))
    def test_bound_positive(self, r):
        assert convergence_rate_bound(self._c(), r) > 0


class TestQuadraticProblem:
    def test_global_minimum_is_weighted_mean(self):
        p = QuadraticProblem(
            curvature=np.array([1.0, 2.0]),
            minimizers=np.array([[0.0, 0.0], [2.0, 2.0]]),
        )
        np.testing.assert_allclose(p.x_star, [1.0, 1.0])
        np.testing.assert_allclose(p.global_grad(p.x_star), 0.0, atol=1e-12)

    def test_loss_minimised_at_x_star(self):
        p = make_longtail_quadratic(num_clients=10, dim=5, sigma=0.0, seed=0)
        l_star = p.global_loss(p.x_star)
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert p.global_loss(p.x_star + rng.normal(size=5)) > l_star

    def test_grad_noise(self):
        p = QuadraticProblem(
            curvature=np.ones(3), minimizers=np.zeros((2, 3)), sigma=1.0
        )
        g1 = p.grad(0, np.ones(3), np.random.default_rng(0))
        g2 = p.grad(0, np.ones(3), np.random.default_rng(1))
        assert not np.allclose(g1, g2)
        # noiseless path
        g3 = p.grad(0, np.ones(3))
        np.testing.assert_allclose(g3, np.ones(3))

    def test_L_constant(self):
        p = QuadraticProblem(curvature=np.array([0.5, 3.0]), minimizers=np.zeros((1, 2)))
        assert p.L == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadraticProblem(curvature=np.array([-1.0]), minimizers=np.zeros((1, 1)))
        with pytest.raises(ValueError):
            QuadraticProblem(curvature=np.ones(2), minimizers=np.zeros((1, 3)))
        with pytest.raises(ValueError):
            QuadraticProblem(
                curvature=np.ones(2), minimizers=np.zeros((2, 2)), weights=np.array([0.5, 0.6])
            )

    def test_longtail_factory_bias(self):
        p = make_longtail_quadratic(num_clients=20, head_fraction=0.8, seed=0, sigma=0.0)
        # head clients cluster: their pairwise distances are small vs tail spread
        heads = p.minimizers[:16]
        tails = p.minimizers[16:]
        head_spread = np.linalg.norm(heads - heads.mean(0), axis=1).mean()
        tail_spread = np.linalg.norm(tails - tails.mean(0), axis=1).mean()
        assert head_spread < tail_spread


class TestQuadraticFL:
    def test_fedavg_converges(self):
        p = make_longtail_quadratic(num_clients=20, dim=8, sigma=0.1, seed=0)
        x0 = np.full(8, 10.0)  # start far from the optimum
        out = run_quadratic_fl(p, "fedavg", rounds=300, participation=0.5, seed=0, x0=x0)
        assert out["distance"][-1] < 0.1 * np.linalg.norm(x0 - p.x_star)

    def test_fedcm_converges_on_balanced(self):
        # no head bias: momentum behaves
        rng = np.random.default_rng(0)
        p = QuadraticProblem(
            curvature=rng.uniform(0.5, 1.5, size=6),
            minimizers=rng.normal(size=(10, 6)),
            sigma=0.1,
        )
        x0 = np.full(6, 10.0)
        out = run_quadratic_fl(p, "fedcm", rounds=300, participation=0.5, seed=0, x0=x0)
        assert out["distance"][-1] < 0.1 * np.linalg.norm(x0 - p.x_star)

    def test_rate_matches_theory_scaling(self):
        # average gradient norm over R rounds must drop when R quadruples
        p = make_longtail_quadratic(num_clients=20, dim=8, sigma=0.5, seed=1)
        short = run_quadratic_fl(p, "fedavg", rounds=100, participation=0.5, seed=0)
        long = run_quadratic_fl(p, "fedavg", rounds=400, participation=0.5, seed=0)
        assert long["grad_norm_sq"].mean() < short["grad_norm_sq"].mean()

    def test_momentum_smooths_noise(self):
        # steady-state gradient variance: fedcm (EMA) <= fedavg under pure noise
        rng = np.random.default_rng(0)
        p = QuadraticProblem(
            curvature=np.full(4, 1.0),
            minimizers=np.tile(rng.normal(size=4), (10, 1)),  # homogeneous clients
            sigma=1.0,
        )
        avg = run_quadratic_fl(p, "fedavg", rounds=300, participation=0.3, seed=0)
        cm = run_quadratic_fl(p, "fedcm", rounds=300, participation=0.3, seed=0)
        assert cm["grad_norm_sq"][-100:].mean() < avg["grad_norm_sq"][-100:].mean()

    def test_adaptive_alpha_callback(self):
        p = make_longtail_quadratic(num_clients=10, dim=4, seed=0)
        seen = []

        def schedule(r, _):
            seen.append(r)
            return 0.5

        run_quadratic_fl(p, "fedwcm", rounds=5, adaptive_alpha_fn=schedule, seed=0)
        assert seen == list(range(5))

    def test_unknown_method(self):
        p = make_longtail_quadratic(num_clients=5, dim=3, seed=0)
        with pytest.raises(ValueError):
            run_quadratic_fl(p, "adam")
