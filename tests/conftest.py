"""Shared pytest configuration for the repro test suite."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "net: federation-service tests (repro.net) that open localhost sockets "
        "or spawn worker subprocesses",
    )
