"""Old-vs-new engine equivalence, trickle-in accounting, per-dispatch sampling.

The event-core refactor (:mod:`repro.runtime.events`) re-founded all four
engine kinds on one loop.  For the pre-existing knob space the histories
must be *bit-identical* to the retired loops — pinned here against frozen
verbatim copies of the old code (``tests/_legacy_engines.py``) across
engine kinds x methods x seeds.  The new knobs (trickle-in late policy,
async per-dispatch samplers, stateful methods under async) get their own
behavioural tests below.
"""

from __future__ import annotations

import numpy as np
import pytest

from _legacy_engines import legacy_async_run, legacy_semisync_run, legacy_sync_run
from repro.algorithms import AsyncAdapter, make_method
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.runtime import (
    AsyncFederatedSimulation,
    ConcurrencyController,
    DeadlineController,
    FastFirstSampler,
    LatencyModel,
    LognormalLatency,
    LongIdleSampler,
    SemiSyncFederatedSimulation,
    UtilitySampler,
)
from repro.simulation import FederatedSimulation, FLConfig

SEEDS = (0, 1)


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=6,
        seed=0, scale=0.3,
    )


def _model(seed=0):
    return make_mlp(32, 10, seed=seed)


def _cfg(seed=0, **kw):
    base = dict(rounds=4, participation=0.5, local_epochs=1, seed=seed,
                max_batches_per_round=3, eval_every=2, batch_size=10)
    base.update(kw)
    return FLConfig(**base)


def _eq(a, b) -> bool:
    """Exact equality, NaN == NaN, arrays element-wise."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b), equal_nan=False) or (
            np.asarray(a).shape == np.asarray(b).shape
            and bool(np.all((np.asarray(a) == np.asarray(b))
                            | (np.isnan(np.asarray(a, dtype=float))
                               & np.isnan(np.asarray(b, dtype=float)))))
    )
    if isinstance(a, float) and isinstance(b, float) and np.isnan(a) and np.isnan(b):
        return True
    return a == b


def assert_history_equal(new, old):
    """Bit-identical histories, wall_time excluded (it measures real time)."""
    assert new.algorithm == old.algorithm
    assert len(new.records) == len(old.records)
    for rn, ro in zip(new.records, old.records):
        assert type(rn) is type(ro)
        for f in ("round", "test_accuracy", "test_loss", "virtual_time",
                  "staleness", "concurrency", "updates_applied"):
            if hasattr(ro, f):
                assert _eq(getattr(rn, f), getattr(ro, f)), f
        assert _eq(rn.selected, ro.selected)
        if ro.per_class_accuracy is not None:
            assert _eq(rn.per_class_accuracy, ro.per_class_accuracy)
        assert set(rn.extras) == set(ro.extras)
        for k, v in ro.extras.items():
            assert _eq(rn.extras[k], v), k


class TestSyncEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "scaffold", "fedcm"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical(self, ds, method, seed):
        b = make_method(method)
        new = FederatedSimulation(
            b.algorithm, _model(seed), ds, _cfg(seed),
            loss_builder=b.loss_builder, sampler_builder=b.sampler_builder,
        ).run()
        b2 = make_method(method)
        old = legacy_sync_run(
            b2.algorithm, _model(seed), ds, _cfg(seed),
            loss_builder=b2.loss_builder, sampler_builder=b2.sampler_builder,
        )
        assert_history_equal(new, old)


class TestSemiSyncEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "scaffold", "fedcm"])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("deadline,late_weight", [
        (None, 0.0), (0.05, 0.0), (0.05, 0.5),
    ])
    def test_bit_identical(self, ds, method, seed, deadline, late_weight):
        new = SemiSyncFederatedSimulation(
            make_method(method).algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            deadline=deadline, late_weight=late_weight,
        ).run()
        old = legacy_semisync_run(
            make_method(method).algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            deadline=deadline, late_weight=late_weight,
        )
        assert_history_equal(new, old)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adaptive_deadline_bit_identical(self, ds, seed):
        new = SemiSyncFederatedSimulation(
            make_method("fedavg").algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            deadline=DeadlineController(target_drop_rate=0.3),
        ).run()
        old = legacy_semisync_run(
            make_method("fedavg").algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            deadline_controller=DeadlineController(target_drop_rate=0.3),
        )
        assert_history_equal(new, old)


class TestAsyncEquivalence:
    @pytest.mark.parametrize("method,kwargs", [
        ("fedasync", {"mixing": 0.9}), ("fedbuff", {"buffer_size": 3}),
    ])
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("adaptive", [False, True])
    def test_bit_identical(self, ds, method, kwargs, seed, adaptive):
        ctrl = ConcurrencyController(staleness_budget=2.0) if adaptive else None
        new = AsyncFederatedSimulation(
            make_method(method, **kwargs).algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency_controller=ctrl,
        ).run()
        ctrl = ConcurrencyController(staleness_budget=2.0) if adaptive else None
        old = legacy_async_run(
            make_method(method, **kwargs).algorithm, _model(seed), ds, _cfg(seed),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency_controller=ctrl,
        )
        assert_history_equal(new, old)


class FixedLatency(LatencyModel):
    """Each client responds in a hand-set constant time (test harness)."""

    name = "fixed"

    def __init__(self, values, **kwargs) -> None:
        super().__init__(**kwargs)
        self.values = np.asarray(values, dtype=float)

    def latency(self, client_id: int, dispatch_idx: int) -> float:
        return float(self.values[client_id])


class TestTrickleIn:
    """Accounting of the semi-sync ``late_policy='trickle'`` path."""

    def _run(self, ds, lats, deadline, rounds=3, **kw):
        sim = SemiSyncFederatedSimulation(
            make_method("fedavg").algorithm, _model(), ds,
            _cfg(rounds=rounds, participation=1.0, eval_every=1),
            latency_model=FixedLatency(lats),
            deadline=deadline, late_policy="trickle", **kw,
        )
        return sim, sim.run()

    def test_late_update_merges_into_next_round(self, ds):
        # client 5 (1.5s) misses every 1.0s deadline and arrives mid-next
        # round; everyone else is on time
        lats = [0.2, 0.3, 0.4, 0.5, 0.6, 1.5]
        sim, h = self._run(ds, lats, deadline=1.0)
        r0, r1, r2 = h.records
        assert r0.extras["n_late"] == 1
        assert r0.extras["n_trickled_in"] == 0
        assert r0.extras["n_pending"] == 1
        assert 5 not in r0.selected
        # round 1 merges round 0's straggler on top of its own cohort
        assert r1.extras["n_trickled_in"] == 1
        assert list(r1.selected).count(5) == 1
        assert len(r1.selected) == 6  # 5 on-time + 1 trickled
        # the final round still has round 2's own straggler in flight
        assert r2.extras["n_abandoned"] == 1
        assert sim.total_virtual_time == pytest.approx(3.0)

    def test_never_arriving_update_is_abandoned_not_merged(self, ds):
        lats = [0.2, 0.3, 0.4, 0.5, 0.6, 50.0]
        _, h = self._run(ds, lats, deadline=1.0)
        assert all(r.extras["n_trickled_in"] == 0 for r in h.records)
        assert h.records[-1].extras["n_abandoned"] == 3  # one per round
        # no record was dropped and nothing counts as "dropped"
        assert all(r.extras["n_dropped"] == 0 for r in h.records)

    def test_trickle_differs_from_downweight(self, ds):
        lats = [0.2, 0.3, 0.4, 0.5, 0.6, 1.5]
        sim_t, _ = self._run(ds, lats, deadline=1.0)
        sim_d = SemiSyncFederatedSimulation(
            make_method("fedavg").algorithm, _model(), ds,
            _cfg(rounds=3, participation=1.0, eval_every=1),
            latency_model=FixedLatency(lats), deadline=1.0, late_weight=0.0,
        )
        sim_d.run()
        assert not np.array_equal(sim_t.final_params, sim_d.final_params)

    def test_clock_stops_at_final_close(self, ds):
        lats = [0.2, 0.3, 0.4, 0.5, 0.6, 50.0]
        sim, _ = self._run(ds, lats, deadline=1.0)
        # abandoned completions must not advance the clock past the close
        assert sim.total_virtual_time == pytest.approx(3.0)

    def test_trickle_rejects_late_weight(self, ds):
        with pytest.raises(ValueError, match="late_weight only applies"):
            self._run(ds, [0.1] * 6, deadline=1.0, late_weight=0.5)


class TestAsyncPerDispatchSampling:
    def _run(self, ds, sampler, lats=None, **kw):
        lat = FixedLatency(lats) if lats is not None else LognormalLatency(sigma=1.0)
        sim = AsyncFederatedSimulation(
            make_method("fedasync", mixing=0.9).algorithm, _model(), ds, _cfg(),
            latency_model=lat, sampler=sampler, **kw,
        )
        return sim, sim.run()

    def test_fast_first_prefers_fast_clients(self, ds):
        lats = [0.1, 1.0, 1.0, 1.0, 1.0, 5.0]
        _, h = self._run(ds, FastFirstSampler(power=4.0), lats=lats,
                         concurrency=2, max_updates=24)
        counts = np.bincount(
            np.concatenate([r.selected for r in h.records]), minlength=6
        )
        assert counts[0] == counts.max()  # the fast client dominates
        assert counts[0] > counts[5]

    def test_long_idle_rotates_through_all_clients(self, ds):
        _, h = self._run(ds, LongIdleSampler(), concurrency=1, max_updates=12)
        order = list(np.concatenate([r.selected for r in h.records]))
        # first pass touches every client before anyone repeats
        assert sorted(order[:6]) == list(range(6))

    def test_sampler_run_is_deterministic(self, ds):
        runs = []
        for _ in range(2):
            sim, h = self._run(ds, FastFirstSampler(power=2.0))
            runs.append((sim.final_params, [r.selected for r in h.records]))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        for a, b in zip(runs[0][1], runs[1][1]):
            np.testing.assert_array_equal(a, b)

    def test_utility_sampler_receives_loss_feedback(self, ds):
        sampler = UtilitySampler()
        self._run(ds, sampler)
        assert sampler._loss_seen is not None and sampler._loss_seen.any()

    def test_picks_only_idle_clients(self, ds):
        # with concurrency < clients a client never overlaps itself: its
        # completions arrive strictly after its previous dispatch completes
        sim, _ = self._run(ds, FastFirstSampler(power=4.0),
                           lats=[0.1, 1.0, 1.0, 1.0, 1.0, 5.0], concurrency=3)
        assert sim.total_virtual_time > 0.0  # ran through the event loop

    def test_non_time_aware_sampler_rejected(self, ds):
        with pytest.raises(TypeError, match="pick_next"):
            AsyncFederatedSimulation(
                make_method("fedasync").algorithm, _model(), ds, _cfg(),
                sampler=object(),
            )


class TestStatefulAsync:
    def _adapter(self, rule="fedbuff", base="scaffold", **rule_kw):
        return AsyncAdapter(
            make_method(base).algorithm, make_method(rule, **rule_kw).algorithm
        )

    def test_scaffold_under_fedbuff_runs_and_learns_state(self, ds):
        algo = self._adapter(buffer_size=3)
        sim = AsyncFederatedSimulation(
            algo, _model(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0),
        )
        h = sim.run()
        assert len(h.records) == 4
        # control variates moved: some client state is non-zero ...
        assert np.abs(algo.base._ci).sum() > 0
        # ... and the server variate absorbed arrivals
        assert np.abs(algo.base._c).sum() > 0

    def test_scaffold_under_fedasync_deterministic(self, ds):
        finals = []
        for _ in range(2):
            algo = self._adapter(rule="fedasync", mixing=0.9)
            sim = AsyncFederatedSimulation(
                algo, _model(), ds, _cfg(),
                latency_model=LognormalLatency(sigma=1.0),
            )
            sim.run()
            finals.append(sim.final_params)
        np.testing.assert_array_equal(finals[0], finals[1])

    def test_state_snapshot_at_dispatch_commit_at_completion(self, ds):
        """Oversubscribed clients train from their committed state, not from
        a concurrently in-flight one: with concurrency > clients both
        dispatches of a client may overlap, and the run must stay
        deterministic and finish."""
        algo = self._adapter(buffer_size=2)
        sim = AsyncFederatedSimulation(
            algo, _model(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=9,  # > 6 clients: forces overlap
        )
        h = sim.run()
        assert h.records  # completed without error

    def test_stateful_method_runs_on_worker_pool(self, ds):
        """The PR-4 serial-only restriction is lifted: packed client state
        rides the job contract, so SCAFFOLD under FedBuff produces the same
        history on the process pool as serially (full matrix in
        tests/test_backends.py)."""
        histories = {}
        finals = {}
        for workers in (None, 2):
            algo = self._adapter(buffer_size=3)
            sim = AsyncFederatedSimulation(
                algo, _model(), ds, _cfg(),
                latency_model=LognormalLatency(sigma=1.0),
                workers=workers, model_builder=_model,
                algo_builder=lambda: self._adapter(buffer_size=3),
            )
            histories[workers] = sim.run()
            finals[workers] = sim.final_params
        np.testing.assert_array_equal(finals[None], finals[2])
        assert_history_equal(histories[2], histories[None])

    def test_feddyn_under_fedbuff_runs(self, ds):
        algo = self._adapter(base="feddyn", buffer_size=3)
        sim = AsyncFederatedSimulation(
            algo, _model(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0),
        )
        sim.run()
        assert np.abs(algo.base._h).sum() > 0

    def test_adapter_rejects_async_rule_as_base(self):
        with pytest.raises(ValueError, match="already staleness-aware"):
            AsyncAdapter(
                make_method("fedasync").algorithm, make_method("fedbuff").algorithm
            )

    @pytest.mark.parametrize(
        "name", ["fedcm", "fedwcm", "mofedsam", "fedsmoo", "fedlesam"]
    )
    def test_adapter_rejects_aggregate_broadcast_methods(self, name):
        """Methods whose client rule reads state only aggregate() refreshes
        (FedCM's Delta, FedSMOO's mu, FedLESAM's x_prev) would silently train
        with that state frozen under an async rule — refuse loudly."""
        with pytest.raises(ValueError, match="aggregate"):
            AsyncAdapter(
                make_method(name).algorithm, make_method("fedbuff").algorithm
            )
