"""Tests for the extension modules: server optimizers, FedWCM-HE,
serialization, sampling strategies, viz and the CLI."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.algorithms import (
    FedAdam,
    FedNova,
    FedWCM,
    FedWCMEncrypted,
    FedYogi,
    make_method,
)
from repro.data import load_federated_dataset
from repro.he import BFVParams
from repro.nn import make_mlp
from repro.simulation import (
    FederatedSimulation,
    FLConfig,
    History,
    RoundRecord,
    RoundRobinSampler,
    ScoreBiasedSampler,
    UniformSampler,
    load_checkpoint,
    load_history,
    save_checkpoint,
    save_history,
)
from repro.viz import ascii_barchart, ascii_lineplot, history_plot


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.2, beta=0.2, num_clients=6, seed=0, scale=0.3
    )


def _cfg(**kw):
    base = dict(rounds=3, participation=0.5, local_epochs=1, eval_every=1, seed=0,
                max_batches_per_round=3)
    base.update(kw)
    return FLConfig(**base)


class TestServerOptimizers:
    @pytest.mark.parametrize("cls", [FedAdam, FedYogi, FedNova])
    def test_runs_and_finite(self, ds, cls):
        model = make_mlp(32, 10, seed=0)
        h = FederatedSimulation(cls(), model, ds, _cfg()).run()
        assert np.isfinite(h.final_accuracy)

    def test_adam_moments_updated(self, ds):
        algo = FedAdam()
        model = make_mlp(32, 10, seed=0)
        FederatedSimulation(algo, model, ds, _cfg()).run()
        assert np.linalg.norm(algo._m) > 0
        assert np.any(algo._v != algo.tau**2)

    def test_yogi_second_moment_sign_rule(self):
        y = FedYogi()

        class Ctx:
            dim = 3
        y.setup(Ctx())
        g = np.array([1.0, 0.0, 2.0])
        v0 = y._v.copy()
        y._second_moment(g)
        # entries where g^2 > v must increase, zero-gradient entries unchanged
        assert y._v[0] > v0[0]
        assert y._v[1] == v0[1]

    def test_fednova_normalises_step_counts(self, ds):
        # same displacement, different step counts -> same effective update
        algo = FedNova()
        model = make_mlp(32, 10, seed=0)
        sim = FederatedSimulation(algo, model, ds, _cfg())
        ctx = sim.ctx
        from repro.algorithms.base import ClientUpdate

        d = np.ones(ctx.dim)
        u_fast = ClientUpdate(client_id=0, displacement=d, n_samples=10, n_batches=1)
        u_slow = ClientUpdate(client_id=1, displacement=5 * d, n_samples=10, n_batches=5)
        x0 = np.zeros(ctx.dim)
        x1 = algo.aggregate(ctx, 0, np.array([0, 1]), [u_fast, u_slow], x0)
        # both clients apply d per step; tau_eff = 3, normalised mean = d
        np.testing.assert_allclose(x1, -3.0 * d)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            FedAdam(server_lr=0)
        with pytest.raises(ValueError):
            FedAdam(beta1=1.0)
        with pytest.raises(ValueError):
            FedAdam(tau=0)


class TestFedWCMEncrypted:
    def test_trajectory_matches_plain_fedwcm(self, ds):
        """The HE protocol is exact, so training must be bit-identical."""
        small = BFVParams(n=256, t=1 << 16, q_bits=40)
        h_plain = FederatedSimulation(
            FedWCM(), make_mlp(32, 10, seed=0), ds, _cfg()
        ).run()
        h_he = FederatedSimulation(
            FedWCMEncrypted(bfv_params=small), make_mlp(32, 10, seed=0), ds, _cfg()
        ).run()
        np.testing.assert_array_equal(h_plain.accuracy, h_he.accuracy)

    def test_report_available(self, ds):
        algo = FedWCMEncrypted(bfv_params=BFVParams(n=256, t=1 << 16, q_bits=40))
        FederatedSimulation(algo, make_mlp(32, 10, seed=0), ds, _cfg()).run()
        assert algo.report is not None
        np.testing.assert_array_equal(
            algo.report.global_counts, ds.client_counts.sum(axis=0)
        )

    def test_paillier_backend(self, ds):
        algo = FedWCMEncrypted(scheme="paillier")
        h = FederatedSimulation(algo, make_mlp(32, 10, seed=0), ds, _cfg()).run()
        assert np.isfinite(h.final_accuracy)

    def test_registry_entry(self):
        assert make_method("fedwcm-he").name == "fedwcm-he"


class TestSerialization:
    def test_checkpoint_roundtrip(self, ds, tmp_path):
        model = make_mlp(32, 10, seed=0)
        sim = FederatedSimulation(make_method("fedavg").algorithm, model, ds, _cfg())
        sim.run()
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, sim.final_params, sim.ctx.spec, round_idx=2)
        x, meta = load_checkpoint(path, spec=sim.ctx.spec)
        np.testing.assert_array_equal(x, sim.final_params)
        assert meta["round"] == 2

    def test_checkpoint_layout_mismatch(self, tmp_path):
        m1 = make_mlp(8, 3, seed=0)
        m2 = make_mlp(9, 3, seed=0)
        from repro.utils import flatten_params

        f1, s1 = flatten_params(m1.params)
        _, s2 = flatten_params(m2.params)
        path = str(tmp_path / "c.npz")
        save_checkpoint(path, f1, s1)
        with pytest.raises(ValueError):
            load_checkpoint(path, spec=s2)

    def test_history_roundtrip(self, tmp_path):
        h = History(algorithm="fedwcm")
        h.records.append(
            RoundRecord(
                round=0,
                test_accuracy=0.5,
                selected=np.array([1, 2]),
                per_class_accuracy=np.array([0.1, np.nan]),
                extras={"alpha": 0.3},
            )
        )
        h.records.append(RoundRecord(round=1))  # NaN accuracy
        path = str(tmp_path / "h.json")
        save_history(path, h)
        back = load_history(path)
        assert back.algorithm == "fedwcm"
        assert back.records[0].test_accuracy == 0.5
        assert back.records[0].extras["alpha"] == 0.3
        assert np.isnan(back.records[1].test_accuracy)
        assert np.isnan(back.records[0].per_class_accuracy[1])

    def test_history_is_valid_json(self, tmp_path):
        h = History(algorithm="x")
        h.records.append(RoundRecord(round=0, test_accuracy=float("nan")))
        path = str(tmp_path / "h.json")
        save_history(path, h)
        with open(path) as f:
            json.load(f)  # must not contain bare NaN tokens


class TestSamplingStrategies:
    def _ctx(self, ds):
        model = make_mlp(32, 10, seed=0)
        sim = FederatedSimulation(make_method("fedavg").algorithm, model, ds, _cfg())
        return sim.ctx

    def test_uniform_matches_builtin(self, ds):
        ctx = self._ctx(ds)
        np.testing.assert_array_equal(UniformSampler()(ctx, 4), ctx.sample_clients(4))

    def test_score_biased_prefers_scarce_clients(self, ds):
        ctx = self._ctx(ds)
        sampler = ScoreBiasedSampler(temperature=0.02)
        from repro.core import client_scores

        scores = client_scores(ds.client_counts.astype(float))
        top = int(np.argmax(scores))
        hits = sum(top in sampler(ctx, r) for r in range(40))
        base = sum(top in ctx.sample_clients(r) for r in range(40))
        assert hits >= base  # biased sampling selects the scarce client more

    def test_round_robin_covers_all_clients(self, ds):
        ctx = self._ctx(ds)
        seen = set()
        for r in range(10):
            seen.update(RoundRobinSampler()(ctx, r).tolist())
        assert seen == set(range(ds.num_clients))

    def test_engine_accepts_custom_sampler(self, ds):
        model = make_mlp(32, 10, seed=0)
        h = FederatedSimulation(
            make_method("fedavg").algorithm, model, ds, _cfg(),
            client_sampler=RoundRobinSampler(),
        ).run()
        np.testing.assert_array_equal(h.records[0].selected, [0, 1, 2])


class TestViz:
    def test_lineplot_renders(self):
        out = ascii_lineplot({"a": ([0, 1, 2], [0.1, 0.5, 0.9])}, title="t")
        assert "t" in out and "o" in out

    def test_lineplot_handles_nan(self):
        out = ascii_lineplot({"a": ([0, 1], [0.5, float("nan")])})
        assert "0.500" in out

    def test_barchart(self):
        out = ascii_barchart({"x": 1.0, "y": 0.5}, width=10)
        assert out.count("#") == 15

    def test_barchart_nan(self):
        out = ascii_barchart({"x": float("nan")})
        assert "nan" in out

    def test_history_plot(self):
        h = History(algorithm="a")
        h.records.append(RoundRecord(round=0, test_accuracy=0.3))
        h.records.append(RoundRecord(round=1, test_accuracy=0.6))
        out = history_plot({"a": h})
        assert "o" in out


class TestCLI:
    def test_methods_command(self, capsys):
        from repro.cli import main

        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "fedwcm" in out

    def test_datasets_command(self, capsys):
        from repro.cli import main

        assert main(["datasets"]) == 0
        assert "cifar10-lite" in capsys.readouterr().out

    def test_run_command_with_saving(self, tmp_path, capsys):
        from repro.cli import main

        hist = str(tmp_path / "h.json")
        ckpt = str(tmp_path / "c.npz")
        rc = main([
            "run", "--method", "fedavg", "--rounds", "2", "--clients", "4",
            "--participation", "0.5", "--local-epochs", "1", "--eval-every", "1",
            "--save-history", hist, "--save-checkpoint", ckpt,
        ])
        assert rc == 0
        assert os.path.exists(hist) and os.path.exists(ckpt)
        back = load_history(hist)
        assert len(back.records) == 2

    def test_compare_unknown_method(self, capsys):
        from repro.cli import main

        assert main(["compare", "--methods", "fedxyz", "--rounds", "1"]) == 2
