"""Hypothesis property tests on core invariants across modules.

These complement the per-module unit suites with randomized structural
properties: linearity of backprop, invariances of losses/softmax, momentum
algebra, partition conservation, HE additivity at scale.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GlobalMomentum, adaptive_alpha, softmax_weights
from repro.data import longtail_counts, partition_balanced_dirichlet
from repro.nn import CrossEntropyLoss, Dense, PriorCELoss, Sequential, ReLU
from repro.nn.functional import softmax
from repro.utils import flatten_params, unflatten_params

FLOATS = st.floats(-3, 3, allow_nan=False)


class TestBackpropProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), scale=st.floats(0.1, 5.0))
    def test_backward_is_linear_in_upstream_gradient(self, seed, scale):
        """backward(c * g) == c * backward(g) for linear+ReLU nets with a
        fixed activation pattern."""
        rng = np.random.default_rng(seed)
        m = Sequential(Dense(5, 4, rng), ReLU(), Dense(4, 3, rng))
        x = rng.normal(size=(6, 5))
        m.forward(x, train=True)
        g = rng.normal(size=(6, 3))
        m.zero_grad()
        dx1 = m.backward(g).copy()
        gw1 = {k: v.copy() for k, v in m.grads.items()}
        m.zero_grad()
        dx2 = m.backward(scale * g)
        np.testing.assert_allclose(dx2, scale * dx1, rtol=1e-10, atol=1e-12)
        for k in gw1:
            np.testing.assert_allclose(m.grads[k], scale * gw1[k], rtol=1e-10, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_gradient_accumulates_across_backwards(self, seed):
        rng = np.random.default_rng(seed)
        m = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        g = rng.normal(size=(5, 3))
        m.forward(x, train=True)
        m.zero_grad()
        m.backward(g)
        once = m.grads["W"].copy()
        m.backward(g)
        np.testing.assert_allclose(m.grads["W"], 2 * once, rtol=1e-12)


class TestSoftmaxLossProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        logits=st.lists(st.lists(FLOATS, min_size=4, max_size=4), min_size=2, max_size=8),
        shift=FLOATS,
    )
    def test_softmax_shift_invariance(self, logits, shift):
        z = np.array(logits)
        np.testing.assert_allclose(softmax(z), softmax(z + shift), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        logits=st.lists(st.lists(FLOATS, min_size=3, max_size=3), min_size=2, max_size=8),
        shift=FLOATS,
    )
    def test_ce_gradient_shift_invariance(self, logits, shift):
        z = np.array(logits)
        y = np.arange(z.shape[0]) % 3
        _, g1 = CrossEntropyLoss()(z, y)
        _, g2 = CrossEntropyLoss()(z + shift, y)
        np.testing.assert_allclose(g1, g2, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_ce_gradient_rows_sum_to_zero(self, seed):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=(6, 4))
        y = rng.integers(0, 4, 6)
        _, g = CrossEntropyLoss()(z, y)
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_prior_ce_reduces_loss_on_prior_consistent_labels(self, seed):
        """Predicting the prior's argmax is cheaper under PriorCE than CE
        when the label matches the most frequent class."""
        rng = np.random.default_rng(seed)
        prior = np.array([0.7, 0.2, 0.1])
        z = np.zeros((4, 3))  # uninformative logits
        y_head = np.zeros(4, dtype=int)
        l_ce, _ = CrossEntropyLoss()(z, y_head)
        l_prior, _ = PriorCELoss(prior)(z, y_head)
        assert l_prior < l_ce  # prior carries the head class for free


class TestMomentumAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 500),
        m=st.integers(1, 8),
        dim=st.integers(1, 20),
    )
    def test_update_is_convex_combination(self, seed, m, dim):
        """||Delta|| <= max_k ||g_k|| for weights on the simplex."""
        rng = np.random.default_rng(seed)
        g = rng.normal(size=(m, dim))
        w = rng.dirichlet(np.ones(m))
        gm = GlobalMomentum(dim=dim)
        delta = gm.update(g, w)
        assert np.linalg.norm(delta) <= np.linalg.norm(g, axis=1).max() + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        d=st.floats(0, 1),
        c=st.integers(2, 50),
        q1=st.floats(0, 2),
        q2=st.floats(0, 2),
    )
    def test_alpha_monotone_in_q(self, d, c, q1, q2):
        lo, hi = sorted((q1, q2))
        assert adaptive_alpha(d, c, lo) <= adaptive_alpha(d, c, hi) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        scores=st.lists(st.floats(-2, 2), min_size=2, max_size=10),
        t1=st.floats(0.01, 10),
        t2=st.floats(0.01, 10),
    )
    def test_weight_entropy_monotone_in_temperature(self, scores, t1, t2):
        """Higher temperature never decreases the weight entropy."""
        s = np.array(scores)
        lo, hi = sorted((t1, t2))
        def entropy(t):
            w = softmax_weights(s, t)
            w = np.clip(w, 1e-15, 1)
            return float(-(w * np.log(w)).sum())
        assert entropy(lo) <= entropy(hi) + 1e-9


class TestDataProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n_max=st.integers(20, 500),
        c=st.integers(2, 20),
        imf=st.floats(0.01, 1.0),
        k=st.integers(2, 10),
        beta=st.floats(0.05, 5.0),
        seed=st.integers(0, 100),
    )
    def test_pipeline_conserves_samples(self, n_max, c, imf, k, beta, seed):
        counts = longtail_counts(n_max, c, imf)
        labels = np.repeat(np.arange(c), counts)
        if len(labels) < k:
            return
        parts = partition_balanced_dirichlet(labels, k, beta, np.random.default_rng(seed))
        assert sum(len(p) for p in parts) == len(labels)
        cat = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(cat, np.arange(len(labels)))


class TestFlattenProperties:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_flatten_is_isometric(self, seed):
        """L2 norm is preserved by flatten (it is a permutation-free
        concatenation)."""
        rng = np.random.default_rng(seed)
        tree = {
            "a": rng.normal(size=(3, 2)),
            "b": rng.normal(size=(4,)),
        }
        flat, spec = flatten_params(tree)
        norm_tree = np.sqrt(sum(float((v**2).sum()) for v in tree.values()))
        assert np.isclose(np.linalg.norm(flat), norm_tree)
        back = unflatten_params(flat, spec)
        for k, v in tree.items():
            np.testing.assert_array_equal(back[k], v)
