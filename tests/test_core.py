"""Unit + property tests for the FedWCM core (Eq. 3, 4, 5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GlobalMomentum,
    adaptive_alpha,
    client_scores,
    compute_temperature,
    global_distribution,
    l1_discrepancy,
    scarcity_weights,
    score_ratio,
    softmax_weights,
)


class TestScoring:
    def test_global_distribution(self):
        counts = np.array([[10, 0], [0, 30]])
        np.testing.assert_allclose(global_distribution(counts), [0.25, 0.75])

    def test_global_distribution_validates(self):
        with pytest.raises(ValueError):
            global_distribution(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            global_distribution(np.zeros(3))

    def test_signed_scores_rank_tail_clients_higher(self):
        # global: class 0 head (90), class 1 tail (10); uniform target
        counts = np.array(
            [
                [45, 0],  # head-only client
                [45, 0],  # head-only client
                [0, 10],  # tail-only client
            ]
        )
        s = client_scores(counts, mode="signed")
        assert s[2] > s[0]  # tail client scores higher (paper semantics)
        assert s[0] == s[1]

    def test_abs_mode_is_literal_eq3(self):
        counts = np.array([[45, 0], [0, 10]])
        p = global_distribution(counts)
        w = np.abs(0.5 - p)
        expected0 = w[0]  # all mass in class 0
        s = client_scores(counts, mode="abs")
        assert np.isclose(s[0], expected0)

    def test_balanced_global_gives_zero_signed_scores(self):
        counts = np.array([[10, 10], [10, 10]])
        s = client_scores(counts, mode="signed")
        np.testing.assert_allclose(s, 0.0, atol=1e-12)

    def test_custom_target_dist(self):
        counts = np.array([[10, 10], [10, 10]])
        s = client_scores(counts, target_dist=np.array([0.9, 0.1]), mode="signed")
        # target says class 0 should dominate; both clients are 50/50 so
        # both deviate identically
        assert np.isclose(s[0], s[1])
        assert abs(s[0]) > 0

    def test_empty_client_scores_zero(self):
        counts = np.array([[10, 10], [0, 0]])
        s = client_scores(counts)
        assert s[1] == 0.0

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            scarcity_weights(np.array([0.5, 0.5]), mode="bogus")

    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(
            st.lists(st.integers(0, 100), min_size=3, max_size=3),
            min_size=2,
            max_size=10,
        )
    )
    def test_scores_finite(self, counts):
        m = np.array(counts)
        if m.sum() == 0:
            return
        s = client_scores(m)
        assert np.all(np.isfinite(s))


class TestWeighting:
    def test_l1_discrepancy_range(self):
        assert l1_discrepancy(np.array([0.5, 0.5])) == 0.0
        d = l1_discrepancy(np.array([0.99, 0.01]))
        assert 0 < d < 1

    def test_temperature_inverse_to_imbalance(self):
        t_balanced = compute_temperature(np.full(10, 0.1))
        skew = np.array([0.7] + [0.3 / 9] * 9)
        t_skewed = compute_temperature(skew)
        assert t_balanced > t_skewed  # more imbalance -> lower temperature

    def test_temperature_clipping(self):
        t = compute_temperature(np.full(10, 0.1), t_min=0.5, t_max=2.0)
        assert 0.5 <= t <= 2.0

    def test_softmax_weights_sum_to_one(self):
        w = softmax_weights(np.array([0.1, -0.2, 0.5]), 1.0)
        assert np.isclose(w.sum(), 1.0)
        assert np.all(w > 0)

    def test_low_temperature_sharpens(self):
        s = np.array([0.0, 1.0])
        w_hot = softmax_weights(s, 10.0)
        w_cold = softmax_weights(s, 0.1)
        assert w_cold[1] > w_hot[1]
        assert w_cold[1] > 0.99

    def test_uniform_scores_give_uniform_weights(self):
        w = softmax_weights(np.full(5, 0.3), 0.5)
        np.testing.assert_allclose(w, 0.2)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            softmax_weights(np.array([1.0]), 0.0)

    @settings(max_examples=30, deadline=None)
    @given(
        scores=st.lists(st.floats(-5, 5), min_size=1, max_size=20),
        temp=st.floats(0.01, 50),
    )
    def test_softmax_weights_property(self, scores, temp):
        w = softmax_weights(np.array(scores), temp)
        assert np.isclose(w.sum(), 1.0)
        assert np.all(w >= 0)
        # order-preserving: higher score never gets lower weight
        s = np.array(scores)
        order = np.argsort(s)
        assert np.all(np.diff(w[order]) >= -1e-12)


class TestAdaptiveAlpha:
    def test_balanced_recovers_fedcm(self):
        # discrepancy 0 -> alpha = 0.1 regardless of q
        assert adaptive_alpha(0.0, 10, 1.5) == pytest.approx(0.1)

    def test_imbalance_raises_alpha(self):
        a_low = adaptive_alpha(0.05, 10, 1.0)
        a_high = adaptive_alpha(0.5, 10, 1.0)
        assert a_high > a_low > 0.1

    def test_q_scales_alpha(self):
        a1 = adaptive_alpha(0.3, 10, 0.5)
        a2 = adaptive_alpha(0.3, 10, 1.5)
        assert a2 > a1

    def test_clipping(self):
        assert adaptive_alpha(1.0, 100, 2.0) <= 0.999
        assert adaptive_alpha(0.0, 10, 0.0) >= 0.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            adaptive_alpha(-0.1, 10, 1.0)
        with pytest.raises(ValueError):
            adaptive_alpha(0.5, 0, 1.0)
        with pytest.raises(ValueError):
            adaptive_alpha(0.5, 10, -1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        d=st.floats(0, 1),
        c=st.integers(2, 100),
        q=st.floats(0, 2),
    )
    def test_alpha_always_in_convergence_range(self, d, c, q):
        a = adaptive_alpha(d, c, q)
        assert 0.1 <= a < 1.0  # the range assumed by Theorem 6.1


class TestScoreRatio:
    def test_uniform_scores_give_one(self):
        assert score_ratio(np.full(10, 0.5), np.array([0, 1])) == 1.0

    def test_tail_cohort_scores_higher(self):
        scores = np.array([0.0, 0.0, 0.0, 1.0, 1.0])
        q_tail = score_ratio(scores, np.array([3, 4]))
        q_head = score_ratio(scores, np.array([0, 1]))
        assert q_tail > 1.0 > q_head

    def test_clipping(self):
        scores = np.array([0.0] * 99 + [100.0])
        q = score_ratio(scores, np.array([99]))
        assert q == 2.0  # clipped at q_max

    def test_empty_selection(self):
        assert score_ratio(np.array([1.0, 2.0]), np.array([], dtype=int)) == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            score_ratio(np.array([1.0]), np.array([3]))


class TestGlobalMomentum:
    def test_update_weighted_average(self):
        gm = GlobalMomentum(dim=3)
        grads = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        w = np.array([0.25, 0.75])
        out = gm.update(grads, w)
        np.testing.assert_allclose(out, [0.25, 0.75, 0.0])

    def test_alpha_history(self):
        gm = GlobalMomentum(dim=2, alpha=0.1)
        gm.set_alpha(0.5)
        gm.set_alpha(0.9)
        assert gm.history == [0.1, 0.5, 0.9]

    def test_weights_must_sum_to_one(self):
        gm = GlobalMomentum(dim=2)
        with pytest.raises(ValueError):
            gm.update(np.ones((2, 2)), np.array([0.5, 0.6]))

    def test_shape_validation(self):
        gm = GlobalMomentum(dim=2)
        with pytest.raises(ValueError):
            gm.update(np.ones((2, 3)), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            GlobalMomentum(dim=0)

    def test_invalid_alpha(self):
        gm = GlobalMomentum(dim=2)
        with pytest.raises(ValueError):
            gm.set_alpha(0.0)
