"""Numerical gradient checks for every layer and loss in the NN engine.

These are the foundation tests: if backprop is wrong, every federated result
in the library is meaningless.  Central differences against the analytic
gradients, for both parameters and inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BasicBlock,
    BatchNorm2d,
    ClassBalancedLoss,
    Conv2d,
    CrossEntropyLoss,
    Dense,
    FocalLoss,
    GlobalAvgPool2d,
    GroupNorm,
    LayerNorm,
    LDAMLoss,
    MaxPool2d,
    AvgPool2d,
    PriorCELoss,
    ReLU,
    Sequential,
)

RNG = np.random.default_rng(1234)
EPS = 1e-6


def _numeric_param_grad(module, x, param_name, loss_of_output):
    """Central-difference gradient of a scalar loss w.r.t. one parameter."""
    p = module.params[param_name]
    num = np.zeros_like(p)
    it = np.nditer(p, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = p[idx]
        p[idx] = old + EPS
        lp = loss_of_output(module.forward(x, train=False))
        p[idx] = old - EPS
        lm = loss_of_output(module.forward(x, train=False))
        p[idx] = old
        num[idx] = (lp - lm) / (2 * EPS)
        it.iternext()
    return num


def _numeric_input_grad(module, x, loss_of_output):
    num = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + EPS
        lp = loss_of_output(module.forward(x, train=False))
        x[idx] = old - EPS
        lm = loss_of_output(module.forward(x, train=False))
        x[idx] = old
        num[idx] = (lp - lm) / (2 * EPS)
        it.iternext()
    return num


def _check_module(module, x, atol=1e-5):
    """Run forward/backward with a random linear loss and compare gradients."""
    out = module.forward(x, train=True)
    w = RNG.normal(size=out.shape)

    def loss_of_output(o):
        return float((o * w).sum())

    module.zero_grad()
    dx = module.backward(w)

    ndx = _numeric_input_grad(module, x.copy(), loss_of_output)
    np.testing.assert_allclose(dx, ndx, atol=atol, rtol=1e-4)

    for name in module.params:
        # re-run forward in train mode so caches match the analytic pass
        module.zero_grad()
        module.forward(x, train=True)
        module.backward(w)
        analytic = module.grads[name].copy()
        numeric = _numeric_param_grad(module, x, name, loss_of_output)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4, err_msg=name)


class TestLayerGradients:
    def test_dense(self):
        m = Dense(5, 3, np.random.default_rng(0))
        _check_module(m, RNG.normal(size=(4, 5)))

    def test_dense_no_bias(self):
        m = Dense(4, 2, np.random.default_rng(0), bias=False)
        _check_module(m, RNG.normal(size=(3, 4)))

    def test_relu(self):
        # keep inputs away from the kink at 0
        x = RNG.normal(size=(4, 6))
        x[np.abs(x) < 0.1] = 0.5
        _check_module(ReLU(), x)

    def test_conv2d(self):
        m = Conv2d(2, 3, 3, np.random.default_rng(0), stride=1, padding=1)
        _check_module(m, RNG.normal(size=(2, 2, 5, 5)))

    def test_conv2d_stride2_nopad(self):
        m = Conv2d(2, 2, 2, np.random.default_rng(0), stride=2, padding=0)
        _check_module(m, RNG.normal(size=(2, 2, 4, 4)))

    def test_maxpool(self):
        x = RNG.normal(size=(2, 2, 4, 4)) * 3  # well-separated values: no ties
        _check_module(MaxPool2d(2), x)

    def test_avgpool(self):
        _check_module(AvgPool2d(2), RNG.normal(size=(2, 3, 4, 4)))

    def test_global_avgpool(self):
        _check_module(GlobalAvgPool2d(), RNG.normal(size=(3, 2, 4, 4)))

    def test_groupnorm(self):
        m = GroupNorm(2, 4)
        _check_module(m, RNG.normal(size=(3, 4, 3, 3)), atol=1e-4)

    def test_layernorm(self):
        _check_module(LayerNorm(6), RNG.normal(size=(4, 6)), atol=1e-4)

    def test_batchnorm_param_grads(self):
        # BatchNorm input grads use batch statistics; eval-mode numeric check
        # only applies to gamma/beta (which act identically in both modes
        # once running stats match batch stats).
        m = BatchNorm2d(3, momentum=1.0)
        x = RNG.normal(size=(4, 3, 2, 2))
        out = m.forward(x, train=True)  # momentum=1.0: running stats = batch stats
        w = RNG.normal(size=out.shape)
        m.zero_grad()
        m.backward(w)

        def loss_of_output(o):
            return float((o * w).sum())

        for name in ("gamma", "beta"):
            numeric = _numeric_param_grad(m, x, name, loss_of_output)
            np.testing.assert_allclose(m.grads[name], numeric, atol=1e-4, err_msg=name)

    def test_basic_block(self):
        m = BasicBlock(2, 4, np.random.default_rng(0), stride=2)
        x = RNG.normal(size=(2, 2, 4, 4))
        # Check input gradient only on the smooth part: perturb and compare loss
        out = m.forward(x, train=True)
        w = RNG.normal(size=out.shape)
        m.zero_grad()
        dx = m.backward(w)
        # directional derivative check (avoids ReLU kinks dominating)
        d = RNG.normal(size=x.shape) * 1e-5
        l0 = float((m.forward(x - d, train=False) * w).sum())
        l1 = float((m.forward(x + d, train=False) * w).sum())
        approx = (l1 - l0) / 2
        exact = float((dx * d).sum())
        assert abs(approx - exact) < 1e-6 + 1e-3 * abs(exact)

    def test_sequential_chain(self):
        rng = np.random.default_rng(0)
        m = Sequential(Dense(6, 5, rng), ReLU(), Dense(5, 3, rng))
        x = RNG.normal(size=(4, 6))
        out = m.forward(x, train=True)
        w = RNG.normal(size=out.shape)
        m.zero_grad()
        dx = m.backward(w)
        d = RNG.normal(size=x.shape) * 1e-5
        l0 = float((m.forward(x - d, train=False) * w).sum())
        l1 = float((m.forward(x + d, train=False) * w).sum())
        assert abs((l1 - l0) / 2 - float((dx * d).sum())) < 1e-6


class TestLossGradients:
    @pytest.mark.parametrize(
        "loss",
        [
            CrossEntropyLoss(),
            FocalLoss(gamma=2.0),
            FocalLoss(gamma=0.0),
            PriorCELoss(np.array([0.5, 0.3, 0.2])),
            # gentle scale: at the default scale=10 numeric central differences
            # cannot resolve gradient entries spanning 9 orders of magnitude
            LDAMLoss(np.array([50.0, 10.0, 2.0]), scale=2.0),
            ClassBalancedLoss(np.array([50.0, 10.0, 2.0])),
        ],
        ids=["ce", "focal2", "focal0", "prior_ce", "ldam", "class_balanced"],
    )
    def test_numeric(self, loss):
        logits = RNG.normal(size=(6, 3))
        labels = RNG.integers(0, 3, size=6)
        _, dlogits = loss(logits, labels)
        num = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                old = logits[i, j]
                logits[i, j] = old + EPS
                lp, _ = loss(logits, labels)
                logits[i, j] = old - EPS
                lm, _ = loss(logits, labels)
                logits[i, j] = old
                num[i, j] = (lp - lm) / (2 * EPS)
        np.testing.assert_allclose(dlogits, num, atol=1e-5)

    def test_focal_gamma0_equals_ce(self):
        logits = RNG.normal(size=(5, 4))
        labels = RNG.integers(0, 4, size=5)
        lce, gce = CrossEntropyLoss()(logits, labels)
        lf, gf = FocalLoss(gamma=0.0)(logits, labels)
        assert abs(lce - lf) < 1e-9
        np.testing.assert_allclose(gce, gf, atol=1e-9)

    def test_prior_ce_uniform_equals_ce(self):
        logits = RNG.normal(size=(5, 4))
        labels = RNG.integers(0, 4, size=5)
        lce, gce = CrossEntropyLoss()(logits, labels)
        lp, gp = PriorCELoss(np.full(4, 0.25))(logits, labels)
        assert abs(lce - lp) < 1e-9
        np.testing.assert_allclose(gce, gp, atol=1e-9)
