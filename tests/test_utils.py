"""Unit + property tests for repro.utils (rng, pytree, validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils import (
    as_generator,
    check_fraction,
    check_in_range,
    check_positive,
    check_probability_vector,
    flatten_params,
    num_params,
    spawn,
    split,
    tree_add,
    tree_scale,
    tree_zeros_like,
    unflatten_params,
)
from repro.utils.pytree import write_into_tree


class TestRng:
    def test_as_generator_from_int(self):
        g1 = as_generator(42)
        g2 = as_generator(42)
        assert g1.random() == g2.random()

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_spawn_independence(self):
        children = spawn(np.random.default_rng(0), 5)
        draws = [c.random() for c in children]
        assert len(set(draws)) == 5

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(np.random.default_rng(0), -1)

    def test_split(self):
        a, b = split(np.random.default_rng(0))
        assert a.random() != b.random()

    def test_spawn_deterministic(self):
        d1 = [g.random() for g in spawn(np.random.default_rng(7), 3)]
        d2 = [g.random() for g in spawn(np.random.default_rng(7), 3)]
        assert d1 == d2


class TestPytree:
    def _tree(self, rng):
        return {
            "a": rng.normal(size=(3, 4)),
            "b": rng.normal(size=(5,)),
            "c": rng.normal(size=(2, 2, 2)),
        }

    def test_roundtrip(self):
        tree = self._tree(np.random.default_rng(0))
        flat, spec = flatten_params(tree)
        back = unflatten_params(flat, spec)
        for k in tree:
            np.testing.assert_array_equal(tree[k], back[k])

    def test_spec_size(self):
        tree = self._tree(np.random.default_rng(0))
        _, spec = flatten_params(tree)
        assert spec.size == 12 + 5 + 8 == num_params(tree)

    def test_unflatten_views_share_memory(self):
        tree = self._tree(np.random.default_rng(0))
        flat, spec = flatten_params(tree)
        back = unflatten_params(flat, spec)
        flat[0] = 123.0
        assert back["a"].reshape(-1)[0] == 123.0

    def test_flatten_into_preallocated(self):
        tree = self._tree(np.random.default_rng(0))
        _, spec = flatten_params(tree)
        out = np.empty(spec.size)
        flat, _ = flatten_params(tree, spec=spec, out=out)
        assert flat is out

    def test_flatten_wrong_out_shape_raises(self):
        tree = self._tree(np.random.default_rng(0))
        _, spec = flatten_params(tree)
        with pytest.raises(ValueError):
            flatten_params(tree, spec=spec, out=np.empty(spec.size + 1))

    def test_unflatten_wrong_size_raises(self):
        tree = self._tree(np.random.default_rng(0))
        _, spec = flatten_params(tree)
        with pytest.raises(ValueError):
            unflatten_params(np.zeros(spec.size - 1), spec)

    def test_write_into_tree(self):
        tree = self._tree(np.random.default_rng(0))
        flat, spec = flatten_params(tree)
        target = tree_zeros_like(tree)
        write_into_tree(flat, spec, target)
        for k in tree:
            np.testing.assert_array_equal(tree[k], target[k])

    def test_tree_add_and_scale(self):
        t = {"a": np.array([1.0, 2.0])}
        s = tree_add(t, tree_scale(t, 2.0))
        np.testing.assert_array_equal(s["a"], [3.0, 6.0])

    def test_tree_add_key_mismatch(self):
        with pytest.raises(KeyError):
            tree_add({"a": np.zeros(1)}, {"b": np.zeros(1)})

    def test_spec_slices(self):
        tree = self._tree(np.random.default_rng(0))
        flat, spec = flatten_params(tree)
        slices = spec.slices()
        np.testing.assert_array_equal(flat[slices["b"]], tree["b"])

    @settings(max_examples=25, deadline=None)
    @given(
        shapes=st.lists(
            st.tuples(st.integers(1, 4), st.integers(1, 4)), min_size=1, max_size=5
        )
    )
    def test_roundtrip_property(self, shapes):
        rng = np.random.default_rng(0)
        tree = {f"p{i}": rng.normal(size=s) for i, s in enumerate(shapes)}
        flat, spec = flatten_params(tree)
        back = unflatten_params(flat.copy(), spec)
        for k in tree:
            np.testing.assert_array_equal(tree[k], back[k])


class TestValidation:
    def test_probability_vector_ok(self):
        p = check_probability_vector(np.array([0.2, 0.8]))
        assert np.isclose(p.sum(), 1.0)

    @pytest.mark.parametrize(
        "bad",
        [np.array([0.5, 0.6]), np.array([-0.1, 1.1]), np.zeros(0), np.ones((2, 2)) / 4],
        ids=["not-sum-1", "negative", "empty", "2d"],
    )
    def test_probability_vector_bad(self, bad):
        with pytest.raises(ValueError):
            check_probability_vector(bad)

    def test_check_positive(self):
        assert check_positive(1.5) == 1.5
        for bad in (0, -1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad)

    def test_check_in_range(self):
        assert check_in_range(0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, 0, 1)
        with pytest.raises(ValueError):
            check_in_range(0.0, 0, 1, inclusive=False)

    def test_check_fraction(self):
        assert check_fraction(1.0) == 1.0
        for bad in (0.0, 1.2, -0.5):
            with pytest.raises(ValueError):
                check_fraction(bad)
