"""Tests for the analysis substrate (concentration, collapse, per-class)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ConcentrationTracker,
    PerClassTracker,
    capture_relu_activations,
    classifier_angles,
    feature_class_means,
    head_tail_accuracy,
    layer_concentrations,
    minority_collapse_index,
    neuron_concentration,
    per_label_accuracy,
    within_between_ratio,
)
from repro.algorithms import FedAvg
from repro.data import load_federated_dataset
from repro.nn import make_mlp, make_resnet_lite
from repro.simulation import FLConfig, FederatedSimulation


class TestNeuronConcentration:
    def test_one_hot_neurons_are_fully_concentrated(self):
        # neuron j fires only for class j
        labels = np.repeat(np.arange(3), 10)
        acts = np.zeros((30, 3))
        for c in range(3):
            acts[labels == c, c] = 1.0
        assert neuron_concentration(acts, labels, 3) == pytest.approx(1.0)

    def test_uniform_neurons_have_zero_concentration(self):
        labels = np.repeat(np.arange(4), 25)
        acts = np.ones((100, 8))
        assert neuron_concentration(acts, labels, 4) == pytest.approx(0.0, abs=1e-9)

    def test_dead_neurons_ignored(self):
        labels = np.repeat(np.arange(2), 5)
        acts = np.zeros((10, 4))
        acts[labels == 0, 0] = 1.0  # only one alive neuron, fully class-0
        assert neuron_concentration(acts, labels, 2) == pytest.approx(1.0)

    def test_all_dead_returns_zero(self):
        labels = np.zeros(4, dtype=int)
        assert neuron_concentration(np.zeros((4, 3)), labels, 2) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            neuron_concentration(np.zeros(5), np.zeros(5, dtype=int), 2)


class TestActivationCapture:
    def test_mlp_relu_count(self):
        m = make_mlp(8, 3, hidden=(6, 4), seed=0)
        acts = capture_relu_activations(m, np.random.default_rng(0).normal(size=(5, 8)))
        assert len(acts) == 2  # one per hidden layer
        assert acts[0].shape == (5, 6)
        assert acts[1].shape == (5, 4)

    def test_resnet_blocks_contribute_two_each(self):
        m = make_resnet_lite(3, 8, 4, depth="micro", width=4, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        acts = capture_relu_activations(m, x)
        # stem ReLU + 3 blocks x 2 ReLUs
        assert len(acts) == 1 + 3 * 2
        assert all(a.ndim == 2 for a in acts)

    def test_capture_matches_forward(self):
        # capturing must not change the model's prediction path
        m = make_resnet_lite(3, 8, 4, depth="micro", width=4, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        before = m.forward(x, train=False)
        capture_relu_activations(m, x)
        after = m.forward(x, train=False)
        np.testing.assert_array_equal(before, after)

    def test_layer_concentrations_vector(self):
        m = make_mlp(8, 3, hidden=(6, 4), seed=0)
        x = np.random.default_rng(0).normal(size=(30, 8))
        y = np.random.default_rng(1).integers(0, 3, 30)
        concs = layer_concentrations(m, x, y, 3)
        assert concs.shape == (2,)
        assert np.all((0 <= concs) & (concs <= 1))


class TestCollapseMetrics:
    def test_within_between_ratio_separated_clusters(self):
        rng = np.random.default_rng(0)
        f0 = rng.normal(0, 0.1, size=(50, 4)) + np.array([10, 0, 0, 0])
        f1 = rng.normal(0, 0.1, size=(50, 4)) - np.array([10, 0, 0, 0])
        feats = np.concatenate([f0, f1])
        labels = np.array([0] * 50 + [1] * 50)
        assert within_between_ratio(feats, labels, 2) < 0.01

    def test_within_between_ratio_mixed(self):
        rng = np.random.default_rng(0)
        feats = rng.normal(size=(100, 4))
        labels = rng.integers(0, 2, 100)
        assert within_between_ratio(feats, labels, 2) > 1.0

    def test_classifier_angles_etf(self):
        # a 2-class "ETF": opposite vectors -> cosine -1
        w = np.array([[1.0, 0.0], [-1.0, 0.0]])
        cos = classifier_angles(w)
        assert cos[0, 1] == pytest.approx(-1.0)

    def test_minority_collapse_index_zero_for_etf(self):
        # simplex ETF for C=3 in 2D: vectors at 120 degrees
        ang = np.array([0, 2 * np.pi / 3, 4 * np.pi / 3])
        w = np.stack([np.cos(ang), np.sin(ang)], axis=1)
        idx = minority_collapse_index(w, np.array([1, 2]))
        assert idx == pytest.approx(0.0, abs=1e-9)

    def test_minority_collapse_index_positive_when_collapsed(self):
        w = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])  # tail rows identical
        idx = minority_collapse_index(w, np.array([1, 2]))
        assert idx > 1.0

    def test_feature_class_means_absent_class(self):
        feats = np.ones((4, 2))
        labels = np.zeros(4, dtype=int)
        means, mu = feature_class_means(feats, labels, 3)
        np.testing.assert_array_equal(means[1], mu)

    def test_tail_size_validation(self):
        with pytest.raises(ValueError):
            minority_collapse_index(np.eye(3), np.array([0]))


class TestPerClass:
    def test_per_label_accuracy_shape(self):
        m = make_mlp(8, 3, seed=0)
        x = np.random.default_rng(0).normal(size=(30, 8))
        y = np.random.default_rng(1).integers(0, 3, 30)
        acc = per_label_accuracy(m, x, y, 3)
        assert acc.shape == (3,)

    def test_head_tail_split(self):
        per_class = np.array([0.9, 0.8, 0.2, 0.1])
        counts = np.array([100, 50, 10, 5])
        out = head_tail_accuracy(per_class, counts, head_fraction=0.5)
        assert out["head"] == pytest.approx(0.85)
        assert out["tail"] == pytest.approx(0.15)

    def test_head_tail_handles_nan(self):
        per_class = np.array([0.9, np.nan])
        counts = np.array([10, 1])
        out = head_tail_accuracy(per_class, counts, head_fraction=0.5)
        assert out["head"] == pytest.approx(0.9)
        assert np.isnan(out["tail"])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            head_tail_accuracy(np.zeros(3), np.zeros(4))


class TestTrackers:
    def test_trackers_record_via_engine(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.2, beta=0.3, num_clients=4, seed=0, scale=0.3
        )
        model = make_mlp(32, 10, seed=0)
        conc = ConcentrationTracker(ds.x_test, ds.y_test, 10)
        pc = PerClassTracker(10)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, eval_every=1,
                       seed=0, max_batches_per_round=2)
        h = FederatedSimulation(FedAvg(), model, ds, cfg, metric_hooks=[conc, pc]).run()
        assert conc.rounds == [0, 1, 2]
        assert conc.mean_series.shape == (3,)
        assert len(pc.series) == 3
        assert "neuron_concentration" in h.records[0].extras
