"""Tests for the parallel client-execution substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedCM
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.parallel import ParallelClientRunner, parallel_map
from repro.simulation import FLConfig, FederatedSimulation
from repro.simulation.context import SimulationContext


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=6, seed=0, scale=0.3
    )


def _square(x):
    return x * x


def _neg(x):
    return -x


class TestParallelMap:
    def test_order_preserved(self):
        out = parallel_map(_square, list(range(10)), workers=4)
        assert out == [x * x for x in range(10)]

    def test_single_worker_fallback(self):
        # workers=1 runs inline, so even lambdas are allowed
        out = parallel_map(lambda x: x + 1, [1, 2, 3], workers=1)
        assert out == [2, 3, 4]

    def test_single_item(self):
        assert parallel_map(_neg, [5], workers=8) == [-5]


def _model_builder():
    return make_mlp(32, 10, seed=0)


class TestParallelClientRunner:
    def test_matches_serial_execution(self, ds):
        """Parallel client updates must equal serial ones bit-for-bit."""
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=3)
        # serial reference
        ctx = SimulationContext(_model_builder(), ds, cfg)
        algo = FedAvg()
        algo.setup(ctx)
        x0 = ctx.x0.copy()
        selected = ctx.sample_clients(0)
        serial = [algo.client_update(ctx, 0, int(k), x0) for k in selected]

        with ParallelClientRunner(
            _model_builder, ds, cfg, FedAvg, workers=2
        ) as runner:
            par = runner.run_round(0, selected, x0)

        for s, p in zip(serial, par):
            assert s.client_id == p.client_id
            np.testing.assert_array_equal(s.displacement, p.displacement)

    def test_broadcast_state_applied(self, ds):
        """FedCM's momentum must be shipped to the workers."""
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=3)
        ctx = SimulationContext(_model_builder(), ds, cfg)
        algo = FedCM(alpha=0.1)
        algo.setup(ctx)
        delta = np.full(ctx.dim, 0.01)
        algo._delta = delta
        x0 = ctx.x0.copy()
        selected = ctx.sample_clients(0)
        serial = [algo.client_update(ctx, 0, int(k), x0) for k in selected]

        with ParallelClientRunner(
            _model_builder, ds, cfg, FedCM, workers=2
        ) as runner:
            par = runner.run_round(0, selected, x0, broadcast_state={"_delta": delta})

        for s, p in zip(serial, par):
            np.testing.assert_array_equal(s.displacement, p.displacement)

    def test_full_round_equivalence_via_engine(self, ds):
        """A full FedAvg round driven through the pool equals the engine's."""
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=3)
        model = _model_builder()
        sim = FederatedSimulation(FedAvg(), model, ds, cfg)
        h = sim.run()
        x_serial = sim.final_params

        ctx = SimulationContext(_model_builder(), ds, cfg)
        algo = FedAvg()
        algo.setup(ctx)
        x0 = ctx.x0.copy()
        selected = ctx.sample_clients(0)
        with ParallelClientRunner(_model_builder, ds, cfg, FedAvg, workers=3) as runner:
            updates = runner.run_round(0, selected, x0)
        x_par = algo.aggregate(ctx, 0, selected, updates, x0)
        np.testing.assert_allclose(x_serial, x_par)
