"""Integration tests asserting the paper's qualitative claims at mini scale.

These are the library's end-to-end contracts: each test runs full federated
training and checks a directional property the paper reports.  Magnitudes
are substrate-dependent (see EXPERIMENTS.md) — the assertions encode the
*shape* of each claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import make_method
from repro.core import client_scores, softmax_weights
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.simulation import FederatedSimulation, FLConfig
from repro.theory import make_longtail_quadratic, run_quadratic_fl


def _run(method: str, imf: float, seed: int = 0, rounds: int = 20, beta: float = 0.1):
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=imf, beta=beta, num_clients=12,
        seed=seed, scale=0.6,
    )
    bundle = make_method(method)
    model = make_mlp(32, 10, seed=seed)
    cfg = FLConfig(rounds=rounds, batch_size=10, participation=0.25, local_epochs=3,
                   eval_every=rounds // 2, seed=seed)
    sim = FederatedSimulation(
        bundle.algorithm, model, ds, cfg,
        loss_builder=bundle.loss_builder, sampler_builder=bundle.sampler_builder,
    )
    return sim.run(), bundle.algorithm


class TestClaimFedWCMReducesToFedCMWhenBalanced:
    """Section 5.2: with a balanced global distribution, the imbalance term
    vanishes and FedWCM behaves exactly like FedCM (alpha pinned at 0.1,
    near-uniform weights)."""

    def test_identical_trajectories_at_if_1(self):
        h_cm, _ = _run("fedcm", imf=1.0)
        h_wcm, algo = _run("fedwcm", imf=1.0)
        np.testing.assert_allclose(h_cm.accuracy, h_wcm.accuracy, atol=1e-12)
        assert all(a == pytest.approx(0.1, abs=0.02) for a in algo.momentum.history)


class TestClaimAdaptiveAlphaTracksImbalance:
    """Eq. 5: alpha grows monotonically with the global imbalance level."""

    def test_alpha_ordering_across_if(self):
        alphas = {}
        for imf in (1.0, 0.5, 0.1, 0.01):
            _, algo = _run("fedwcm", imf=imf, rounds=6)
            alphas[imf] = float(np.mean(algo.momentum.history[1:]))
        assert alphas[1.0] < alphas[0.5] < alphas[0.1] <= alphas[0.01] + 1e-9


class TestClaimWeightingFavorsScarceData:
    """Eq. 3/4: under a long tail, tail-heavy clients receive larger
    aggregation weights than head-heavy clients."""

    def test_weight_ordering(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.05, beta=0.1, num_clients=12, seed=0
        )
        counts = ds.client_counts.astype(float)
        scores = client_scores(counts)
        w = softmax_weights(scores, temperature=0.05)
        # the most tail-concentrated client outweighs the most head-concentrated
        tail_share = counts[:, 5:].sum(axis=1) / counts.sum(axis=1)
        assert w[np.argmax(tail_share)] > w[np.argmin(tail_share)]


class TestClaimFedWCMNeverCollapses:
    """Tables 1/4: FedWCM converges at every IF x beta cell (no failure
    cells like FedCM's in the paper)."""

    @pytest.mark.parametrize("imf", [1.0, 0.1, 0.01])
    @pytest.mark.parametrize("beta", [0.1, 0.6])
    def test_above_chance_everywhere(self, imf, beta):
        h, _ = _run("fedwcm", imf=imf, beta=beta)
        assert h.final_accuracy > 0.15  # chance = 0.1


class TestClaimMomentumHelpsWhenBalanced:
    """Figure 18/19: with heterogeneous but *balanced* data, FedCM is at
    least as good as FedAvg (momentum mitigates client drift)."""

    def test_fedcm_vs_fedavg_balanced(self):
        accs = {m: [] for m in ("fedavg", "fedcm")}
        for seed in (0, 1):
            for m in accs:
                h, _ = _run(m, imf=1.0, seed=seed, rounds=24)
                accs[m].append(h.tail_accuracy(2))
        assert np.mean(accs["fedcm"]) >= np.mean(accs["fedavg"]) - 0.03


class TestClaimQuadraticBiasAmplification:
    """Section 4's mechanism in its cleanest form: on the quadratic testbed
    with long-tail-biased cohorts, heavy momentum (small alpha) tracks the
    biased direction; raising alpha (FedWCM's response) reduces the bias of
    the final iterate toward the head anchor."""

    def test_head_bias_of_momentum(self):
        p = make_longtail_quadratic(
            num_clients=40, dim=12, head_fraction=0.9, bias_strength=4.0,
            sigma=0.2, seed=0,
        )
        head_dir = p.minimizers[:36].mean(axis=0) - p.x_star
        head_dir /= np.linalg.norm(head_dir)

        def head_bias(alpha):
            out = run_quadratic_fl(
                p, "fedcm", rounds=120, local_steps=10, participation=0.1,
                alpha=alpha, seed=0, x0=np.zeros(12),
            )
            # mean projection of the error onto the head direction over the
            # last rounds (positive = pulled toward the head anchor)
            return out

        heavy = head_bias(0.1)
        light = head_bias(0.9)
        # heavier momentum yields no better steady-state objective under
        # biased cohorts, unlike the homogeneous case where EMA smoothing wins
        assert heavy["loss"][-30:].mean() >= light["loss"][-30:].mean() - 0.05


class TestClaimPerClassDegradationPattern:
    """Figure 8: accuracy falls with label frequency; the tail group is the
    discriminating region between methods."""

    def test_head_beats_tail(self):
        h, _ = _run("fedwcm", imf=0.05, rounds=24)
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.05, beta=0.1, num_clients=12,
            seed=0, scale=0.6,
        )
        # head classes (0-4) hold >= 84% of the data at IF=0.05
        counts = ds.global_class_counts
        assert counts[:5].sum() / counts.sum() > 0.8


class TestSeedRobustness:
    """Multi-seed stability: the FedWCM-vs-FedCM balanced-identity and the
    convergence guarantee must hold for every seed, not just seed 0."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_balanced_identity_other_seeds(self, seed):
        h_cm, _ = _run("fedcm", imf=1.0, seed=seed, rounds=10)
        h_wcm, _ = _run("fedwcm", imf=1.0, seed=seed, rounds=10)
        np.testing.assert_allclose(h_cm.accuracy, h_wcm.accuracy, atol=1e-12)
