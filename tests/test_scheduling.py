"""Tests for heterogeneity-aware scheduling (repro.runtime.scheduling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAsync, FedAvg, FedCM, make_method
from repro.cli import main as cli_main
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.runtime import (
    AsyncFederatedSimulation,
    ConcurrencyController,
    ConstantLatency,
    DeadlineController,
    DropoutRetryLatency,
    FastFirstSampler,
    LognormalLatency,
    LongIdleSampler,
    SAMPLERS,
    SemiSyncFederatedSimulation,
    UtilitySampler,
    make_latency_model,
    make_sampler,
    resolve_auto_comm,
)
from repro.simulation import CommunicationModel, FLConfig, comm_profile
from repro.simulation.context import SimulationContext


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=8, seed=0, scale=0.3
    )


def _model_builder():
    return make_mlp(32, 10, seed=0)


def _cfg(**kw):
    base = dict(rounds=4, participation=0.5, local_epochs=1, seed=0,
                max_batches_per_round=3, eval_every=2, batch_size=10)
    base.update(kw)
    return FLConfig(**base)


def _ctx(ds, **kw):
    return SimulationContext(_model_builder(), ds, _cfg(**kw))


class TestDeadlineController:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineController(target_drop_rate=1.0)
        with pytest.raises(ValueError):
            DeadlineController(initial=0.0)
        with pytest.raises(ValueError):
            DeadlineController(gain=0.0)
        with pytest.raises(ValueError):
            DeadlineController(min_deadline=2.0, max_deadline=1.0)
        with pytest.raises(RuntimeError):
            DeadlineController().observe(1, 4)

    def test_start_seeds_quantile(self):
        c = DeadlineController(target_drop_rate=0.25)
        lats = np.array([1.0, 2.0, 3.0, 4.0])
        assert c.start(lats) == pytest.approx(np.quantile(lats, 0.75))
        # an explicit initial deadline wins over the quantile seed
        c2 = DeadlineController(target_drop_rate=0.25, initial=9.0)
        assert c2.start(lats) == 9.0

    def test_sign_of_update(self):
        c = DeadlineController(target_drop_rate=0.5, initial=1.0, gain=1.0)
        c.observe(4, 4)  # dropping everyone: relax
        assert c.deadline > 1.0
        c2 = DeadlineController(target_drop_rate=0.5, initial=1.0, gain=1.0)
        c2.observe(0, 4)  # dropping no one: tighten
        assert c2.deadline < 1.0

    @pytest.mark.parametrize("target", [0.2, 0.5])
    def test_drop_rate_converges_on_synthetic_latencies(self, target):
        """Closed loop against a stationary lognormal cohort: the long-run
        drop rate lands on the budget."""
        rng = np.random.default_rng(0)
        c = DeadlineController(target_drop_rate=target, gain=0.4)
        c.start(np.exp(rng.standard_normal(64)))
        drops = []
        for _ in range(400):
            lats = np.exp(rng.standard_normal(16))
            n_late = int((lats > c.deadline).sum())
            c.observe(n_late, lats.size)
            drops.append(n_late / lats.size)
        assert np.mean(drops[100:]) == pytest.approx(target, abs=0.05)

    def test_deadline_clamped(self):
        c = DeadlineController(target_drop_rate=0.5, initial=1.0, gain=5.0,
                               min_deadline=0.5, max_deadline=2.0)
        for _ in range(10):
            c.observe(4, 4)
        assert c.deadline == 2.0
        for _ in range(10):
            c.observe(0, 4)
        assert c.deadline == 0.5


class TestConcurrencyController:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConcurrencyController(staleness_budget=-1.0)
        with pytest.raises(ValueError):
            ConcurrencyController(limit=0)
        with pytest.raises(ValueError):
            ConcurrencyController(decrease=1.0)
        with pytest.raises(ValueError):
            ConcurrencyController(increase=0)
        with pytest.raises(RuntimeError):
            ConcurrencyController().observe(1.0)

    def test_aimd_moves(self):
        c = ConcurrencyController(staleness_budget=2.0, limit=8, window=4, max_limit=100)
        for _ in range(4):  # under budget -> additive probe
            c.observe(1.0)
        assert c.limit == 9
        for _ in range(4):  # over budget -> multiplicative back-off
            c.observe(10.0)
        assert c.limit == 4

    def test_bounds_respected(self):
        c = ConcurrencyController(staleness_budget=1.0, limit=2, window=1,
                                  min_limit=2, max_limit=3)
        assert c.observe(0.0) == 3
        assert c.observe(0.0) == 3
        assert c.observe(99.0) == 2
        assert c.observe(99.0) == 2

    def test_seed_fills_defaults(self):
        c = ConcurrencyController(staleness_budget=1.0)
        c.seed(limit=5, window=3, max_limit=10)
        assert (c.limit, c.window, c.max_limit) == (5, 3, 10)
        # explicit knobs survive seeding
        c2 = ConcurrencyController(staleness_budget=1.0, limit=2, window=7, max_limit=4)
        c2.seed(limit=5, window=3, max_limit=10)
        assert (c2.limit, c2.window, c2.max_limit) == (2, 7, 4)
        # deliberate oversubscription (engine concurrency > client pool) is
        # honoured: the default probe ceiling expands to the seeded limit
        c3 = ConcurrencyController(staleness_budget=1.0)
        c3.seed(limit=50, window=3, max_limit=20)
        assert (c3.limit, c3.max_limit) == (50, 50)


class TestControllerEngines:
    def test_semisync_adaptive_tracks_drop_budget(self, ds):
        target = 0.25
        dc = DeadlineController(target_drop_rate=target, gain=0.4)
        sim = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, _cfg(rounds=40, eval_every=20),
            latency_model=LognormalLatency(sigma=1.0), deadline=dc,
        )
        h = sim.run()
        assert all("deadline" in r.extras for r in h.records)
        drops = np.array(dc.history)
        assert drops.size == 40
        # long-run mean lands near the budget (cohort of 4 quantises hard)
        assert abs(drops[10:].mean() - target) < 0.15

    def test_semisync_adaptive_deterministic(self, ds):
        runs = []
        for _ in range(2):
            dc = DeadlineController(target_drop_rate=0.3)
            sim = SemiSyncFederatedSimulation(
                FedAvg(), _model_builder(), ds, _cfg(),
                latency_model=LognormalLatency(sigma=1.0), deadline=dc,
            )
            h = sim.run()
            runs.append(([r.extras["deadline"] for r in h.records], sim.final_params))
        assert runs[0][0] == runs[1][0]
        np.testing.assert_array_equal(runs[0][1], runs[1][1])

    def test_async_controller_respects_staleness_budget(self, ds):
        budget = 1.0
        cc = ConcurrencyController(staleness_budget=budget)
        sim = AsyncFederatedSimulation(
            FedAsync(), _model_builder(), ds, _cfg(rounds=10, eval_every=5),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=8, concurrency_controller=cc,
        )
        h = sim.run()
        limits = [r.extras["concurrency_limit"] for r in h.records]
        # AIMD backs off from the over-budget initial concurrency...
        assert min(limits) < 8
        # ...and the steady-state windows come in at or under budget
        tail = [r.staleness for r in h.records[len(h.records) // 2:]]
        assert np.mean(tail) <= budget + 0.5

    def test_async_controller_probes_upward_when_under_budget(self, ds):
        cc = ConcurrencyController(staleness_budget=100.0, max_limit=6)
        sim = AsyncFederatedSimulation(
            FedAsync(), _model_builder(), ds, _cfg(rounds=6, eval_every=3),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=1, concurrency_controller=cc,
        )
        h = sim.run()
        limits = [r.extras["concurrency_limit"] for r in h.records]
        assert limits[-1] > 1
        assert max(limits) <= 6

    def test_run_twice_reproduces_adaptive_state(self, ds):
        """Controllers and samplers reset at run(), so run() is idempotent
        (same guarantee algo.setup gives fixed-schedule runs)."""
        dc = DeadlineController(target_drop_rate=0.3)
        semi = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0), deadline=dc,
            client_sampler=FastFirstSampler(power=2.0),
        )
        h1 = semi.run()
        p1 = semi.final_params
        h2 = semi.run()
        assert [r.extras["deadline"] for r in h1.records] == \
               [r.extras["deadline"] for r in h2.records]
        np.testing.assert_array_equal(p1, semi.final_params)

        cc = ConcurrencyController(staleness_budget=1.0)
        asim = AsyncFederatedSimulation(
            FedAsync(), _model_builder(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=6, concurrency_controller=cc,
        )
        g1 = asim.run()
        q1 = asim.final_params
        g2 = asim.run()
        assert [r.extras["concurrency_limit"] for r in g1.records] == \
               [r.extras["concurrency_limit"] for r in g2.records]
        np.testing.assert_array_equal(q1, asim.final_params)

    def test_async_controller_workers_do_not_change_results(self, ds):
        """Adaptive concurrency keeps the workers=1 vs workers=4 schedules
        bit-identical (the controller sees the same completion sequence)."""
        finals, stales = [], []
        for w in (1, 4):
            cc = ConcurrencyController(staleness_budget=1.0)
            sim = AsyncFederatedSimulation(
                FedAsync(), _model_builder(), ds, _cfg(),
                latency_model=LognormalLatency(sigma=1.0),
                concurrency=6, concurrency_controller=cc,
                workers=w, model_builder=_model_builder, algo_builder=FedAsync,
            )
            h = sim.run()
            finals.append(sim.final_params)
            stales.append([r.staleness for r in h.records])
        np.testing.assert_array_equal(finals[0], finals[1])
        assert stales[0] == stales[1]


class TestTimeAwareSamplers:
    def _bound(self, ds, sampler, sigma=1.0):
        ctx = _ctx(ds)
        lat = LognormalLatency(sigma=sigma).bind(ctx)
        return ctx, lat, sampler.bind(ctx, lat)

    def test_requires_bind(self, ds):
        with pytest.raises(RuntimeError):
            FastFirstSampler()(None, 0)
        with pytest.raises(RuntimeError):
            FastFirstSampler().observe(0, 1.0)

    def test_cohort_shape_and_determinism(self, ds):
        for name in ("fast", "long-idle", "utility"):
            cohorts = []
            for _ in range(2):
                ctx, _, s = self._bound(ds, make_sampler(name))
                cohorts.append([s(ctx, r).tolist() for r in range(5)])
            assert cohorts[0] == cohorts[1], name
            for c in cohorts[0]:
                assert len(c) == 4 and len(set(c)) == 4
                assert c == sorted(c)

    def test_fast_first_prefers_fast_clients(self, ds):
        ctx, lat, s = self._bound(ds, FastFirstSampler(power=3.0))
        exp = s.expected_seconds()
        picks = np.concatenate([s(ctx, r) for r in range(40)])
        mean_picked = exp[picks].mean()
        assert mean_picked < exp.mean()  # cohorts are faster than average

    def test_fast_first_power_zero_is_uniformish(self, ds):
        ctx, _, s = self._bound(ds, FastFirstSampler(power=0.0))
        # with power 0 every client has identical weight
        counts = np.bincount(
            np.concatenate([s(ctx, r) for r in range(50)]), minlength=ctx.num_clients
        )
        assert counts.min() > 0

    def test_long_idle_full_coverage(self, ds):
        ctx, _, s = self._bound(ds, LongIdleSampler())
        seen = set()
        for r in range(2):  # K=8, m=4 -> full coverage in 2 rounds
            seen.update(s(ctx, r).tolist())
        assert seen == set(range(ctx.num_clients))
        # and the rotation keeps max idle bounded at K/m rounds forever
        last = {k: -1 for k in range(ctx.num_clients)}
        for r in range(2, 20):
            for k in s(ctx, r):
                assert r - last[int(k)] <= 2 or last[int(k)] == -1
                last[int(k)] = r

    def test_observe_shifts_estimates(self, ds):
        ctx, lat, s = self._bound(ds, FastFirstSampler(power=2.0))
        before = s.expected_seconds()[0]
        s.observe(0, before * 100.0)  # client 0 turns out to be very slow
        assert s.expected_seconds()[0] == pytest.approx(before * 100.0)
        s.observe(0, before * 100.0)
        picks = np.concatenate([s(ctx, r) for r in range(30)])
        # the now-slow client is picked less often than average
        counts = np.bincount(picks, minlength=ctx.num_clients)
        assert counts[0] <= counts.mean()

    def test_utility_blends_speed_and_stat(self, ds):
        ctx, lat, s = self._bound(ds, UtilitySampler(alpha=2.0))
        util = s.utilities()
        assert util.shape == (ctx.num_clients,)
        assert (util > 0).all()
        # slower-than-preferred clients are discounted
        exp = s.expected_seconds()
        t_pref = np.quantile(exp, s.round_pref)
        slow = exp > t_pref
        assert slow.any()
        assert (util[slow] / s._stat[slow]).max() < 1.0

    def test_utility_loss_feedback_reweights(self, ds):
        ctx, _, s = self._bound(ds, UtilitySampler(alpha=0.0))
        base = s.statistical_utilities().copy()
        # before any report the loss term is 1: stat utilities unchanged
        assert np.allclose(base, s._stat)
        s.observe_loss(0, 4.0)
        s.observe_loss(1, 1.0)
        util = s.statistical_utilities()
        # client 1 (low loss) discounted 4x relative to client 0
        assert util[1] / s._stat[1] == pytest.approx(0.25)
        assert util[0] / s._stat[0] == pytest.approx(1.0)
        # unexplored clients take the optimistic max-loss prior
        assert util[5] / s._stat[5] == pytest.approx(1.0)
        # EMA smoothing on repeat reports
        s.observe_loss(1, 1.0)
        assert s._loss[1] == pytest.approx(1.0)
        # reset forgets losses
        s.reset()
        assert not s._loss_seen.any()
        assert np.allclose(s.statistical_utilities(), s._stat)

    def test_utility_loss_feedback_off(self, ds):
        ctx, _, s = self._bound(ds, UtilitySampler(alpha=0.0, loss_feedback=False))
        s.observe_loss(0, 10.0)
        assert np.allclose(s.statistical_utilities(), s._stat)

    def test_observe_loss_requires_bind(self):
        with pytest.raises(RuntimeError):
            UtilitySampler().observe_loss(0, 1.0)

    def test_semisync_feeds_losses_into_utility_sampler(self, ds):
        sampler = UtilitySampler()
        sim = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, _cfg(),
            latency_model=LognormalLatency(sigma=1.0),
            client_sampler=sampler,
        )
        h = sim.run()
        # participants reported their mean local training loss
        assert sampler._loss_seen.any()
        assert (sampler._loss[sampler._loss_seen] > 0).all()
        # and every computed update carries the loss it reported
        assert len(h.records) == sim.ctx.config.rounds

    def test_utility_score_blend_validation(self, ds):
        with pytest.raises(ValueError):
            UtilitySampler(score_blend=1.5)
        with pytest.raises(ValueError):
            UtilitySampler(alpha=-1.0)
        with pytest.raises(ValueError):
            UtilitySampler(round_pref=1.0)
        ctx, _, s = self._bound(ds, UtilitySampler(score_blend=0.5))
        assert (s._stat > 0).all()

    def test_registry(self):
        assert set(SAMPLERS) == {"uniform", "score", "round-robin",
                                 "fast", "long-idle", "utility"}
        assert type(make_sampler("long-idle")) is LongIdleSampler
        with pytest.raises(KeyError):
            make_sampler("psychic")

    def test_semisync_run_with_time_aware_sampler(self, ds):
        """End-to-end: sampler bound + observed by the engine; fast-first
        cohorts finish rounds sooner than uniform ones."""
        cfg = _cfg(rounds=10, eval_every=5)
        uni = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, cfg,
            latency_model=LognormalLatency(sigma=1.5),
        )
        h_uni = uni.run()
        fast = SemiSyncFederatedSimulation(
            FedAvg(), _model_builder(), ds, cfg,
            latency_model=LognormalLatency(sigma=1.5),
            client_sampler=FastFirstSampler(power=3.0),
        )
        h_fast = fast.run()
        assert not np.isnan(h_fast.final_accuracy)
        assert fast.total_virtual_time < uni.total_virtual_time


class TestCommPricedLatency:
    @pytest.mark.parametrize("method,mult", [("scaffold", 2.0), ("fedcm", 1.5)])
    def test_payload_matches_communication_model(self, ds, method, mult):
        """Priced comm seconds == CommunicationModel bytes / bandwidth."""
        ctx = _ctx(ds)
        bw = 1e6
        lat = ConstantLatency(bandwidth=bw, comm_method=method).bind(ctx)
        cm = CommunicationModel(num_params=ctx.dim, clients_per_round=1)
        assert lat.comm_seconds() == pytest.approx(cm.client_payload_bytes(method) / bw)
        # ...and the per-algorithm multiplier over the generic estimate
        generic = ConstantLatency(bandwidth=bw).bind(ctx)
        assert lat.comm_seconds() / generic.comm_seconds() == pytest.approx(mult)
        down, up = comm_profile(method)
        assert cm.client_payload_bytes(method) == int((down + up) * ctx.dim * 8)

    def test_base_seconds_split(self, ds):
        ctx = _ctx(ds)
        lat = ConstantLatency(comm_method="scaffold").bind(ctx)
        for k in range(ctx.num_clients):
            assert lat.base_seconds(k) == pytest.approx(
                lat.compute_seconds(k) + lat.comm_seconds()
            )

    def test_unknown_method_raises(self, ds):
        with pytest.raises(KeyError):
            ConstantLatency(comm_method="warp-drive").bind(_ctx(ds))

    def test_every_registry_method_has_a_profile(self):
        """--price-comm must never silently fall back for built-in methods."""
        from repro.algorithms import METHOD_NAMES

        for method in METHOD_NAMES:
            down, up = comm_profile(method)
            assert down >= 1.0 and up >= 1.0, method

    def test_auto_resolution(self, ds):
        lat = ConstantLatency(comm_method="auto")
        resolve_auto_comm(lat, FedCM(alpha=0.1))
        assert lat.comm_method == "fedcm"
        lat2 = ConstantLatency(comm_method="auto")

        class Plugin:
            name = "my-exotic-method"

        resolve_auto_comm(lat2, Plugin())
        assert lat2.comm_method is None  # graceful generic fallback
        lat3 = ConstantLatency()
        resolve_auto_comm(lat3, FedCM(alpha=0.1))
        assert lat3.comm_method is None  # no sentinel, no change

    def test_comm_pricing_shows_up_in_virtual_time(self, ds):
        """FedCM's 2x downlink makes its comm-priced run slower than FedAvg
        under identical compute and device factors."""
        cfg = _cfg()
        times = {}
        for method in ("fedavg", "fedcm"):
            bundle = make_method(method)
            sim = SemiSyncFederatedSimulation(
                bundle.algorithm, _model_builder(), ds, cfg,
                latency_model=ConstantLatency(comm_method="auto", time_per_batch=1e-6),
                loss_builder=bundle.loss_builder,
                sampler_builder=bundle.sampler_builder,
            )
            sim.run()
            times[method] = sim.total_virtual_time
        assert times["fedcm"] / times["fedavg"] == pytest.approx(1.5, rel=1e-3)

    def test_dropout_retries_repay_priced_payload(self, ds):
        """Bugfix: with comm pricing on, every retransmission pays the
        algorithm's full payload again — the wrapper propagates the comm
        method to its inner per-attempt model at bind."""
        ctx = _ctx(ds)
        inner = ConstantLatency()
        drop = DropoutRetryLatency(
            inner=inner, p_drop=0.9, max_retries=3, comm_method="scaffold"
        ).bind(ctx)
        assert inner.comm_method == "scaffold"  # propagated at bind
        priced_attempt = inner.latency(0, 0)
        generic_attempt = ConstantLatency().bind(ctx).latency(0, 0)
        assert priced_attempt > generic_attempt
        # total cost of any dispatch is a whole number of priced attempts
        for i in range(20):
            total = drop.latency(0, i)
            n_attempts = total / priced_attempt
            assert n_attempts == pytest.approx(round(n_attempts))
            assert 1 <= round(n_attempts) <= 4

    def test_make_latency_model_accepts_comm_method(self):
        lat = make_latency_model("dropout", comm_method="scaffold")
        assert lat.comm_method == "scaffold"
        assert lat.inner.comm_method == "scaffold"


class TestSchedulingCLI:
    def test_adaptive_deadline_and_sampler(self):
        rc = cli_main([
            "runtime", "--algorithm", "semisync", "--base-method", "fedavg",
            "--clients", "6", "--rounds", "2", "--max-batches", "2",
            "--eval-every", "1", "--adaptive-deadline", "0.3",
            "--sampler", "fast", "--price-comm", "--latency", "lognormal",
        ])
        assert rc == 0

    def test_staleness_budget(self, capsys):
        rc = cli_main([
            "runtime", "--algorithm", "fedasync", "--clients", "6",
            "--rounds", "2", "--max-batches", "2", "--eval-every", "1",
            "--staleness-budget", "1.0",
        ])
        assert rc == 0
        assert "final accuracy" in capsys.readouterr().out
