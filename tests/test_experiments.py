"""Tests for the declarative experiment API (repro.experiments)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    DataSpec,
    ENGINE_KINDS,
    ExperimentSpec,
    MethodSpec,
    ModelSpec,
    RuntimeSpec,
    build,
    expand,
    parse_override,
    resolve_model_alias,
    run,
)
from repro.runtime import AsyncFederatedSimulation, SemiSyncFederatedSimulation
from repro.simulation import FLConfig, FederatedSimulation

# a problem small enough that every engine kind finishes in ~a second
_TINY = dict(
    data=DataSpec(clients=6, scale=0.3, beta=0.3),
    config=FLConfig(rounds=2, participation=0.5, local_epochs=1, batch_size=10,
                    max_batches_per_round=2, eval_every=1, seed=1),
)


def tiny_spec(kind: str = "sync", **runtime_kw) -> ExperimentSpec:
    method = {"sync": "fedavg", "semisync": "fedavg",
              "fedasync": "fedasync", "fedbuff": "fedbuff"}[kind]
    if kind != "sync":
        runtime_kw.setdefault("latency", "lognormal")
    return ExperimentSpec(
        method=MethodSpec(name=method),
        runtime=RuntimeSpec(kind=kind, **runtime_kw),
        **_TINY,
    )


class TestSpecValidation:
    def test_defaults_construct(self):
        spec = ExperimentSpec()
        assert spec.runtime.kind == "sync"
        assert spec.method.name == "fedavg"

    def test_registry_names_checked_at_construction(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            DataSpec(dataset="mnist-prime")
        with pytest.raises(ValueError, match="unknown model arch"):
            ModelSpec(arch="transformer-xxl")
        with pytest.raises(ValueError, match="unknown method"):
            MethodSpec(name="fedmagic")
        with pytest.raises(ValueError, match="unknown engine kind"):
            RuntimeSpec(kind="warp")
        with pytest.raises(ValueError, match="unknown latency model"):
            RuntimeSpec(kind="semisync", latency="quantum")
        with pytest.raises(ValueError, match="unknown sampler"):
            RuntimeSpec(kind="semisync", sampler="psychic")

    def test_range_checks(self):
        with pytest.raises(ValueError):
            DataSpec(imbalance_factor=0.0)
        with pytest.raises(ValueError):
            DataSpec(clients=0)
        with pytest.raises(ValueError):
            RuntimeSpec(kind="semisync", deadline=-1.0)
        with pytest.raises(ValueError):
            RuntimeSpec(kind="semisync", adaptive_deadline=1.0)
        with pytest.raises(ValueError):
            RuntimeSpec(kind="fedasync", concurrency=0)

    def test_async_kind_wraps_other_methods_but_not_async_rules(self):
        # any synchronous method may run under an async kind (its local
        # rule is wrapped in an AsyncAdapter by the facade) ...
        ExperimentSpec(method=MethodSpec(name="scaffold"),
                       runtime=RuntimeSpec(kind="fedasync"))
        # ... but a second staleness-aware rule cannot nest
        with pytest.raises(ValueError, match="cannot run under"):
            ExperimentSpec(method=MethodSpec(name="fedbuff"),
                           runtime=RuntimeSpec(kind="fedasync"))
        # async methods may still run in the synchronous fallback engines
        ExperimentSpec(method=MethodSpec(name="fedbuff"),
                       runtime=RuntimeSpec(kind="sync"))

    def test_stateful_method_parallelises_via_job_contract(self):
        # the PR-4 restriction is lifted: packed client state rides the
        # execution backends' job contract, so stateful methods accept
        # worker pools on every engine kind
        ExperimentSpec(method=MethodSpec(name="scaffold"),
                       runtime=RuntimeSpec(kind="fedbuff", workers=2))
        ExperimentSpec(method=MethodSpec(name="fedsam"),
                       runtime=RuntimeSpec(kind="fedbuff", workers=2))
        ExperimentSpec(method=MethodSpec(name="scaffold"),
                       runtime=RuntimeSpec(kind="sync", backend="process"))

    def test_backend_validation(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RuntimeSpec(backend="gpu-cluster")
        with pytest.raises(ValueError, match="contradicts"):
            RuntimeSpec(backend="serial", workers=4)
        with pytest.raises(ValueError, match="buffer_ema"):
            RuntimeSpec(kind="fedasync", buffer_ema="adaptive")
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="semisync", buffer_ema="staleness")
        RuntimeSpec(kind="fedbuff", backend="thread", workers=2)  # fine
        RuntimeSpec(kind="fedasync", buffer_ema="staleness")  # fine

    def test_aggregate_broadcast_methods_rejected_under_async(self):
        # FedCM's momentum broadcast only refreshes in aggregate(): under an
        # async rule it would stay frozen, so the spec refuses it up front
        with pytest.raises(ValueError, match="aggregate"):
            ExperimentSpec(method=MethodSpec(name="fedcm"),
                           runtime=RuntimeSpec(kind="fedbuff"))
        with pytest.raises(ValueError, match="aggregate"):
            ExperimentSpec(method=MethodSpec(name="fedwcm"),
                           runtime=RuntimeSpec(kind="fedasync"))
        # the semisync engine drives them unchanged
        ExperimentSpec(method=MethodSpec(name="fedcm"),
                       runtime=RuntimeSpec(kind="semisync"))

    def test_kind_rejects_unconsumable_knobs(self):
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="sync", latency="lognormal")
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="sync", deadline=1.0)
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="semisync", concurrency=4)
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="fedasync", deadline=1.0)
        with pytest.raises(ValueError, match="no effect"):
            RuntimeSpec(kind="fedbuff", late_policy="trickle")

    def test_late_policy_validated(self):
        with pytest.raises(ValueError, match="late_policy"):
            RuntimeSpec(kind="semisync", late_policy="teleport")
        with pytest.raises(ValueError, match="late_weight only applies"):
            RuntimeSpec(kind="semisync", late_policy="trickle", late_weight=0.5)
        RuntimeSpec(kind="semisync", late_policy="trickle", deadline=1.0)  # fine

    def test_async_sampler_must_be_time_aware(self):
        with pytest.raises(ValueError, match="per-dispatch"):
            RuntimeSpec(kind="fedbuff", sampler="score")
        RuntimeSpec(kind="fedbuff", sampler="fast")  # fine
        RuntimeSpec(kind="fedasync", sampler="utility")  # fine

    def test_latency_kwargs_require_latency(self):
        with pytest.raises(ValueError, match="latency_kwargs requires"):
            RuntimeSpec(kind="semisync", latency_kwargs={"sigma": 5.0})
        RuntimeSpec(kind="semisync", latency="lognormal",
                    latency_kwargs={"sigma": 5.0})  # fine

    def test_sampler_kwargs_validated(self):
        with pytest.raises(ValueError, match="non-uniform sampler"):
            RuntimeSpec(kind="semisync", sampler_kwargs={"power": 2.0})
        RuntimeSpec(kind="fedbuff", sampler="fast",
                    sampler_kwargs={"power": 2.0})  # per-dispatch: fine now
        RuntimeSpec(kind="semisync", sampler="fast",
                    sampler_kwargs={"power": 2.0})  # fine

    def test_kwargs_must_be_jsonable(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            MethodSpec(name="fedavg", kwargs={"fn": lambda: None})

    def test_lr_schedule_must_be_callable(self):
        with pytest.raises(TypeError, match="callable"):
            FLConfig(lr_schedule="cosine")
        FLConfig(lr_schedule=lambda r: 1.0)  # fine


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_dict_and_json_round_trip(self, kind):
        spec = tiny_spec(kind)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = tiny_spec("semisync", sampler="utility", adaptive_deadline=0.3,
                         price_comm=True, latency_kwargs={"sigma": 1.3})
        path = str(tmp_path / "spec.json")
        spec.save(path)
        assert ExperimentSpec.load(path) == spec
        # the file is plain JSON anyone can edit
        d = json.load(open(path))
        assert d["runtime"]["sampler"] == "utility"

    def test_randomized_round_trip_property(self):
        rng = np.random.default_rng(0)
        kinds = list(ENGINE_KINDS)
        for _ in range(25):
            kind = kinds[rng.integers(len(kinds))]
            spec = tiny_spec(kind).override_many([
                ("data.imbalance_factor", float(rng.uniform(0.01, 1.0))),
                ("data.beta", float(rng.uniform(0.05, 1.0))),
                ("config.rounds", int(rng.integers(1, 50))),
                ("config.seed", int(rng.integers(0, 1000))),
                ("name", f"prop-{rng.integers(1e6)}"),
            ])
            assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_partial_dict_fills_defaults(self):
        spec = ExperimentSpec.from_dict({"method": {"name": "fedcm"}})
        assert spec.method.name == "fedcm"
        assert spec.data == DataSpec()

    def test_unknown_keys_raise(self):
        with pytest.raises(ValueError, match="unknown spec section"):
            ExperimentSpec.from_dict({"modle": {}})
        with pytest.raises(ValueError, match="unknown key"):
            ExperimentSpec.from_dict({"config": {"rouns": 3}})
        with pytest.raises(ValueError, match="lr_schedule"):
            # callable-only field never appears in serialized form
            ExperimentSpec.from_dict({"config": {"lr_schedule": "x"}})

    def test_lr_schedule_blocks_serialization(self):
        spec = ExperimentSpec(config=FLConfig(lr_schedule=lambda r: 1.0))
        with pytest.raises(ValueError, match="cannot be serialized"):
            spec.to_dict()


class TestOverrides:
    def test_parse_override(self):
        assert parse_override("config.rounds=3") == ("config.rounds", 3)
        assert parse_override("runtime.sampler=utility") == ("runtime.sampler", "utility")
        assert parse_override('data.dataset="cifar10-lite"') == ("data.dataset", "cifar10-lite")
        assert parse_override("runtime.deadline=null") == ("runtime.deadline", None)
        assert parse_override("runtime.price_comm=true") == ("runtime.price_comm", True)
        with pytest.raises(ValueError, match="key.path=value"):
            parse_override("config.rounds")
        with pytest.raises(ValueError, match="empty key"):
            parse_override("=3")

    def test_apply_overrides(self):
        spec = tiny_spec().apply_overrides([
            "config.rounds=7", "data.beta=0.6", "method.name=fedcm",
        ])
        assert spec.config.rounds == 7
        assert spec.data.beta == 0.6
        assert spec.method.name == "fedcm"

    def test_nested_kwargs_override(self):
        spec = tiny_spec("fedasync").apply_overrides(["method.kwargs.mixing=0.9"])
        assert spec.method.kwargs["mixing"] == 0.9

    def test_order_independent_cross_section(self):
        # kind and method must change together; either order works
        a = tiny_spec().apply_overrides(
            ["runtime.kind=fedasync", "method.name=fedasync", "runtime.latency=lognormal"])
        b = tiny_spec().apply_overrides(
            ["method.name=fedasync", "runtime.latency=lognormal", "runtime.kind=fedasync"])
        assert a == b
        assert a.runtime.kind == "fedasync"

    def test_whole_section_and_dotted_mix_raises(self):
        with pytest.raises(ValueError, match="one style per section"):
            tiny_spec().override_many([
                ("config.rounds", 5), ("config", FLConfig(rounds=9))])
        with pytest.raises(ValueError, match="one style per section"):
            tiny_spec().override_many([
                ("config", FLConfig(rounds=9)), ("config.rounds", 5)])

    def test_bad_key_raises(self):
        with pytest.raises(ValueError, match="unknown field"):
            tiny_spec().apply_overrides(["nope.x=1"])
        with pytest.raises(ValueError, match="unknown field"):
            tiny_spec().apply_overrides(["config.rouns=3"])

    def test_bad_type_raises(self):
        with pytest.raises(ValueError, match="expected int"):
            tiny_spec().apply_overrides(["config.rounds=soon"])
        with pytest.raises(ValueError, match="expected"):
            tiny_spec().apply_overrides(["data.clients=2.5"])

    def test_invalid_value_raises(self):
        with pytest.raises(ValueError):
            tiny_spec().apply_overrides(["config.rounds=0"])
        with pytest.raises(ValueError):
            tiny_spec().apply_overrides(["data.dataset=atlantis"])

    def test_int_promotes_to_float(self):
        spec = tiny_spec().apply_overrides(["data.beta=1"])
        assert spec.data.beta == 1.0
        assert isinstance(spec.data.beta, float)


class TestSweeps:
    def test_expand_product_order(self):
        grid = expand(tiny_spec(), {"method.name": ["fedavg", "fedcm"],
                                    "config.seed": [0, 1]})
        assert [(s.method.name, s.config.seed) for s in grid] == [
            ("fedavg", 0), ("fedavg", 1), ("fedcm", 0), ("fedcm", 1)]

    def test_expand_empty_grid(self):
        assert expand(tiny_spec(), {}) == [tiny_spec()]

    def test_expand_validates_values(self):
        with pytest.raises(ValueError, match="iterable"):
            expand(tiny_spec(), {"config.rounds": 3})
        with pytest.raises(ValueError):
            expand(tiny_spec(), {"method.name": ["fedavg", "fedmagic"]})

    def test_expand_coupled_axes(self):
        grid = expand(tiny_spec(), {
            "runtime.kind": ["fedbuff"], "method.name": ["fedbuff"],
            "runtime.latency": ["pareto"],
        })
        assert grid[0].runtime.kind == "fedbuff"


class TestFacade:
    def test_build_returns_engine_per_kind(self):
        assert isinstance(build(tiny_spec("sync")), FederatedSimulation)
        assert isinstance(build(tiny_spec("semisync")), SemiSyncFederatedSimulation)
        assert isinstance(build(tiny_spec("fedasync")), AsyncFederatedSimulation)
        assert isinstance(build(tiny_spec("fedbuff")), AsyncFederatedSimulation)

    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_end_to_end_run(self, kind):
        result = run(tiny_spec(kind))
        assert len(result.history.records) == 2
        assert np.isfinite(result.final_accuracy)
        assert result.final_params is not None
        if kind == "sync":
            assert result.total_virtual_time == 0.0
        else:
            assert result.total_virtual_time > 0.0

    def test_same_spec_same_history(self):
        a = run(tiny_spec("fedbuff"))
        b = run(tiny_spec("fedbuff"))
        assert np.allclose(a.history.accuracy, b.history.accuracy, equal_nan=True)
        assert a.total_virtual_time == b.total_virtual_time

    def test_time_aware_sampler_needs_timed_engine(self):
        # rejected already at spec construction, not at build
        with pytest.raises(ValueError, match="time-aware"):
            tiny_spec("sync").override("runtime.sampler", "utility")
        with pytest.raises(ValueError, match="time-aware"):
            RuntimeSpec(kind="sync", sampler="fast")
        RuntimeSpec(kind="sync", sampler="score")  # untimed samplers fine

    def test_linear_arch_runs_on_flat_view(self):
        result = run(tiny_spec().override("model", ModelSpec(arch="linear")))
        assert np.isfinite(result.final_accuracy)

    def test_semisync_utility_from_json_runs(self, tmp_path):
        spec = tiny_spec("semisync", sampler="utility", adaptive_deadline=0.3)
        path = str(tmp_path / "s.json")
        spec.save(path)
        result = run(ExperimentSpec.load(path))
        assert result.total_virtual_time > 0
        # the engine's sampler received loss feedback (true Oort utility)
        assert result.engine.client_sampler._loss_seen.any()

    def test_price_comm_survives_default_latency(self):
        # latency=None means "implicit constant" — price_comm must still
        # reach the engine instead of being silently dropped
        spec = tiny_spec("semisync", latency=None, price_comm=True,
                         ).override("method", MethodSpec(name="scaffold"))
        engine = build(spec)
        assert engine.latency_model.comm_method == "scaffold"
        unpriced = build(tiny_spec("semisync", latency=None))
        assert engine.latency_model.latency(0, 0) > unpriced.latency_model.latency(0, 0)

    def test_conv_arch_needs_image_data(self):
        arch, kw = resolve_model_alias("conv")
        assert arch == "resnet-lite-18" and kw == {"width": 4}
        spec = tiny_spec().override("model", ModelSpec(arch=arch, kwargs=kw))
        with pytest.raises(ValueError, match="image-shaped"):
            build(spec)  # fashion-mnist-lite is flat


class TestCLI:
    def test_spec_dump_is_loadable(self, capsys):
        rc = cli_main(["spec", "dump", "--algorithm", "semisync", "--sampler",
                       "utility", "--latency", "lognormal", "--clients", "6"])
        assert rc == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.runtime.kind == "semisync"
        assert spec.runtime.sampler == "utility"
        assert spec.data.clients == 6

    def test_cli_defaults_derive_from_dataclasses(self, capsys):
        rc = cli_main(["spec", "dump"])
        assert rc == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        # the old CLI's drifted defaults (batch 10, participation 0.25) are
        # gone: absent flags leave the FLConfig/DataSpec defaults untouched
        assert spec.config.batch_size == FLConfig().batch_size
        assert spec.config.participation == FLConfig().participation
        assert spec.data == DataSpec()

    def test_spec_dump_matches_runtime_defaults(self, capsys):
        # the dumped spec must be the spec `runtime` would actually run:
        # timed kinds default to the lognormal latency model
        rc = cli_main(["spec", "dump", "--algorithm", "fedasync"])
        assert rc == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.runtime.latency == "lognormal"

    def test_spec_validate(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        tiny_spec("fedbuff").save(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text('{"runtime": {"kind": "warp"}}')
        assert cli_main(["spec", "validate", str(good)]) == 0
        assert cli_main(["spec", "validate", str(good), str(bad)]) == 1
        err = capsys.readouterr().err
        assert "INVALID" in err

    def test_run_with_config_and_set(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        tiny_spec("semisync").save(str(path))
        rc = cli_main(["run", "--config", str(path), "--set", "config.rounds=1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total virtual time" in out  # engine kind came from the file

    def test_flags_override_config_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        tiny_spec("sync").save(str(path))
        rc = cli_main(["run", "--config", str(path), "--rounds", "1",
                       "--method", "fedcm"])
        assert rc == 0

    def test_explicit_method_wraps_under_async_config(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        tiny_spec("fedbuff").save(str(path))
        rc = cli_main(["spec", "dump", "--config", str(path),
                       "--method", "scaffold"])
        assert rc == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        # scaffold's local rule will run under the fedbuff server rule
        assert (spec.runtime.kind, spec.method.name) == ("fedbuff", "scaffold")
        # a second staleness-aware rule still cannot nest
        rc = cli_main(["run", "--config", str(path), "--method", "fedasync",
                       "--rounds", "1"])
        assert rc == 2
        assert "cannot run under" in capsys.readouterr().err

    def test_explicit_method_overrides_semisync_config(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        tiny_spec("semisync").save(str(path))
        rc = cli_main(["spec", "dump", "--config", str(path),
                       "--method", "scaffold"])
        assert rc == 0
        spec = ExperimentSpec.from_json(capsys.readouterr().out)
        assert spec.method.name == "scaffold"  # flag beats the file

    def test_sync_run_maps_sampler_and_warns_on_timing_flags(
            self, tmp_path, capsys):
        # a sync-kind config through `runtime` warns for every dropped flag
        path = tmp_path / "spec.json"
        tiny_spec("sync").save(str(path))
        rc = cli_main(["spec", "dump", "--config", str(path),
                       "--latency", "pareto", "--sampler", "score"])
        assert rc == 0
        out, err = capsys.readouterr()
        assert "--latency has no effect" in err
        spec = ExperimentSpec.from_json(out)
        assert spec.runtime.sampler == "score"  # sync does consume this

    def test_bad_override_exits_2(self, capsys):
        rc = cli_main(["run", "--set", "config.rounds=soon"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_config_exits_2(self, capsys):
        rc = cli_main(["run", "--config", "/nonexistent/spec.json"])
        assert rc == 2

    def test_compare_with_nested_async_rule_errors_cleanly(self, tmp_path, capsys):
        # racing methods over an async config is allowed for wrappable
        # methods, but a second staleness-aware rule still fails cleanly
        path = tmp_path / "spec.json"
        tiny_spec("fedbuff").save(str(path))
        rc = cli_main(["compare", "--config", str(path),
                       "--methods", "fedavg,fedasync"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestNamedLrSchedule:
    """The serializable {"name": ...} form of config.lr_schedule."""

    def test_named_schedule_survives_json_round_trip(self):
        spec = ExperimentSpec(
            config=FLConfig(rounds=10, lr_schedule={"name": "cosine", "floor": 0.1})
        )
        back = ExperimentSpec.from_json(spec.to_json())
        assert back == spec
        assert back.config.lr_schedule == {"name": "cosine", "floor": 0.1}

    def test_callable_schedule_still_refuses_serialization(self):
        spec = ExperimentSpec(config=FLConfig(lr_schedule=lambda r: 1.0))
        with pytest.raises(ValueError, match="bare callable"):
            spec.to_dict()

    def test_unknown_schedule_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="named lr_schedule"):
            FLConfig(lr_schedule={"name": "sawtooth"})
        with pytest.raises(ValueError, match="named lr_schedule"):
            FLConfig(lr_schedule={"floor": 0.1})  # missing name

    def test_resolution_matches_make_schedule(self):
        from repro.nn.schedules import make_schedule
        from repro.simulation.config import resolve_lr_schedule

        got = resolve_lr_schedule({"name": "cosine", "floor": 0.2}, rounds=40)
        want = make_schedule("cosine", 40, floor=0.2)
        assert [got(r) for r in range(40)] == [want(r) for r in range(40)]
        # explicit total_rounds wins over the run's round count
        got = resolve_lr_schedule(
            {"name": "cosine", "total_rounds": 10}, rounds=40
        )
        assert got(10) == pytest.approx(0.0)

    def test_engine_applies_named_schedule(self):
        spec = tiny_spec("sync").override(
            "config.lr_schedule", {"name": "step", "step_size": 1, "gamma": 0.5}
        )
        engine = build(spec)
        assert engine.ctx.lr_at(0) == pytest.approx(spec.config.lr_local)
        assert engine.ctx.lr_at(1) == pytest.approx(spec.config.lr_local * 0.5)

    def test_override_accepts_schedule_dict(self):
        spec = tiny_spec("sync").apply_overrides(
            ['config.lr_schedule={"name": "cosine"}']
        )
        assert spec.config.lr_schedule == {"name": "cosine"}

    def test_async_engine_remaps_named_schedule_per_window(self):
        spec = tiny_spec("fedasync").override(
            "config.lr_schedule", {"name": "step", "step_size": 1, "gamma": 0.5}
        )
        engine = build(spec)
        w = engine.window
        sched = engine.ctx.config.lr_schedule
        assert sched(0) == 1.0
        assert sched(w) == 0.5
