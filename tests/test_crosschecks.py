"""Cross-validation of optimized kernels against naive reference
implementations.

The HPC guides' cardinal rule: a fast kernel is only trustworthy next to a
slow, obviously-correct one.  These tests pin the im2col convolution and the
NTT negacyclic product to schoolbook references.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.bfv import _NegacyclicNTT
from repro.he.primes import find_ntt_prime
from repro.nn import Conv2d, MaxPool2d


def naive_conv2d(x, w, b, stride, padding):
    """Schoolbook convolution, NCHW."""
    n, c_in, h, wd = x.shape
    c_out, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    hp, wp = x.shape[2], x.shape[3]
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    out = np.zeros((n, c_out, oh, ow))
    for ni in range(n):
        for co in range(c_out):
            for i in range(oh):
                for j in range(ow):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum() + (b[co] if b is not None else 0.0)
    return out


def naive_negacyclic(a, b, q):
    """Schoolbook product in Z_q[x]/(x^n + 1)."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] = (out[k] + a[i] * b[j]) % q
            else:
                out[k - n] = (out[k - n] - a[i] * b[j]) % q
    return out


class TestConvCrossCheck:
    @pytest.mark.parametrize(
        "cin,cout,k,stride,pad,size",
        [
            (1, 1, 3, 1, 1, 5),
            (2, 3, 3, 1, 0, 6),
            (3, 2, 2, 2, 0, 6),
            (2, 4, 3, 2, 1, 7),
            (1, 1, 1, 1, 0, 4),
        ],
    )
    def test_matches_naive(self, cin, cout, k, stride, pad, size):
        rng = np.random.default_rng(hash((cin, cout, k, stride, pad)) % 2**32)
        conv = Conv2d(cin, cout, k, np.random.default_rng(0), stride=stride, padding=pad)
        x = rng.normal(size=(2, cin, size, size))
        fast = conv.forward(x, train=False)
        slow = naive_conv2d(x, conv.params["W"], conv.params.get("b"), stride, pad)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_naive_random_geometry(self, seed):
        rng = np.random.default_rng(seed)
        cin = int(rng.integers(1, 4))
        cout = int(rng.integers(1, 4))
        k = int(rng.integers(1, 4))
        stride = int(rng.integers(1, 3))
        pad = int(rng.integers(0, 2))
        size = int(rng.integers(k + stride, k + stride + 4))
        conv = Conv2d(cin, cout, k, np.random.default_rng(seed), stride=stride, padding=pad)
        x = rng.normal(size=(1, cin, size, size))
        fast = conv.forward(x, train=False)
        slow = naive_conv2d(x, conv.params["W"], conv.params.get("b"), stride, pad)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_maxpool_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6))
        pool = MaxPool2d(2)
        fast = pool.forward(x, train=False)
        slow = np.zeros((2, 3, 3, 3))
        for n in range(2):
            for c in range(3):
                for i in range(3):
                    for j in range(3):
                        slow[n, c, i, j] = x[n, c, 2 * i : 2 * i + 2, 2 * j : 2 * j + 2].max()
        np.testing.assert_array_equal(fast, slow)


class TestNTTCrossCheck:
    @pytest.fixture(scope="class")
    def ntt(self):
        n = 64
        q = find_ntt_prime(30, n)
        return _NegacyclicNTT(n, q), n, q

    def test_matches_schoolbook(self, ntt):
        t, n, q = ntt
        rng = np.random.default_rng(0)
        a = [int(v) for v in rng.integers(0, q, n)]
        b = [int(v) for v in rng.integers(0, q, n)]
        assert t.multiply(a, b) == naive_negacyclic(a, b, q)

    def test_negacyclic_wraparound_sign(self, ntt):
        t, n, q = ntt
        # x^(n-1) * x = x^n = -1 in the ring
        a = [0] * n
        a[n - 1] = 1
        b = [0] * n
        b[1] = 1
        out = t.multiply(a, b)
        assert out[0] == q - 1  # -1 mod q
        assert all(v == 0 for v in out[1:])

    def test_identity_element(self, ntt):
        t, n, q = ntt
        rng = np.random.default_rng(1)
        a = [int(v) for v in rng.integers(0, q, n)]
        one = [1] + [0] * (n - 1)
        assert t.multiply(a, one) == a

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_commutativity(self, ntt, seed):
        t, n, q = ntt
        rng = np.random.default_rng(seed)
        a = [int(v) for v in rng.integers(0, q, n)]
        b = [int(v) for v in rng.integers(0, q, n)]
        assert t.multiply(a, b) == t.multiply(b, a)
