"""Failure-injection and edge-case tests.

Degenerate federated configurations the library must survive gracefully:
single-class clients, one-sample clients, single-client federations, extreme
hyper-parameters, empty evaluation sets, and adversarially skewed scores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedWCM, make_method
from repro.core import adaptive_alpha, client_scores, score_ratio, softmax_weights
from repro.data.partition import partition_balanced_dirichlet, partition_by_class_dirichlet
from repro.data.registry import DatasetInfo, FederatedDataset
from repro.data.sampler import BalancedBatchSampler
from repro.nn import CrossEntropyLoss, evaluate, make_mlp
from repro.simulation import FederatedSimulation, FLConfig


def _manual_dataset(counts_per_client: list[np.ndarray], dim: int = 8, seed: int = 0):
    """Hand-build a FederatedDataset with exact per-client class counts."""
    rng = np.random.default_rng(seed)
    num_classes = len(counts_per_client[0])
    xs, ys, parts = [], [], []
    pos = 0
    protos = rng.normal(size=(num_classes, dim))
    for counts in counts_per_client:
        n = int(np.sum(counts))
        labels = np.repeat(np.arange(num_classes), counts)
        x = protos[labels] + rng.normal(0, 1.0, size=(n, dim))
        xs.append(x)
        ys.append(labels)
        parts.append(np.arange(pos, pos + n))
        pos += n
    x_test = protos[np.arange(num_classes).repeat(10)] + rng.normal(
        0, 1.0, size=(num_classes * 10, dim)
    )
    y_test = np.arange(num_classes).repeat(10)
    info = DatasetInfo("manual", num_classes, (dim,), 10, 10, 1.0, 1.0, 1)
    return FederatedDataset(
        info=info,
        x_train=np.concatenate(xs),
        y_train=np.concatenate(ys),
        x_test=x_test,
        y_test=y_test,
        partitions=parts,
        imbalance_factor=1.0,
        beta=1.0,
        partition_kind="manual",
    )


class TestDegenerateClients:
    def test_single_class_clients(self):
        # every client holds exactly one class — worst-case heterogeneity
        ds = _manual_dataset([np.eye(4, dtype=int)[i] * 20 for i in range(4)])
        model = make_mlp(8, 4, seed=0)
        cfg = FLConfig(rounds=4, participation=0.5, local_epochs=1, eval_every=2,
                       seed=0, batch_size=5)
        h = FederatedSimulation(FedWCM(), model, ds, cfg).run()
        assert np.isfinite(h.final_accuracy)

    def test_one_sample_client(self):
        counts = [np.array([20, 20, 0, 0]), np.array([0, 0, 1, 0]), np.array([0, 0, 0, 20])]
        ds = _manual_dataset(counts)
        model = make_mlp(8, 4, seed=0)
        cfg = FLConfig(rounds=3, participation=1.0, local_epochs=1, eval_every=1,
                       seed=0, batch_size=5)
        for method in ("fedavg", "fedwcm", "fedwcm-x", "balancefl"):
            b = make_method(method)
            model = make_mlp(8, 4, seed=0)
            h = FederatedSimulation(
                b.algorithm, model, ds, cfg,
                loss_builder=b.loss_builder, sampler_builder=b.sampler_builder,
            ).run()
            assert np.isfinite(h.final_accuracy), method

    def test_single_client_federation(self):
        ds = _manual_dataset([np.array([15, 15, 15])])
        model = make_mlp(8, 3, seed=0)
        cfg = FLConfig(rounds=3, participation=1.0, local_epochs=2, eval_every=1,
                       seed=0, batch_size=5)
        h = FederatedSimulation(FedWCM(), model, ds, cfg).run()
        assert h.final_accuracy > 0.3  # centralised training must work

    def test_missing_class_globally(self):
        # class 2 has zero samples anywhere
        ds = _manual_dataset([np.array([10, 10, 0]), np.array([10, 10, 0])])
        model = make_mlp(8, 3, seed=0)
        cfg = FLConfig(rounds=2, participation=1.0, local_epochs=1, eval_every=1,
                       seed=0, batch_size=5)
        h = FederatedSimulation(FedWCM(), model, ds, cfg).run()
        assert np.isfinite(h.final_accuracy)


class TestExtremeHyperparameters:
    def test_participation_rounding_never_zero(self):
        ds = _manual_dataset([np.array([10, 10])] * 3)
        model = make_mlp(8, 2, seed=0)
        cfg = FLConfig(rounds=1, participation=0.01, seed=0)  # 0.01 * 3 -> 1 client
        h = FederatedSimulation(make_method("fedavg").algorithm, model, ds, cfg).run()
        assert len(h.records[0].selected) == 1

    def test_batch_larger_than_dataset(self):
        ds = _manual_dataset([np.array([3, 3])] * 2)
        model = make_mlp(8, 2, seed=0)
        cfg = FLConfig(rounds=2, participation=1.0, batch_size=500, local_epochs=1,
                       eval_every=1, seed=0)
        h = FederatedSimulation(make_method("fedcm").algorithm, model, ds, cfg).run()
        assert np.isfinite(h.final_accuracy)

    def test_huge_local_lr_stays_finite_history(self):
        # divergence must manifest as numbers, never exceptions
        ds = _manual_dataset([np.array([20, 20])] * 2)
        model = make_mlp(8, 2, seed=0)
        cfg = FLConfig(rounds=2, participation=1.0, lr_local=50.0, local_epochs=1,
                       eval_every=1, seed=0, batch_size=5)
        h = FederatedSimulation(make_method("fedavg").algorithm, model, ds, cfg).run()
        assert len(h.records) == 2


class TestScoringEdgeCases:
    def test_all_clients_identical(self):
        counts = np.tile(np.array([10, 10, 10]), (5, 1))
        s = client_scores(counts)
        w = softmax_weights(s, 0.1)
        np.testing.assert_allclose(w, 0.2)

    def test_one_client_holds_everything(self):
        counts = np.zeros((4, 3), dtype=float)
        counts[0] = [100, 10, 1]
        s = client_scores(counts)
        assert np.all(np.isfinite(s))
        assert s[1] == s[2] == s[3] == 0.0

    def test_score_ratio_with_constant_scores(self):
        assert score_ratio(np.zeros(5), np.array([0])) == 1.0

    def test_alpha_extremes(self):
        assert adaptive_alpha(1.0, 1000, 2.0) < 1.0
        assert adaptive_alpha(0.0, 2, 0.0) == pytest.approx(0.1)


class TestPartitionEdgeCases:
    def test_more_clients_than_smallest_class(self):
        labels = np.array([0] * 100 + [1] * 3)
        parts = partition_balanced_dirichlet(labels, 10, 0.5, np.random.default_rng(0))
        assert sum(len(p) for p in parts) == 103

    def test_single_client_partition(self):
        labels = np.arange(10) % 3
        parts = partition_balanced_dirichlet(labels, 1, 0.5, np.random.default_rng(0))
        assert len(parts) == 1 and len(parts[0]) == 10

    def test_fedgrab_single_class_dataset(self):
        labels = np.zeros(40, dtype=int)
        parts = partition_by_class_dirichlet(
            labels, 4, 0.5, np.random.default_rng(0), num_classes=1
        )
        assert sum(len(p) for p in parts) == 40
        assert min(len(p) for p in parts) >= 1

    def test_balanced_sampler_single_sample(self):
        s = BalancedBatchSampler(np.array([0]), 4)
        batches = list(s.epoch(np.random.default_rng(0)))
        assert np.concatenate(batches).tolist() == [0]


class TestEvaluationEdgeCases:
    def test_evaluate_single_sample(self):
        m = make_mlp(4, 2, seed=0)
        res = evaluate(m, np.zeros((1, 4)), np.array([0]), CrossEntropyLoss())
        assert res["n"] == 1
        assert np.isfinite(res["loss"])

    def test_nan_accuracy_rounds_skipped_in_summary(self):
        ds = _manual_dataset([np.array([10, 10])] * 2)
        model = make_mlp(8, 2, seed=0)
        cfg = FLConfig(rounds=5, participation=1.0, local_epochs=1, eval_every=4,
                       seed=0, batch_size=5)
        h = FederatedSimulation(make_method("fedavg").algorithm, model, ds, cfg).run()
        evaluated = [not np.isnan(r.test_accuracy) for r in h.records]
        assert evaluated == [True, False, False, False, True]
        assert np.isfinite(h.final_accuracy)
