"""Frozen copies of the pre-event-core training loops.

These are the literal ``run()`` bodies of ``FederatedSimulation``,
``SemiSyncFederatedSimulation`` and (serial) ``AsyncFederatedSimulation`` as
they existed before the engines were re-founded on
:mod:`repro.runtime.events`.  They exist ONLY as the reference side of
``tests/test_engine_equivalence.py`` — the production engines must keep
producing bit-identical histories for the pre-refactor knob space.

Do not "fix" or modernise this file: its value is that it does not change.
"""

from __future__ import annotations

import time

import numpy as np

from repro.runtime.clock import ConstantLatency, VirtualClock
from repro.runtime.scheduling import resolve_auto_comm
from repro.simulation.context import SimulationContext
from repro.simulation.engine import (
    BufferAverager,
    History,
    RoundRecord,
    TimedRoundRecord,
    attach_train_loss,
    evaluate_into_record,
)

__all__ = ["legacy_sync_run", "legacy_semisync_run", "legacy_async_run"]


def legacy_sync_run(
    algorithm, model, dataset, config,
    loss_builder=None, sampler_builder=None, metric_hooks=(), client_sampler=None,
) -> History:
    """The old FederatedSimulation.run, verbatim."""
    ctx = SimulationContext(
        model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
    )
    cfg = ctx.config
    algo = algorithm
    algo.setup(ctx)

    x = ctx.x0.copy()
    history = History(algorithm=getattr(algo, "name", type(algo).__name__))

    for r in range(cfg.rounds):
        t0 = time.perf_counter()
        if client_sampler is None:
            selected = ctx.sample_clients(r)
        else:
            selected = np.asarray(client_sampler(ctx, r))
        updates = []
        bufavg = BufferAverager(ctx.model)
        for k in selected:
            bufavg.before_client()
            u = algo.client_update(ctx, r, int(k), x)
            attach_train_loss(algo, u)
            updates.append(u)
            bufavg.after_client()
        bufavg.commit()
        x = algo.aggregate(ctx, r, selected, updates, x)

        rec = RoundRecord(round=r, selected=selected, wall_time=time.perf_counter() - t0)
        if (r % cfg.eval_every == 0) or (r == cfg.rounds - 1):
            evaluate_into_record(ctx, rec, r, x, metric_hooks)
        rec.extras.update(algo.round_extras())
        history.records.append(rec)
    return history


def legacy_semisync_run(
    algorithm, model, dataset, config,
    latency_model=None, deadline=None, late_weight=0.0,
    loss_builder=None, sampler_builder=None, metric_hooks=(), client_sampler=None,
    deadline_controller=None,
) -> History:
    """The old SemiSyncFederatedSimulation.run, verbatim."""
    ctx = SimulationContext(
        model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
    )
    latency_model = latency_model or ConstantLatency()
    resolve_auto_comm(latency_model, algorithm)
    latency_model = latency_model.bind(ctx)
    if client_sampler is not None and hasattr(client_sampler, "bind"):
        client_sampler.bind(ctx, latency_model)

    cfg = ctx.config
    algo = algorithm
    algo.setup(ctx)
    if deadline_controller is not None:
        deadline_controller.reset()
    if client_sampler is not None and hasattr(client_sampler, "reset"):
        client_sampler.reset()

    x = ctx.x0.copy()
    history = History(algorithm=getattr(algo, "name", type(algo).__name__))
    clock = VirtualClock()

    def round_latencies(round_idx, selected):
        k_total = ctx.num_clients
        return np.array(
            [latency_model.latency(int(k), round_idx * k_total + int(k)) for k in selected]
        )

    for r in range(cfg.rounds):
        t0 = time.perf_counter()
        if client_sampler is None:
            selected = ctx.sample_clients(r)
        else:
            selected = np.asarray(client_sampler(ctx, r))

        latencies = round_latencies(r, selected)
        if deadline_controller is not None:
            round_deadline = deadline_controller.start(latencies)
        else:
            round_deadline = deadline
        if round_deadline is None:
            on_time = np.ones(len(selected), dtype=bool)
            round_time = float(latencies.max())
        else:
            on_time = latencies <= round_deadline
            if not on_time.any():
                keep = int(np.argmin(latencies))
                on_time[keep] = True
                round_time = float(latencies[keep])
            elif on_time.all():
                round_time = float(latencies.max())
            else:
                round_time = round_deadline
        if deadline_controller is not None:
            deadline_controller.observe(int((~on_time).sum()), len(selected))
        if client_sampler is not None and hasattr(client_sampler, "observe"):
            for i, k in enumerate(selected):
                client_sampler.observe(int(k), float(latencies[i]))
        include = on_time if late_weight == 0.0 else np.ones(len(selected), dtype=bool)

        updates = []
        included_ids = []
        bufavg = BufferAverager(ctx.model)
        for i, k in enumerate(selected):
            if not include[i]:
                continue
            bufavg.before_client()
            u = algo.client_update(ctx, r, int(k), x)
            attach_train_loss(algo, u)
            if not on_time[i]:
                u.displacement = u.displacement * late_weight
            updates.append(u)
            included_ids.append(int(k))
            bufavg.after_client()
        bufavg.commit()

        if client_sampler is not None and hasattr(client_sampler, "observe_loss"):
            for u in updates:
                if "train_loss" in u.extras:
                    client_sampler.observe_loss(
                        int(u.client_id), float(u.extras["train_loss"])
                    )

        x = algo.aggregate(ctx, r, np.asarray(included_ids, dtype=np.int64), updates, x)
        clock.advance(round_time)

        n_late = int((~on_time).sum())
        rec = TimedRoundRecord(
            round=r,
            selected=np.asarray(included_ids, dtype=np.int64),
            wall_time=time.perf_counter() - t0,
            virtual_time=clock.now,
            staleness=float(n_late),
            concurrency=float(len(selected)),
            updates_applied=r + 1,
        )
        rec.extras["n_late"] = n_late
        rec.extras["n_dropped"] = int(len(selected) - len(included_ids))
        if round_deadline is not None:
            rec.extras["deadline"] = float(round_deadline)
        if (r % cfg.eval_every == 0) or (r == cfg.rounds - 1):
            evaluate_into_record(ctx, rec, r, x, metric_hooks)
        rec.extras.update(algo.round_extras())
        history.records.append(rec)
    return history


def legacy_async_run(
    algorithm, model, dataset, config,
    latency_model=None, concurrency=None, concurrency_controller=None,
    max_updates=None, loss_builder=None, sampler_builder=None, metric_hooks=(),
) -> History:
    """The old (serial) AsyncFederatedSimulation.run, verbatim."""
    from dataclasses import replace

    window = max(1, int(round(config.participation * dataset.num_clients)))
    if config.lr_schedule is not None:
        base_schedule = config.lr_schedule
        config = replace(config, lr_schedule=lambda seq: base_schedule(seq // window))
    ctx = SimulationContext(
        model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
    )
    latency_model = latency_model or ConstantLatency()
    resolve_auto_comm(latency_model, algorithm)
    latency_model = latency_model.bind(ctx)
    concurrency = concurrency if concurrency is not None else window
    if concurrency_controller is not None:
        concurrency_controller.seed(concurrency, window, dataset.num_clients)
        concurrency = concurrency_controller.limit
    max_updates = max_updates if max_updates is not None else config.rounds * window

    cfg = ctx.config
    algo = algorithm
    algo.setup(ctx)
    if concurrency_controller is not None:
        concurrency_controller.reset()
        concurrency = concurrency_controller.limit

    x = ctx.x0.copy()
    history = History(algorithm=getattr(algo, "name", type(algo).__name__))
    clock = VirtualClock()
    buf0 = ctx.model.get_buffers(copy=True) if ctx.model.buffers else None

    in_flight = {}
    pending = []
    results = {}
    busy = {}
    state = {"dispatched": 0, "version": 0, "applied": 0}

    def dispatch():
        rng = np.random.default_rng((cfg.seed, 0xA7, state["dispatched"]))
        avail = np.array(
            [k for k in range(ctx.num_clients) if not busy.get(k)], dtype=np.int64
        )
        if avail.size == 0:
            avail = np.arange(ctx.num_clients, dtype=np.int64)
        cid = int(avail[rng.integers(avail.size)])
        seq = state["dispatched"]
        state["dispatched"] += 1
        clock.schedule(latency_model.latency(cid, seq), client_id=cid, seq=seq)
        in_flight[seq] = (cid, state["version"], x)
        pending.append((seq, cid, x))
        busy[cid] = busy.get(cid, 0) + 1

    def flush():
        while pending:
            x_ref = pending[0][2]
            n = 1
            while n < len(pending) and pending[n][2] is x_ref:
                n += 1
            group = pending[:n]
            del pending[:n]
            outs = []
            for s, c, _ in group:
                if buf0 is not None:
                    ctx.model.set_buffers(buf0)
                outs.append(attach_train_loss(algo, algo.client_update(ctx, s, c, x_ref)))
            for (s, _, _), upd in zip(group, outs):
                results[s] = upd

    completed = 0
    round_idx = 0
    win_tau, win_conc, win_clients = [], [], []
    t0 = time.perf_counter()

    for _ in range(min(concurrency, max_updates)):
        dispatch()

    while len(clock):
        ev = clock.pop()
        seq = ev.data["seq"]
        if seq not in results:
            flush()
        update = results.pop(seq)
        cid, v_dispatch, x_dispatch = in_flight.pop(seq)
        if busy.get(cid, 0) <= 1:
            busy.pop(cid, None)
        else:
            busy[cid] -= 1

        tau = state["version"] - v_dispatch
        x_new = algo.server_apply(ctx, x, update, tau, x_dispatch)
        if x_new is not None:
            x = x_new
            state["version"] += 1
            state["applied"] += 1
        completed += 1
        win_tau.append(float(tau))
        win_conc.append(len(in_flight) + 1)
        win_clients.append(cid)

        if concurrency_controller is not None:
            limit = concurrency_controller.observe(float(tau))
        else:
            limit = concurrency
        while state["dispatched"] < max_updates and len(in_flight) < limit:
            dispatch()

        if completed % window == 0 or completed == max_updates:
            if completed == max_updates:
                x_final = algo.finalize(ctx, x)
                if x_final is not None:
                    x = x_final
                    state["version"] += 1
                    state["applied"] += 1
            rec = TimedRoundRecord(
                round=round_idx,
                selected=np.asarray(win_clients, dtype=np.int64),
                wall_time=time.perf_counter() - t0,
                virtual_time=clock.now,
                staleness=float(np.mean(win_tau)),
                concurrency=float(np.mean(win_conc)),
                updates_applied=state["applied"],
            )
            t0 = time.perf_counter()
            if (round_idx % cfg.eval_every == 0) or (completed == max_updates):
                if buf0 is not None:
                    ctx.model.set_buffers(buf0)
                evaluate_into_record(ctx, rec, round_idx, x, metric_hooks)
            rec.extras["concurrency_limit"] = (
                concurrency_controller.limit
                if concurrency_controller is not None
                else concurrency
            )
            rec.extras.update(algo.round_extras())
            history.records.append(rec)
            round_idx += 1
            win_tau, win_conc, win_clients = [], [], []
    return history
