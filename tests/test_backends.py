"""Execution-backend layer: job contract, backend equivalence, sweeps.

The PR-4 equivalence suite (old-vs-new event core) extended one axis: every
engine kind must produce *bit-identical* histories on the serial,
process-pool and thread backends — including stateful methods (SCAFFOLD
under FedBuff) and BatchNorm buffer tracking, the two workloads the old
worker-pool path could not run at all.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import warnings

import numpy as np
import pytest

from repro.algorithms import AsyncAdapter, make_method
from repro.cli import main as cli_main
from repro.data import load_federated_dataset
from repro.experiments import (
    DataSpec,
    ExperimentSpec,
    MethodSpec,
    ModelSpec,
    RuntimeSpec,
    SweepResult,
    run,
    run_sweep,
)
from repro.nn import make_mlp
from repro.parallel import (
    BACKENDS,
    ClientJob,
    ClientResult,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_backend,
    resolve_streaming,
)
from repro.runtime import AsyncFederatedSimulation, LognormalLatency
from repro.simulation import FederatedSimulation, FLConfig

KINDS = ("sync", "semisync", "fedasync", "fedbuff")
BACKEND_NAMES = ("serial", "process", "thread")

# small enough that the full kind x backend matrix stays CI-sized
_TINY = dict(
    data=DataSpec(clients=6, scale=0.3, beta=0.3, imbalance_factor=0.3),
    config=FLConfig(rounds=3, participation=0.5, local_epochs=1, batch_size=10,
                    max_batches_per_round=3, eval_every=1, seed=0),
)


def _spec(kind: str, method: str | None = None, backend: str = "serial",
          method_kwargs: dict | None = None, **runtime_kw) -> ExperimentSpec:
    default_method = {"sync": "fedavg", "semisync": "fedavg",
                      "fedasync": "fedasync", "fedbuff": "fedbuff"}[kind]
    if kind != "sync":
        runtime_kw.setdefault("latency", "lognormal")
    if backend != "serial":
        runtime_kw.setdefault("workers", 2)
    return ExperimentSpec(
        method=MethodSpec(name=method or default_method,
                          kwargs=method_kwargs or {}),
        runtime=RuntimeSpec(kind=kind, backend=backend, **runtime_kw),
        **_TINY,
    )


def assert_history_equal(new, old):
    """Bit-identical histories, wall_time excluded (it measures real time)."""
    assert new.algorithm == old.algorithm
    assert len(new.records) == len(old.records)
    for rn, ro in zip(new.records, old.records):
        assert type(rn) is type(ro)
        for f in ("round", "test_accuracy", "test_loss", "virtual_time",
                  "staleness", "concurrency", "updates_applied"):
            if hasattr(ro, f):
                a, b = getattr(rn, f), getattr(ro, f)
                assert (a == b) or (
                    isinstance(a, float) and np.isnan(a) and np.isnan(b)
                ), f
        np.testing.assert_array_equal(rn.selected, ro.selected)
        assert set(rn.extras) == set(ro.extras)
        for k, v in ro.extras.items():
            np.testing.assert_array_equal(rn.extras[k], v, err_msg=k)


class TestBackendEquivalence:
    """Serial vs process vs thread, across all four engine kinds."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("backend", ("process", "thread"))
    def test_bit_identical_plain_method(self, kind, backend):
        serial = run(_spec(kind))
        parallel = run(_spec(kind, backend=backend))
        assert_history_equal(parallel.history, serial.history)
        np.testing.assert_array_equal(parallel.final_params, serial.final_params)

    @pytest.mark.parametrize("kind,method", [
        ("sync", "scaffold"),       # stateful, live-state serial reference
        ("semisync", "scaffold"),   # stateful + broadcast c under deadlines
        ("semisync", "fedcm"),      # aggregate-broadcast momentum
        ("fedbuff", "scaffold"),    # the PR-4 serial-only flagship case
        ("fedasync", "feddyn"),     # stateful duals under immediate mixing
    ])
    @pytest.mark.parametrize("backend", ("process", "thread"))
    def test_bit_identical_stateful_and_broadcast(self, kind, method, backend):
        kwargs = {"buffer_size": 3} if kind == "fedbuff" else None
        serial = run(_spec(kind, method=method, method_kwargs=kwargs))
        parallel = run(_spec(kind, method=method, method_kwargs=kwargs,
                             backend=backend))
        assert_history_equal(parallel.history, serial.history)
        np.testing.assert_array_equal(parallel.final_params, serial.final_params)

    @pytest.mark.parametrize("kind", ("sync", "fedbuff"))
    def test_bit_identical_batchnorm_model(self, kind):
        """Buffers ride the job contract: the BN running-stat treatment
        (per-round mean for rounds, arrival EMA for async) matches serial
        on the process pool — recorded accuracies included."""
        base = _spec(kind, method_kwargs={"buffer_size": 3} if kind == "fedbuff" else None)
        bn = base.override_many([
            ("data", DataSpec(dataset="svhn-lite", clients=6, scale=0.2,
                              beta=0.3, imbalance_factor=0.3)),
            ("model", ModelSpec(arch="resnet-lite-18",
                                kwargs={"width": 2, "norm": "batch"})),
        ])
        serial = run(bn)
        pool = run(bn.override_many([
            ("runtime.backend", "process"), ("runtime.workers", 2)]))
        assert_history_equal(pool.history, serial.history)
        np.testing.assert_array_equal(pool.final_params, serial.final_params)


class TestJobContract:
    def test_jobs_are_order_independent(self):
        """The same job re-executed (even out of order) gives the same
        update — the purity the backend equivalence rests on."""
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2)
        from repro.simulation.context import SimulationContext
        ctx = SimulationContext(make_mlp(32, 10, seed=0), ds, cfg)
        algo = make_method("scaffold").algorithm
        algo.setup(ctx)
        backend = SerialBackend().bind(ctx, algo)
        jobs = [
            ClientJob(round_idx=0, client_id=k, x_ref=ctx.x0.copy(),
                      client_state=algo.pack_client_state(k),
                      broadcast_state=algo.pack_broadcast_state())
            for k in range(3)
        ]
        a = backend.run_jobs(jobs)
        b = backend.run_jobs(list(reversed(jobs)))
        for res, rev in zip(a, reversed(b)):
            np.testing.assert_array_equal(
                res.update.displacement, rev.update.displacement
            )
            np.testing.assert_array_equal(
                res.new_state["ci"], rev.new_state["ci"]
            )

    def test_execute_client_job_is_the_shared_compute_path(self):
        """Every executor (serial, pool worker, thread replica, remote
        worker) funnels through ``execute_client_job`` on a replica from
        ``build_job_runtime`` — the same job gives the same result, and
        timing stamps appear exactly when the job asks for them."""
        from repro.parallel import build_job_runtime, execute_client_job

        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2)
        ctx, algo = build_job_runtime(
            lambda: make_mlp(32, 10, seed=0), ds, cfg,
            algo_builder=lambda: make_method("scaffold").algorithm,
        )
        state0 = algo.pack_client_state(0)
        bcast0 = algo.pack_broadcast_state()
        job = ClientJob(round_idx=0, client_id=0, x_ref=ctx.x0.copy(),
                        client_state=state0, broadcast_state=bcast0)
        plain = execute_client_job(ctx, algo, job)
        assert plain.timing is None  # no collect_timing, no stamps
        timed_job = ClientJob(
            round_idx=0, client_id=0, x_ref=ctx.x0.copy(),
            client_state=state0, broadcast_state=bcast0,
            collect_timing=True, submitted_at=time.monotonic(),
        )
        # the transport measured the serialized size; no re-pickle happens
        timed = execute_client_job(ctx, algo, timed_job, job_bytes=4096)
        assert {"queue_wait_s", "compute_s", "pickle_bytes"} <= set(timed.timing)
        assert timed.timing["pickle_bytes"] == 4096
        np.testing.assert_array_equal(
            timed.update.displacement, plain.update.displacement
        )

    def test_make_backend_registry(self):
        assert set(BACKENDS) == {"serial", "process", "thread", "remote"}
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process", workers=2), ProcessPoolBackend)
        assert isinstance(make_backend("thread", workers=2), ThreadBackend)
        with pytest.raises(KeyError):
            make_backend("gpu")

    def test_resolve_backend_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 4) == "process"
        assert resolve_backend("thread", 4) == "thread"
        assert resolve_backend("auto", None) == "serial"
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        # env applies only to opted-in (spec/sweep) resolution ...
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, None, env=True) == "thread"
        # ... and an explicit name always wins
        assert resolve_backend("process", None, env=True) == "process"
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            resolve_backend(None, None, env=True)

    def test_undeclared_state_methods_refused_off_serial(self):
        """An algorithm whose client state lives outside the pack/unpack and
        broadcast_attrs contracts would silently diverge on worker replicas —
        the backend layer refuses it at engine-construction time.  (No
        registry method trips this anymore: FedGraB's balancers now ride the
        client-state contract, see test_fedgrab_balancers_cross_backends.)"""
        from repro.parallel.backend import prepare_engine_backend

        algo = make_method("fedavg")
        algo.parallel_safe = False
        with pytest.raises(ValueError, match="outside the pack"):
            prepare_engine_backend("process", 2, algo, lambda: None, None)
        # the serial backend still runs it: no replicas, nothing to diverge
        name, _, _ = prepare_engine_backend("serial", None, algo, None, None)
        assert name == "serial"

    @pytest.mark.parametrize("backend", ("process", "thread"))
    def test_fedgrab_balancers_cross_backends(self, backend):
        """FedGraB's per-client balancer accumulators ride the pack/unpack
        client-state contract, so pool runs reproduce the serial trajectory
        bit-for-bit (the accumulators feed every later participation)."""
        serial = run(_spec("sync", method="fedgrab"))
        pooled = run(_spec("sync", method="fedgrab", backend=backend))
        assert_history_equal(pooled.history, serial.history)
        np.testing.assert_array_equal(serial.final_params, pooled.final_params)

    def test_backend_name_case_normalized(self):
        with pytest.raises(ValueError, match="contradicts"):
            RuntimeSpec(backend="Serial", workers=4)
        assert RuntimeSpec(backend="Process", workers=2).backend == "process"

    def test_nonserial_backend_requires_model_builder(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        with pytest.raises(ValueError, match="model_builder"):
            AsyncFederatedSimulation(
                make_method("fedasync").algorithm, make_mlp(32, 10, seed=0),
                ds, FLConfig(rounds=2), backend="process",
            )


class TestStreamingEquivalence:
    """Streaming dispatch must be invisible in results: every history and
    final parameter vector bit-identical to the lazy-batch path, because
    both modes stamp all job inputs at dispatch time."""

    @pytest.mark.parametrize("kind", ("fedasync", "fedbuff"))
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_stream_matches_batch(self, kind, backend):
        stream = run(_spec(kind, backend=backend, streaming=True))
        batch = run(_spec(kind, backend=backend, streaming=False))
        assert_history_equal(stream.history, batch.history)
        np.testing.assert_array_equal(stream.final_params, batch.final_params)

    @pytest.mark.parametrize("kind,method,kwargs", [
        ("fedbuff", "scaffold", {"buffer_size": 3}),  # packed client state
        ("fedasync", "feddyn", None),                 # stateful duals
    ])
    def test_stream_matches_batch_stateful(self, kind, method, kwargs):
        stream = run(_spec(kind, method=method, method_kwargs=kwargs,
                           backend="process", streaming=True))
        batch = run(_spec(kind, method=method, method_kwargs=kwargs,
                          backend="process", streaming=False))
        assert_history_equal(stream.history, batch.history)
        np.testing.assert_array_equal(stream.final_params, batch.final_params)

    @pytest.mark.parametrize("kind", ("sync", "semisync"))
    def test_round_kinds_unaffected_by_streaming_env(self, kind, monkeypatch):
        """Round policies dispatch whole cohorts (submit+collect is already
        eager there): the ambient REPRO_STREAMING default must be a no-op."""
        monkeypatch.setenv("REPRO_STREAMING", "1")
        on = run(_spec(kind, backend="thread"))
        monkeypatch.setenv("REPRO_STREAMING", "0")
        off = run(_spec(kind, backend="thread"))
        assert_history_equal(on.history, off.history)
        np.testing.assert_array_equal(on.final_params, off.final_params)

    def test_streaming_knob_forbidden_for_round_kinds(self):
        with pytest.raises(ValueError, match="streaming"):
            RuntimeSpec(kind="sync", streaming=True)
        with pytest.raises(ValueError, match="streaming"):
            RuntimeSpec(kind="semisync", streaming=False)

    def test_resolve_streaming_precedence(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAMING", raising=False)
        assert resolve_streaming(None) is True
        assert resolve_streaming(False) is False
        monkeypatch.setenv("REPRO_STREAMING", "0")
        # env applies only to opted-in (spec facade) resolution ...
        assert resolve_streaming(None) is True
        assert resolve_streaming(None, env=True) is False
        # ... and an explicit value always wins
        assert resolve_streaming(True, env=True) is True
        monkeypatch.setenv("REPRO_STREAMING", "maybe")
        with pytest.raises(ValueError, match="REPRO_STREAMING"):
            resolve_streaming(None, env=True)


class _LegacyOnlyBackend(ExecutionBackend):
    """Third-party style backend that predates submit/collect."""

    name = "legacy"

    def run_jobs(self, jobs):
        return [ClientResult(update=("ran", j.client_id)) for j in jobs]


class _HollowBackend(ExecutionBackend):
    name = "hollow"


class TestStreamingAPI:
    """The submit/collect contract itself: ordering, blocking semantics,
    submission-time stamping, and the legacy run_jobs fallback."""

    @pytest.fixture(scope="class")
    def problem(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2, batch_size=10)
        return ds, cfg

    def _bound(self, name, ds, cfg):
        from repro.simulation.context import SimulationContext

        ctx = SimulationContext(make_mlp(32, 10, seed=0), ds, cfg)
        algo = make_method("fedavg").algorithm
        algo.setup(ctx)
        backend = make_backend(name, workers=2)
        backend.bind(ctx, algo, model_builder=lambda: make_mlp(32, 10, seed=0))
        return ctx, backend

    def _jobs(self, ctx, n=6, **kw):
        return [
            ClientJob(round_idx=0, client_id=k % ctx.num_clients,
                      x_ref=ctx.x0.copy(), **kw)
            for k in range(n)
        ]

    @pytest.fixture(scope="class")
    def reference(self, problem):
        """Serial displacements, the purity baseline for every backend."""
        ds, cfg = problem
        ctx, backend = self._bound("serial", ds, cfg)
        with backend:
            results = backend.run_jobs(self._jobs(ctx))
        return [r.update.displacement for r in results]

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_out_of_order_collect(self, name, problem, reference):
        """Jobs submitted up front can be collected singly, in reverse, and
        still map handle -> the right result; each handle comes back once."""
        ds, cfg = problem
        ctx, backend = self._bound(name, ds, cfg)
        with backend:
            handles = [backend.submit(j) for j in self._jobs(ctx)]
            for i in reversed(range(len(handles))):
                ((h, res),) = backend.collect([handles[i]], block=True)
                assert h == handles[i]
                np.testing.assert_array_equal(
                    res.update.displacement, reference[i]
                )
            # every handle is returned at most once across calls
            assert backend.collect(handles, block=False) == []
            with pytest.raises(KeyError, match="handle"):
                backend.collect([handles[0]], block=True)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_collect_all_outstanding_in_submit_order(self, name, problem,
                                                     reference):
        ds, cfg = problem
        ctx, backend = self._bound(name, ds, cfg)
        with backend:
            handles = [backend.submit(j) for j in self._jobs(ctx)]
            pairs = backend.collect(block=True)  # handles=None: everything
            assert [h for h, _ in pairs] == handles
            for (_, res), disp in zip(pairs, reference):
                np.testing.assert_array_equal(res.update.displacement, disp)

    def test_nonblocking_drain(self, problem, reference):
        """block=False never waits: polling it eventually surfaces every
        result exactly once (the pattern AsyncPolicy._drain relies on)."""
        ds, cfg = problem
        ctx, backend = self._bound("process", ds, cfg)
        with backend:
            handles = [backend.submit(j) for j in self._jobs(ctx)]
            got = {}
            deadline = time.monotonic() + 120
            while len(got) < len(handles) and time.monotonic() < deadline:
                for h, res in backend.collect(block=False):
                    assert h not in got
                    got[h] = res
            assert len(got) == len(handles)
            for h, disp in zip(handles, reference):
                np.testing.assert_array_equal(
                    got[h].update.displacement, disp
                )

    def test_serial_submit_is_eager(self, problem):
        ds, cfg = problem
        ctx, backend = self._bound("serial", ds, cfg)
        with backend:
            handles = [backend.submit(j) for j in self._jobs(ctx, n=3)]
            # everything already finished: a non-blocking collect drains all
            assert len(backend.collect(handles, block=False)) == 3

    def test_submit_stamps_submitted_at(self, problem):
        """The queue-wait anchor is set at submission (not at flush), unless
        the caller anchored an earlier dispatch time itself."""
        ds, cfg = problem
        ctx, backend = self._bound("serial", ds, cfg)
        with backend:
            (job,) = self._jobs(ctx, n=1, collect_timing=True)
            assert job.submitted_at is None
            h = backend.submit(job)
            assert h.job.submitted_at is not None
            ((_, res),) = backend.collect([h])
            assert res.timing["queue_wait_s"] >= 0.0
            assert res.timing["compute_s"] > 0.0
            # a caller-provided (earlier) anchor survives submission
            anchor = time.monotonic() - 1.0
            (early,) = self._jobs(ctx, n=1, collect_timing=True,
                                  submitted_at=anchor)
            h2 = backend.submit(early)
            assert h2.job.submitted_at == anchor
            ((_, res2),) = backend.collect([h2])
            assert res2.timing["queue_wait_s"] >= 1.0

    def test_pool_timing_measures_real_queue_wait(self, problem):
        ds, cfg = problem
        ctx, backend = self._bound("process", ds, cfg)
        with backend:
            handles = [
                backend.submit(j)
                for j in self._jobs(ctx, n=4, collect_timing=True)
            ]
            for _, res in backend.collect(handles, block=True):
                assert res.timing["queue_wait_s"] >= 0.0
                assert res.timing["compute_s"] > 0.0
                assert res.timing["pickle_bytes"] > 0

    def test_legacy_run_jobs_backend_falls_back(self):
        backend = _LegacyOnlyBackend()
        jobs = [
            ClientJob(round_idx=0, client_id=k, x_ref=np.zeros(1))
            for k in range(3)
        ]
        with pytest.warns(DeprecationWarning, match="run_jobs"):
            handles = [backend.submit(j) for j in jobs]
        # nothing ran yet; a non-blocking collect has nothing to return
        assert backend.collect(handles, block=False) == []
        pairs = backend.collect(handles, block=True)
        assert [h for h, _ in pairs] == handles
        assert [r.update for _, r in pairs] == [
            ("ran", 0), ("ran", 1), ("ran", 2)]

    def test_legacy_warns_once(self):
        backend = _LegacyOnlyBackend()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for j in range(3):
                backend.submit(
                    ClientJob(round_idx=0, client_id=j, x_ref=np.zeros(1))
                )
        assert sum(
            issubclass(w.category, DeprecationWarning) for w in caught
        ) == 1

    def test_backend_with_neither_api_raises(self):
        job = ClientJob(round_idx=0, client_id=0, x_ref=np.zeros(1))
        with pytest.raises(NotImplementedError, match="neither"):
            _HollowBackend().submit(job)
        with pytest.raises(NotImplementedError, match="neither"):
            _HollowBackend().run_jobs([job])


class TestBackendLifecycle:
    """bind -> submit/collect -> close; worker reaping on failure paths."""

    @pytest.fixture()
    def problem(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2, batch_size=10, eval_every=1)
        return ds, cfg

    @staticmethod
    def _leaked(before: set) -> set:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            leaked = {p.pid for p in mp.active_children()} - before
            if not leaked:
                return set()
            time.sleep(0.05)
        return leaked

    def test_context_manager_reaps_inflight_workers(self, problem):
        """Leaving the with-block with uncollected jobs terminates (not
        drains) the fork pool — no orphaned workers, no hang."""
        ds, cfg = problem
        from repro.simulation.context import SimulationContext

        ctx = SimulationContext(make_mlp(32, 10, seed=0), ds, cfg)
        algo = make_method("fedavg").algorithm
        algo.setup(ctx)
        before = {p.pid for p in mp.active_children()}
        with make_backend("process", workers=2) as backend:
            backend.bind(ctx, algo,
                         model_builder=lambda: make_mlp(32, 10, seed=0))
            for k in range(4):
                backend.submit(ClientJob(round_idx=0, client_id=k,
                                         x_ref=ctx.x0.copy()))
        assert backend._pool is None
        assert self._leaked(before) == set()

    def test_close_is_idempotent_and_prebind_safe(self):
        backend = make_backend("process", workers=2)
        backend.close()  # never bound
        backend.close()
        thread = make_backend("thread", workers=2)
        thread.close()
        thread.close()

    def test_engine_reaps_workers_when_run_raises(self, problem):
        """A failed run must not leak the owned backend's fork pool — the
        engines bind and run inside a close() guard."""
        ds, cfg = problem

        def boom(ctx, round_idx, x, extras):
            raise RuntimeError("boom")

        sim = FederatedSimulation(
            make_method("fedavg").algorithm, make_mlp(32, 10, seed=0), ds,
            cfg, backend="process", workers=2,
            model_builder=lambda: make_mlp(32, 10, seed=0),
            metric_hooks=[boom],
        )
        before = {p.pid for p in mp.active_children()}
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        assert self._leaked(before) == set()


class TestStateVersioning:
    def _sim(self, ds, concurrency):
        algo = AsyncAdapter(
            make_method("scaffold").algorithm,
            make_method("fedbuff", buffer_size=2).algorithm,
        )
        return AsyncFederatedSimulation(
            algo, make_mlp(32, 10, seed=0), ds,
            FLConfig(rounds=3, participation=0.5, local_epochs=1, seed=0,
                     max_batches_per_round=2, eval_every=1, batch_size=10),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=concurrency,
        )

    @pytest.fixture(scope="class")
    def ds(self):
        return load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )

    def test_oversubscription_is_observable(self, ds):
        """concurrency > clients forces concurrent self-dispatches: their
        commits land on state newer than their snapshot and are counted
        instead of silently last-writer-winning."""
        h = self._sim(ds, concurrency=9).run()
        assert h.records[-1].extras["state_stale_commits"] > 0
        # the counter is cumulative across windows
        counts = [r.extras["state_stale_commits"] for r in h.records]
        assert counts == sorted(counts)

    def test_no_oversubscription_no_stale_commits(self, ds):
        h = self._sim(ds, concurrency=2).run()
        assert h.records[-1].extras["state_stale_commits"] == 0

    def test_stateless_histories_keep_schema(self, ds):
        """The counter keys off the state store, so plain FedAsync extras
        are unchanged (pre-refactor histories stay bit-identical)."""
        sim = AsyncFederatedSimulation(
            make_method("fedasync").algorithm, make_mlp(32, 10, seed=0), ds,
            FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0,
                     max_batches_per_round=2, eval_every=1),
        )
        h = sim.run()
        assert all("state_stale_commits" not in r.extras for r in h.records)


class TestBufferEMA:
    def _run(self, buffer_ema, concurrency):
        ds = load_federated_dataset(
            "svhn-lite", imbalance_factor=0.3, beta=0.3, num_clients=6,
            seed=0, scale=0.2,
        )
        shape = ds.info.shape
        from repro.nn import build_model

        def mb():
            return build_model(
                "resnet-lite-18", in_channels=shape[0], image_size=shape[1],
                num_classes=ds.num_classes, width=2, seed=0, norm="batch",
            )

        sim = AsyncFederatedSimulation(
            make_method("fedbuff", buffer_size=2).algorithm, mb(), ds,
            FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0,
                     max_batches_per_round=2, eval_every=1, batch_size=10),
            latency_model=LognormalLatency(sigma=1.0),
            concurrency=concurrency,
            buffer_ema=buffer_ema,
        )
        sim.run()
        return sim

    def test_staleness_discount_changes_buffers_under_staleness(self):
        fixed = self._run("fixed", concurrency=6)
        disc = self._run("staleness", concurrency=6)
        # same parameter trajectory (buffers never enter the gradients) ...
        np.testing.assert_array_equal(fixed.final_params, disc.final_params)
        # ... but the buffer estimate blends stale arrivals more gently
        assert any(
            not np.array_equal(fixed.ctx.model.buffers[k], disc.ctx.model.buffers[k])
            for k in fixed.ctx.model.buffers
        )

    def test_modes_agree_at_zero_staleness(self):
        # concurrency 1 => tau == 0 for every arrival => identical blends
        fixed = self._run("fixed", concurrency=1)
        disc = self._run("staleness", concurrency=1)
        for k in fixed.ctx.model.buffers:
            np.testing.assert_array_equal(
                fixed.ctx.model.buffers[k], disc.ctx.model.buffers[k]
            )

    def test_invalid_mode_rejected(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
            num_clients=6, seed=0, scale=0.3,
        )
        with pytest.raises(ValueError, match="buffer_ema"):
            AsyncFederatedSimulation(
                make_method("fedasync").algorithm, make_mlp(32, 10, seed=0),
                ds, FLConfig(rounds=2), buffer_ema="adaptive",
            )


class TestParallelSweeps:
    def _base(self):
        return ExperimentSpec(
            method=MethodSpec(name="fedavg"),
            **dict(
                data=DataSpec(clients=6, scale=0.3, beta=0.3),
                config=FLConfig(rounds=2, participation=0.5, local_epochs=1,
                                batch_size=10, max_batches_per_round=2,
                                eval_every=1, seed=0),
            ),
        )

    GRID = {"method.name": ["fedavg", "fedcm"], "config.seed": [0, 1]}

    def test_serial_sweep_result_shape(self):
        result = run_sweep(self._base(), self.GRID)
        assert isinstance(result, SweepResult)
        assert len(result) == 4
        assert result.group_axes == ("method.name",)
        assert list(result.groups()) == [("fedavg",), ("fedcm",)]
        rows = result.aggregate()
        assert [r["method.name"] for r in rows] == ["fedavg", "fedcm"]
        assert all(r["n"] == 2 for r in rows)
        assert all(np.isfinite(r["final_mean"]) for r in rows)
        assert all(r["final_std"] >= 0.0 for r in rows)

    @pytest.mark.parametrize("backend", ("process", "thread"))
    def test_parallel_sweep_matches_serial(self, backend):
        """Same grouping keys, same per-group mean/std on a 2-axis grid
        including config.seed — the acceptance criterion."""
        serial = run_sweep(self._base(), self.GRID)
        parallel = run_sweep(self._base(), self.GRID, backend=backend, workers=2)
        assert parallel.group_axes == serial.group_axes
        assert list(parallel.groups()) == list(serial.groups())
        assert parallel.aggregate() == serial.aggregate()
        for a, b in zip(parallel.results, serial.results):
            np.testing.assert_array_equal(
                a.history.accuracy, b.history.accuracy
            )
            np.testing.assert_array_equal(a.final_params, b.final_params)

    def test_unhashable_axis_values_group_cleanly(self):
        """kwargs-dict axes (unhashable) must not crash grouping after the
        whole grid has already been computed."""
        result = run_sweep(
            self._base().override("method.name", "fedcm"),
            {"method.kwargs": [{"alpha": 0.05}, {"alpha": 0.1}],
             "config.seed": [0, 1]},
        )
        assert len(result) == 4
        rows = result.aggregate()
        assert len(rows) == 2
        # rows report the original dict values, not a stringified key
        assert [r["method.kwargs"] for r in rows] == [
            {"alpha": 0.05}, {"alpha": 0.1}]
        assert all(r["n"] == 2 for r in rows)

    def test_empty_grid_single_point(self):
        result = run_sweep(self._base(), {})
        assert len(result) == 1
        assert result.assignments == [{}]
        assert result.aggregate()[0]["n"] == 1

    def test_keep_engines_requires_serial(self):
        with pytest.raises(ValueError, match="keep_engines"):
            run_sweep(self._base(), {"config.seed": [0, 1]},
                      backend="process", workers=2, keep_engines=True)
        # explicit serial: immune to a REPRO_BACKEND environment default
        result = run_sweep(self._base(), {}, backend="serial", keep_engines=True)
        assert result.results[0].engine is not None

    def test_sweep_cli_smoke(self, capsys):
        rc = cli_main([
            "sweep", "--clients", "6", "--rounds", "2", "--scale", "0.3",
            "--max-batches", "2", "--eval-every", "1",
            "--grid", "method.name=fedavg,fedcm", "--grid", "config.seed=0,1",
            "--backend", "thread", "--workers", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "method.name" in out
        assert "fedavg" in out and "fedcm" in out
        assert "±" in out  # the aggregate table rendered

    def test_sweep_cli_bad_grid_exits_2(self, capsys):
        rc = cli_main(["sweep", "--grid", "method.name"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_cli_duplicate_axis_exits_2(self, capsys):
        rc = cli_main(["sweep", "--grid", "config.seed=0,1",
                       "--grid", "config.seed=2,3"])
        assert rc == 2
        assert "given twice" in capsys.readouterr().err
