"""Unit + property tests for the data substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    BalancedBatchSampler,
    ClassConditionalGenerator,
    DATASET_REGISTRY,
    SyntheticSpec,
    UniformBatchSampler,
    apply_longtail,
    client_class_counts,
    imbalance_factor_of,
    load_federated_dataset,
    longtail_counts,
    make_classification_data,
    partition_balanced_dirichlet,
    partition_by_class_dirichlet,
    quantity_skew_of,
)


class TestLongtail:
    def test_balanced_profile(self):
        counts = longtail_counts(100, 10, 1.0)
        assert np.all(counts == 100)

    def test_if_endpoints(self):
        counts = longtail_counts(1000, 10, 0.01)
        assert counts[0] == 1000
        assert counts[-1] == 10
        assert np.all(np.diff(counts) <= 0)  # monotone decreasing

    def test_minimum_one_sample(self):
        counts = longtail_counts(5, 10, 0.001)
        assert counts.min() >= 1

    def test_imbalance_factor_of(self):
        counts = longtail_counts(1000, 10, 0.1)
        assert np.isclose(imbalance_factor_of(counts), 0.1, atol=0.01)

    @pytest.mark.parametrize("bad_if", [0.0, -0.5, 1.5])
    def test_invalid_if(self, bad_if):
        with pytest.raises(ValueError):
            longtail_counts(100, 10, bad_if)

    def test_apply_longtail(self):
        rng = np.random.default_rng(0)
        labels = np.repeat(np.arange(5), 100)
        idx = apply_longtail(labels, 0.1, rng)
        sub = labels[idx]
        counts = np.bincount(sub, minlength=5)
        assert counts[0] == 100
        assert counts[-1] == 10

    @settings(max_examples=30, deadline=None)
    @given(
        n_max=st.integers(10, 2000),
        c=st.integers(2, 50),
        imf=st.floats(0.001, 1.0, exclude_min=False),
    )
    def test_profile_properties(self, n_max, c, imf):
        counts = longtail_counts(n_max, c, imf)
        assert counts.shape == (c,)
        assert counts[0] == n_max
        assert np.all(counts >= 1)
        assert np.all(np.diff(counts) <= 0)


class TestSynthetic:
    def test_sample_counts_and_labels(self):
        spec = SyntheticSpec(num_classes=4, shape=(8,))
        gen = ClassConditionalGenerator(spec, seed=0)
        x, y = gen.sample(np.array([5, 3, 0, 2]), np.random.default_rng(0))
        assert x.shape == (10, 8)
        assert np.bincount(y, minlength=4).tolist() == [5, 3, 0, 2]

    def test_prototypes_deterministic(self):
        spec = SyntheticSpec(num_classes=3, shape=(6,))
        g1 = ClassConditionalGenerator(spec, seed=7)
        g2 = ClassConditionalGenerator(spec, seed=7)
        np.testing.assert_array_equal(g1.prototypes, g2.prototypes)

    def test_image_layout(self):
        spec = SyntheticSpec(num_classes=3, shape=(3, 4, 4))
        gen = ClassConditionalGenerator(spec, seed=0)
        x, y = gen.sample(np.full(3, 2), np.random.default_rng(1))
        assert x.shape == (6, 3, 4, 4)

    def test_classes_are_separable(self):
        # nearest-prototype classification must beat chance by a wide margin
        spec = SyntheticSpec(num_classes=5, shape=(16,), separation=2.0, noise=0.5, modes=1)
        gen = ClassConditionalGenerator(spec, seed=0)
        x, y = gen.sample(np.full(5, 50), np.random.default_rng(0))
        protos = gen.prototypes[:, 0, :]
        pred = np.argmin(
            ((x[:, None, :] - protos[None, :, :]) ** 2).sum(-1), axis=1
        )
        assert np.mean(pred == y) > 0.9

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=1, shape=(4,))
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=3, shape=(1, 2))
        with pytest.raises(ValueError):
            SyntheticSpec(num_classes=3, shape=(4,), separation=-1)

    def test_bad_class_counts_shape(self):
        spec = SyntheticSpec(num_classes=3, shape=(4,))
        gen = ClassConditionalGenerator(spec, seed=0)
        with pytest.raises(ValueError):
            gen.sample(np.array([1, 2]), np.random.default_rng(0))

    def test_make_classification_data(self):
        x, y = make_classification_data(3, 8, 10, seed=0)
        assert x.shape == (30, 8)
        assert set(np.unique(y)) == {0, 1, 2}


class TestPartition:
    def _labels(self, seed=0, n=600, c=10, imf=0.1):
        rng = np.random.default_rng(seed)
        counts = longtail_counts(n // 4, c, imf)
        return np.repeat(np.arange(c), counts), rng

    def test_balanced_partition_is_exact(self):
        labels, rng = self._labels()
        parts = partition_balanced_dirichlet(labels, 8, 0.1, rng)
        all_idx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(all_idx, np.arange(len(labels)))

    def test_balanced_partition_quantities(self):
        labels, rng = self._labels()
        parts = partition_balanced_dirichlet(labels, 8, 0.1, rng)
        sizes = np.array([len(p) for p in parts])
        assert sizes.max() - sizes.min() <= max(2, len(labels) // 100)

    def test_fedgrab_partition_is_exact(self):
        labels, rng = self._labels()
        parts = partition_by_class_dirichlet(labels, 8, 0.1, rng)
        all_idx = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(all_idx, np.arange(len(labels)))

    def test_fedgrab_partition_min_samples(self):
        labels, rng = self._labels()
        parts = partition_by_class_dirichlet(labels, 8, 0.1, rng, min_samples=2)
        assert min(len(p) for p in parts) >= 2

    def test_fedgrab_more_skewed_than_balanced(self):
        labels, _ = self._labels()
        bal = partition_balanced_dirichlet(labels, 8, 0.1, np.random.default_rng(1))
        fg = partition_by_class_dirichlet(labels, 8, 0.1, np.random.default_rng(1))
        assert quantity_skew_of(fg) > quantity_skew_of(bal) + 0.1

    def test_client_class_counts(self):
        labels, rng = self._labels()
        parts = partition_balanced_dirichlet(labels, 4, 0.5, rng)
        counts = client_class_counts(parts, labels, 10)
        assert counts.shape == (4, 10)
        np.testing.assert_array_equal(counts.sum(axis=0), np.bincount(labels, minlength=10))

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            partition_balanced_dirichlet(np.array([0, 1]), 5, 0.5)

    @pytest.mark.parametrize("beta", [0.05, 0.5, 5.0])
    def test_beta_controls_skew(self, beta):
        labels, _ = self._labels(imf=1.0)
        parts = partition_balanced_dirichlet(labels, 6, beta, np.random.default_rng(0))
        counts = client_class_counts(parts, labels, 10).astype(float)
        rows = counts / counts.sum(axis=1, keepdims=True)
        # entropy of client mixtures increases with beta
        safe = np.where(rows > 0, rows, 1.0)
        ent = -np.sum(rows * np.log(safe), axis=1).mean()
        if beta <= 0.05:
            assert ent < 1.5
        if beta >= 5.0:
            assert ent > 1.7

    @settings(max_examples=15, deadline=None)
    @given(
        k=st.integers(2, 12),
        beta=st.floats(0.05, 5.0),
        seed=st.integers(0, 100),
    )
    def test_partition_property_exact_cover(self, k, beta, seed):
        labels = np.repeat(np.arange(6), 40)
        parts = partition_balanced_dirichlet(labels, k, beta, np.random.default_rng(seed))
        cat = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(cat, np.arange(len(labels)))


class TestSamplers:
    def test_uniform_covers_everything(self):
        y = np.arange(23) % 3
        s = UniformBatchSampler(y, 5)
        idx = np.concatenate(list(s.epoch(np.random.default_rng(0))))
        assert sorted(idx.tolist()) == list(range(23))

    def test_balanced_epoch_length(self):
        y = np.array([0] * 90 + [1] * 10)
        s = BalancedBatchSampler(y, 20)
        idx = np.concatenate(list(s.epoch(np.random.default_rng(0))))
        assert len(idx) == 100

    def test_balanced_rebalances(self):
        y = np.array([0] * 900 + [1] * 100)
        s = BalancedBatchSampler(y, 50)
        idx = np.concatenate(list(s.epoch(np.random.default_rng(0))))
        frac1 = np.mean(y[idx] == 1)
        assert 0.4 < frac1 < 0.6  # ~uniform despite 9:1 imbalance

    def test_batches_per_epoch(self):
        y = np.zeros(55, dtype=int)
        assert UniformBatchSampler(y, 10).batches_per_epoch() == 6
        assert BalancedBatchSampler(y, 10).batches_per_epoch() == 6

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            UniformBatchSampler(np.zeros(5, dtype=int), 0)
        with pytest.raises(ValueError):
            BalancedBatchSampler(np.zeros(5, dtype=int), -1)


class TestRegistry:
    def test_all_entries_load(self):
        for name in DATASET_REGISTRY:
            ds = load_federated_dataset(name, num_clients=5, seed=0, scale=0.2)
            assert ds.num_clients == 5
            assert len(ds.y_train) == sum(len(p) for p in ds.partitions)
            assert ds.x_test.shape[0] == ds.info.num_classes * max(
                int(round(ds.info.n_test_per_class * 0.2)), 2
            )

    def test_imbalance_applied(self):
        ds = load_federated_dataset("cifar10-lite", imbalance_factor=0.1, num_clients=5, seed=0)
        assert np.isclose(imbalance_factor_of(ds.global_class_counts), 0.1, atol=0.02)

    def test_test_set_balanced(self):
        ds = load_federated_dataset("cifar10-lite", imbalance_factor=0.05, num_clients=5, seed=0)
        counts = np.bincount(ds.y_test, minlength=10)
        assert counts.min() == counts.max()

    def test_deterministic(self):
        a = load_federated_dataset("svhn-lite", num_clients=4, seed=3, scale=0.2)
        b = load_federated_dataset("svhn-lite", num_clients=4, seed=3, scale=0.2)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        for pa, pb in zip(a.partitions, b.partitions):
            np.testing.assert_array_equal(pa, pb)

    def test_flat_view(self):
        ds = load_federated_dataset("cifar10-lite", num_clients=4, seed=0, scale=0.2)
        fv = ds.flat_view()
        assert fv.x_train.ndim == 2
        assert fv.x_train.shape[1] == 3 * 8 * 8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_federated_dataset("mnist-original")

    def test_fedgrab_partition_option(self):
        ds = load_federated_dataset(
            "cifar10-lite", num_clients=8, seed=0, partition="fedgrab", scale=0.5
        )
        assert ds.partition_kind == "fedgrab"
        assert quantity_skew_of(ds.partitions) > 0.2
