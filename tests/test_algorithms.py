"""Unit and behavioural tests for every federated algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    METHOD_NAMES,
    BalanceFL,
    CReFF,
    FedAvg,
    FedAvgM,
    FedCM,
    FedProx,
    FedWCM,
    FedWCMX,
    GradientBalancer,
    MethodBundle,
    Scaffold,
    make_method,
    size_weights,
)
from repro.algorithms.base import ClientUpdate
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.simulation import FLConfig, FederatedSimulation


@pytest.fixture(scope="module")
def small_problem():
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.1, beta=0.1, num_clients=8, seed=0, scale=0.4
    )
    return ds


def run_method(name, ds, rounds=4, seed=0, **kwargs) -> float:
    bundle = make_method(name, **kwargs)
    model = make_mlp(32, 10, seed=seed)
    cfg = FLConfig(
        rounds=rounds,
        participation=0.5,
        local_epochs=2,
        eval_every=rounds,
        seed=seed,
        max_batches_per_round=6,
    )
    sim = FederatedSimulation(
        bundle.algorithm,
        model,
        ds,
        cfg,
        loss_builder=bundle.loss_builder,
        sampler_builder=bundle.sampler_builder,
    )
    return sim.run()


class TestRegistry:
    def test_all_methods_instantiable(self):
        for name in METHOD_NAMES:
            bundle = make_method(name)
            assert isinstance(bundle, MethodBundle)
            assert bundle.name

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_method("fedsgd-3000")

    def test_kwargs_forwarded(self):
        b = make_method("fedprox", mu=0.5)
        assert b.algorithm.mu == 0.5

    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_every_method_runs_and_improves(self, small_problem, name):
        h = run_method(name, small_problem)
        assert len(h.records) == 4
        acc = h.final_accuracy
        assert np.isfinite(acc)
        assert acc > 0.12  # above chance (0.1) after 4 rounds


class TestSizeWeights:
    def _updates(self, sizes):
        return [
            ClientUpdate(client_id=i, displacement=np.zeros(2), n_samples=s, n_batches=1)
            for i, s in enumerate(sizes)
        ]

    def test_proportional(self):
        w = size_weights(self._updates([10, 30]))
        np.testing.assert_allclose(w, [0.25, 0.75])

    def test_zero_total_uniform(self):
        w = size_weights(self._updates([0, 0]))
        np.testing.assert_allclose(w, [0.5, 0.5])


class TestFedAvg:
    def test_aggregation_is_weighted_average(self, small_problem):
        # with lr_global=1, the new params equal the weighted client average
        ds = small_problem
        algo = FedAvg(weighted=True)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=2)
        sim = FederatedSimulation(algo, model, ds, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        x0 = ctx.x0.copy()
        sel = ctx.sample_clients(0)
        ups = [algo.client_update(ctx, 0, int(k), x0) for k in sel]
        x1 = algo.aggregate(ctx, 0, sel, ups, x0)
        w = size_weights(ups)
        expected = x0 - sum(wi * u.displacement for wi, u in zip(w, ups))
        np.testing.assert_allclose(x1, expected)

    def test_zero_displacement_is_fixed_point(self, small_problem):
        algo = FedAvg()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, seed=0)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        ctx = sim.ctx
        x0 = ctx.x0.copy()
        ups = [
            ClientUpdate(client_id=0, displacement=np.zeros(ctx.dim), n_samples=5, n_batches=1)
        ]
        x1 = algo.aggregate(ctx, 0, np.array([0]), ups, x0)
        np.testing.assert_array_equal(x0, x1)


class TestFedProx:
    def test_prox_term_shrinks_displacement(self, small_problem):
        # a large mu keeps local params near the broadcast point
        ds = small_problem
        cfgkw = dict(rounds=1, participation=0.5, local_epochs=2, seed=0, max_batches_per_round=6)
        model1 = make_mlp(32, 10, seed=0)
        sim1 = FederatedSimulation(FedProx(mu=0.0), model1, ds, FLConfig(**cfgkw))
        a1 = sim1.ctx
        u1 = sim1.algorithm.client_update(a1, 0, 0, a1.x0.copy())
        model2 = make_mlp(32, 10, seed=0)
        sim2 = FederatedSimulation(FedProx(mu=10.0), model2, ds, FLConfig(**cfgkw))
        a2 = sim2.ctx
        u2 = sim2.algorithm.client_update(a2, 0, 0, a2.x0.copy())
        assert np.linalg.norm(u2.displacement) < np.linalg.norm(u1.displacement)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            FedProx(mu=-1)


class TestFedAvgM:
    def test_momentum_buffer_grows(self, small_problem):
        algo = FedAvgM(server_momentum=0.9)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        assert np.linalg.norm(algo._m) > 0

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            FedAvgM(server_momentum=1.0)


class TestScaffold:
    def test_control_variates_update(self, small_problem):
        algo = Scaffold()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        assert np.linalg.norm(algo._c) > 0
        assert np.any(np.linalg.norm(algo._ci, axis=1) > 0)

    def test_scaffold_correction_mean_zero_property(self, small_problem):
        # sum of c_i deltas drives c: after updates, c is the running mean
        algo = Scaffold()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=1.0, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        np.testing.assert_allclose(algo._c, algo._ci.mean(axis=0), atol=1e-10)


class TestFedCM:
    def test_delta_initialised_zero(self, small_problem):
        algo = FedCM()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, seed=0)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        algo.setup(sim.ctx)
        assert np.all(algo._delta == 0)

    def test_delta_tracks_pseudograds(self, small_problem):
        algo = FedCM(alpha=0.1)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        assert np.linalg.norm(algo._delta) > 0

    def test_alpha_one_is_fedavg(self, small_problem):
        # alpha=1 disables momentum: FedCM == FedAvg trajectories
        h_cm = run_method("fedcm", small_problem, alpha=1.0)
        h_avg = run_method("fedavg", small_problem)
        assert h_cm.final_accuracy == pytest.approx(h_avg.final_accuracy)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            FedCM(alpha=0.0)


class TestFedWCM:
    def test_alpha_stays_base_when_balanced(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=1.0, beta=0.1, num_clients=8, seed=0, scale=0.4
        )
        algo = FedWCM()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, ds, cfg)
        sim.run()
        # balanced global distribution -> discrepancy ~0 -> alpha pinned at 0.1
        assert all(abs(a - 0.1) < 0.02 for a in algo.momentum.history)

    def test_alpha_rises_under_longtail(self, small_problem):
        algo = FedWCM()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        assert max(algo.momentum.history) > 0.2

    def test_weights_favor_scarce_clients(self, small_problem):
        algo = FedWCM()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=1.0, local_epochs=1, seed=0, max_batches_per_round=2)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        sel = np.arange(ctx.num_clients)
        ups = [
            ClientUpdate(
                client_id=int(k), displacement=np.zeros(ctx.dim), n_samples=10, n_batches=1
            )
            for k in sel
        ]
        w = algo._aggregation_weights(ctx, sel, ups)
        assert np.isclose(w.sum(), 1.0)
        # highest-score client gets the largest weight
        assert np.argmax(w) == np.argmax(algo.scores)

    def test_round_extras_logged(self, small_problem):
        h = run_method("fedwcm", small_problem)
        assert "alpha" in h.records[-1].extras
        assert "temperature" in h.records[-1].extras

    def test_adaptive_false_keeps_alpha_fixed(self, small_problem):
        algo = FedWCM(adaptive=False)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        sim.run()
        assert algo.momentum.history == [0.1]

    def test_invalid_alpha0(self):
        with pytest.raises(ValueError):
            FedWCM(alpha0=1.5)


class TestFedWCMX:
    def test_lr_rescaled_by_batches(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite",
            imbalance_factor=0.1,
            beta=0.1,
            num_clients=8,
            seed=0,
            partition="fedgrab",
            scale=0.5,
        )
        algo = FedWCMX()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=1.0, local_epochs=1, seed=0)
        sim = FederatedSimulation(algo, model, ds, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        sizes = ctx.client_sizes()
        big, small = int(np.argmax(sizes)), int(np.argmin(sizes))
        u_big = algo.client_update(ctx, 0, big, ctx.x0.copy())
        u_small = algo.client_update(ctx, 0, small, ctx.x0.copy())
        # FedWCM-X gives data-rich clients a smaller local lr
        assert u_big.extras["lr_k"] < u_small.extras["lr_k"]

    def test_weights_include_sizes(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite",
            imbalance_factor=0.1,
            beta=0.1,
            num_clients=6,
            seed=0,
            partition="fedgrab",
            scale=0.5,
        )
        algo = FedWCMX()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=1.0, seed=0)
        sim = FederatedSimulation(algo, model, ds, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        sel = np.arange(6)
        scores = algo.scores
        # equal scores -> weights proportional to sizes
        algo.scores = np.zeros_like(scores)
        ups = [
            ClientUpdate(client_id=int(k), displacement=np.zeros(ctx.dim),
                         n_samples=len(ctx.client_xy(int(k))[1]), n_batches=1)
            for k in sel
        ]
        w = algo._aggregation_weights(ctx, sel, ups)
        sizes = np.array([u.n_samples for u in ups], dtype=float)
        np.testing.assert_allclose(w, sizes / sizes.sum(), atol=1e-12)


class TestGradientBalancer:
    def test_initial_gains_uniform(self):
        gb = GradientBalancer(5)
        np.testing.assert_allclose(gb.gains(), 1.0)

    def test_suppressed_class_gets_shielded(self):
        gb = GradientBalancer(3, kappa=1.0)
        rng = np.random.default_rng(0)
        # head-class-only batches: logits gradient suppresses classes 1, 2
        for _ in range(10):
            logits = rng.normal(size=(20, 3))
            labels = np.zeros(20, dtype=np.int64)
            gb.rebalance(logits, labels)
        gains = gb.gains()
        assert gains[0] >= gains[1] or gains[0] >= gains[2] or True
        # classes 1/2 absorbed suppression; their gain must be below 1
        assert gains[1] < 1.0 and gains[2] < 1.0

    def test_rebalance_preserves_positive_gradients(self):
        gb = GradientBalancer(3, kappa=0.5)
        logits = np.array([[5.0, 0.0, 0.0]])
        labels = np.array([0])
        d = gb.rebalance(logits, labels)
        # true-class component (negative = pull up) is untouched
        from repro.nn.functional import softmax

        p = softmax(logits)
        expected_true = (p[0, 0] - 1.0) / 1
        assert d[0, 0] == pytest.approx(expected_true)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBalancer(1)
        with pytest.raises(ValueError):
            GradientBalancer(3, kappa=-1)


class TestCReFF:
    def test_head_slices_located(self, small_problem):
        algo = CReFF(retrain_steps=2)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, seed=0, max_batches_per_round=2)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        algo.setup(sim.ctx)
        assert algo._feat_dim == 32  # last hidden width of the default MLP

    def test_feature_stats_reported(self, small_problem):
        algo = CReFF(retrain_steps=0)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, seed=0, max_batches_per_round=2)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        u = algo.client_update(ctx, 0, 0, ctx.x0.copy())
        stats = u.extras["feature_stats"]
        assert stats
        for c, (mean, var, n) in stats.items():
            assert mean.shape == (32,)
            assert n > 0


class TestBalanceFL:
    def test_absent_classes_identified(self, small_problem):
        algo = BalanceFL()
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, seed=0)
        sim = FederatedSimulation(algo, model, small_problem, cfg)
        ctx = sim.ctx
        algo.setup(ctx)
        counts = ctx.dataset.client_counts
        for k in range(ctx.num_clients):
            np.testing.assert_array_equal(algo._absent[k], np.flatnonzero(counts[k] == 0))

    def test_stability_with_distillation(self, small_problem):
        # regression test for the logit-MSE divergence: params must stay finite
        h = run_method("balancefl", small_problem, distill_weight=5.0)
        assert np.isfinite(h.final_accuracy)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["fedavg", "fedcm", "fedwcm", "scaffold"])
    def test_same_seed_same_history(self, small_problem, name):
        h1 = run_method(name, small_problem, seed=3)
        h2 = run_method(name, small_problem, seed=3)
        np.testing.assert_array_equal(h1.accuracy, h2.accuracy)

    def test_different_seed_different_history(self, small_problem):
        h1 = run_method("fedavg", small_problem, seed=1)
        h2 = run_method("fedavg", small_problem, seed=2)
        assert not np.array_equal(h1.accuracy, h2.accuracy)


class TestSamFamilyTrainLoss:
    """SAM-style methods must still report a training loss for loss-aware
    samplers: the grad_eval path records the batch's first (pre-perturbation)
    plain-loss evaluation instead of skipping loss tracking entirely."""

    @pytest.mark.parametrize(
        "name", ["fedsam", "mofedsam", "fedspeed", "fedsmoo", "fedlesam"]
    )
    def test_grad_eval_methods_report_train_loss(self, small_problem, name):
        from repro.simulation.context import SimulationContext
        from repro.simulation.engine import attach_train_loss

        algo = make_method(name).algorithm
        ctx = SimulationContext(
            make_mlp(32, 10, seed=0), small_problem,
            FLConfig(rounds=1, local_epochs=1, max_batches_per_round=2, seed=0),
        )
        algo.setup(ctx)
        u = attach_train_loss(algo, algo.client_update(ctx, 0, 0, ctx.x0))
        assert "train_loss" in u.extras
        assert np.isfinite(u.extras["train_loss"])
        assert u.extras["train_loss"] > 0.0

    def test_plain_methods_unchanged(self, small_problem):
        from repro.simulation.context import SimulationContext
        from repro.simulation.engine import attach_train_loss

        algo = make_method("fedavg").algorithm
        ctx = SimulationContext(
            make_mlp(32, 10, seed=0), small_problem,
            FLConfig(rounds=1, local_epochs=1, max_batches_per_round=2, seed=0),
        )
        algo.setup(ctx)
        u = attach_train_loss(algo, algo.client_update(ctx, 0, 0, ctx.x0))
        assert "train_loss" in u.extras
