"""Observability layer: run journal, metrics tailer, checkpoint/resume.

The PR-6 suite pins three contracts:

* the journal is schema-versioned JSONL whose records reproduce the run's
  history (round records round-trip through the history schema) and carry
  per-job backend timing;
* the tailer/metrics layer survives live files (torn lines, incremental
  appends) and resumed journals (replayed-round dedup);
* a run stopped at a round boundary and resumed from its snapshot produces
  a history *bit-identical* to the uninterrupted run — for every engine
  kind, on the serial and process backends.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    DataSpec,
    ExperimentSpec,
    MethodSpec,
    RuntimeSpec,
    SweepResult,
    resume_run,
    run,
    run_sweep,
)
from repro.observe import (
    JOURNAL_SCHEMA_VERSION,
    JournalTailer,
    MetricsStore,
    journal_path,
    latest_snapshot,
    load_snapshot,
    read_journal,
)
from repro.simulation import FLConfig
from test_backends import assert_history_equal

KINDS = ("sync", "semisync", "fedasync", "fedbuff")

_TINY = dict(
    data=DataSpec(clients=6, scale=0.3, beta=0.3, imbalance_factor=0.3),
    config=FLConfig(rounds=3, participation=0.5, local_epochs=1, batch_size=10,
                    max_batches_per_round=3, eval_every=1, seed=0),
)


def _spec(kind: str, backend: str = "serial", run_dir=None,
          method: str | None = None, **runtime_kw) -> ExperimentSpec:
    default_method = {"sync": "fedavg", "semisync": "fedavg",
                      "fedasync": "fedasync", "fedbuff": "fedbuff"}[kind]
    if kind != "sync":
        runtime_kw.setdefault("latency", "lognormal")
    if backend != "serial":
        runtime_kw.setdefault("workers", 2)
    if run_dir is not None:
        runtime_kw.update(record=True, run_dir=str(run_dir))
    return ExperimentSpec(
        method=MethodSpec(name=method or default_method),
        runtime=RuntimeSpec(kind=kind, backend=backend, **runtime_kw),
        **_TINY,
    )


class TestJournal:
    def test_schema_and_history_round_trip(self, tmp_path):
        """One meta / N round / one end record; rounds mirror the history."""
        result = run(_spec("sync", run_dir=tmp_path / "run"))
        recs = read_journal(journal_path(str(tmp_path / "run")))
        assert recs[0]["type"] == "meta"
        assert recs[0]["schema"] == JOURNAL_SCHEMA_VERSION
        assert recs[0]["algorithm"] == "fedavg"
        assert recs[0]["rounds_planned"] == 3
        assert recs[-1]["type"] == "end"
        assert recs[-1]["final_accuracy"] == pytest.approx(
            result.history.final_accuracy
        )
        # the recorder accounts its own hook time on the closing record
        assert recs[-1]["recorder_overhead_s"] > 0.0
        rounds = [r for r in recs if r["type"] == "round"]
        assert [r["round"] for r in rounds] == [0, 1, 2]
        for jr, hr in zip(rounds, result.history.records):
            assert jr["test_accuracy"] == pytest.approx(hr.test_accuracy)
            assert jr["selected"] == list(map(int, hr.selected))
        # cohort of 3 (6 clients, participation 0.5), one dispatch each
        assert sum(r["type"] == "dispatch" for r in recs) == 9
        assert sum(r["type"] == "completion" for r in recs) == 9
        # every closed round snapshotted (snapshot_every=1)
        assert sum(r["type"] == "snapshot" for r in recs) == 3
        snap = load_snapshot(latest_snapshot(str(tmp_path / "run")))
        assert snap["rounds"] == 3

    def test_recording_does_not_perturb_run(self, tmp_path):
        """The recorder is an observer: recorded == unrecorded, bit for bit."""
        plain = run(_spec("fedbuff"))
        recorded = run(_spec("fedbuff", run_dir=tmp_path / "run"))
        assert_history_equal(recorded.history, plain.history)
        np.testing.assert_array_equal(recorded.final_params, plain.final_params)

    def test_job_timing_records(self, tmp_path):
        run(_spec("sync", run_dir=tmp_path / "serial"))
        jobs = [r for r in read_journal(journal_path(str(tmp_path / "serial")))
                if r["type"] == "job"]
        assert len(jobs) == 9
        for j in jobs:
            assert j["queue_wait_s"] >= 0.0
            assert j["compute_s"] > 0.0
            assert "pickle_bytes" not in j  # nothing crosses a process
        run(_spec("sync", backend="process", run_dir=tmp_path / "pool"))
        jobs = [r for r in read_journal(journal_path(str(tmp_path / "pool")))
                if r["type"] == "job"]
        assert len(jobs) == 9
        assert all(j["pickle_bytes"] > 0 for j in jobs)

    def test_warning_records_capture_engine_warnings(self, tmp_path):
        """Engine hot-path warnings go through logging and land in the
        journal: a deadline nobody meets forces the fastest client and
        warns every round."""
        run(_spec("semisync", run_dir=tmp_path / "run", deadline=1e-3))
        store = MetricsStore.from_journal(journal_path(str(tmp_path / "run")))
        assert len(store.warnings) == 3
        assert all("deadline" in w["message"] for w in store.warnings)
        assert all(w["logger"].startswith("repro") for w in store.warnings)


class TestTailerAndMetrics:
    def test_tailer_handles_torn_and_partial_lines(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        tail = JournalTailer(path)
        assert tail.poll() == []  # file does not exist yet
        with open(path, "w") as f:
            f.write('{"type": "meta", "schema": 1}\n{"type": "rou')
            f.flush()
            assert [r["type"] for r in tail.poll()] == ["meta"]
            assert tail.poll() == []  # the torn line stays buffered
            f.write('nd", "round": 0}\n')
            f.flush()
            assert [r["round"] for r in tail.poll()] == [0]
        # a line that never becomes valid JSON is skipped, not fatal
        with open(path, "a") as f:
            f.write('not json at all\n{"type": "end"}\n')
        assert [r["type"] for r in tail.poll()] == ["end"]

    def test_metrics_store_async_aggregates(self, tmp_path):
        run(_spec("fedasync", run_dir=tmp_path / "run"))
        store = MetricsStore.from_journal(journal_path(str(tmp_path / "run")))
        assert store.n_rounds == 3
        assert store.ended and not store.stopped
        assert store.virtual_time() > 0.0
        assert store.clients_per_vsec() > 0.0
        q = store.staleness_quantiles()
        assert q["p50"] is not None and q["p99"] >= q["p50"]
        assert store.last_accuracy() is not None
        assert store.recorder_overhead_s > 0.0
        text = store.summary()
        for needle in ("fedasync", "rounds:", "staleness:", "accuracy:",
                       "jobs:", "recorder:"):
            assert needle in text
        # the full dump is JSON-safe (NaNs become null)
        json.dumps(store.to_dict())

    def test_metrics_store_semisync_drop_rate(self, tmp_path):
        run(_spec("semisync", run_dir=tmp_path / "run", deadline=1.0))
        store = MetricsStore.from_journal(journal_path(str(tmp_path / "run")))
        rate = store.drop_rate()
        assert rate is not None and 0.0 <= rate <= 1.0
        assert store.trajectory("deadline") == [(0, 1.0), (1, 1.0), (2, 1.0)]


class TestResume:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_stop_resume_bit_identical(self, tmp_path, kind, backend):
        """Stop at a round boundary, resume from the snapshot: the stitched
        history equals the uninterrupted run's, bit for bit."""
        full = run(_spec(kind, backend=backend))
        rdir = str(tmp_path / "run")
        part = run(_spec(kind, backend=backend, run_dir=rdir),
                   stop_after_rounds=2)
        assert len(part.history.records) == 2
        resumed = resume_run(rdir)
        assert_history_equal(resumed.history, full.history)
        np.testing.assert_array_equal(resumed.final_params, full.final_params)

    def test_resumed_journal_metrics(self, tmp_path):
        rdir = str(tmp_path / "run")
        run(_spec("sync", run_dir=rdir), stop_after_rounds=1)
        store = MetricsStore.from_journal(journal_path(rdir))
        assert store.stopped and not store.ended
        resume_run(rdir)
        store = MetricsStore.from_journal(journal_path(rdir))
        assert store.resumes == 1
        assert store.ended and not store.stopped
        assert store.n_rounds == 3  # replayed rounds dedup by index

    def test_crash_mid_round_resume(self, tmp_path):
        """A crash mid-write leaves a torn journal tail; resume replays the
        open round from the last snapshot and the tailer skips the tear."""
        full = run(_spec("semisync"))
        rdir = str(tmp_path / "run")
        run(_spec("semisync", run_dir=rdir), stop_after_rounds=2)
        with open(journal_path(rdir), "a") as f:
            f.write('{"type": "dispatch", "seq": 99')  # no newline: torn
        resumed = resume_run(rdir)
        assert_history_equal(resumed.history, full.history)
        store = MetricsStore.from_journal(journal_path(rdir))
        # the resume healed the torn tail: its own records stayed intact
        assert store.resumes == 1
        assert store.ended and not store.stopped

    def test_resume_without_snapshots_raises(self, tmp_path):
        rdir = tmp_path / "never_recorded"
        os.makedirs(rdir)
        _spec("sync").save(str(rdir / "spec.json"))
        with pytest.raises(FileNotFoundError, match="no snapshots"):
            resume_run(str(rdir))

    def test_record_without_run_dir_rejected(self):
        with pytest.raises(ValueError, match="run_dir"):
            RuntimeSpec(record=True)
        with pytest.raises(ValueError, match="record=True"):
            RuntimeSpec(run_dir="/tmp/somewhere")


class TestCLI:
    def test_record_stop_resume_watch(self, tmp_path, capsys):
        rdir = str(tmp_path / "run")
        base = ["run", "--clients", "6", "--scale", "0.3", "--rounds", "2",
                "--method", "fedavg"]
        assert cli_main(base + ["--record", rdir,
                                "--stop-after-rounds", "1"]) == 0
        assert "resume with" in capsys.readouterr().out
        assert cli_main(["run", "--resume", rdir]) == 0
        capsys.readouterr()
        assert cli_main(["watch", rdir, "--summary"]) == 0
        out = capsys.readouterr().out
        assert "fedavg" in out and "rounds:" in out and "accuracy:" in out

    def test_resume_rejects_spec_flags(self, tmp_path, capsys):
        assert cli_main(["run", "--resume", str(tmp_path),
                         "--method", "fedavg"]) == 2
        assert cli_main(["run", "--resume", str(tmp_path / "missing")]) == 2

    def test_watch_missing_journal(self, tmp_path, capsys):
        assert cli_main(["watch", str(tmp_path), "--summary"]) == 2

    def test_sweep_out_round_trip(self, tmp_path):
        sweep = run_sweep(_spec("sync"), {"config.seed": [0, 1]})
        path = str(tmp_path / "sweep.json")
        sweep.save(path)
        loaded = SweepResult.load(path)
        assert len(loaded) == 2
        assert loaded.base.to_dict() == sweep.base.to_dict()
        assert loaded.aggregate() == sweep.aggregate()
        for a, b in zip(loaded.results, sweep.results):
            assert_history_equal(a.history, b.history)
