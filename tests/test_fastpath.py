"""The vectorized control plane is bit-identical to the scalar dispatch path.

Pins the PR's keystone claims:

* ``LatencyModel.sample_many`` equals per-element ``latency()`` for every
  registered model (same RNG stream discipline, batched);
* ``IdleTracker`` rank selection equals indexing the scalar path's
  ascending idle comprehension, under arbitrary busy/idle churn;
* ``VirtualClock.push_many`` pops in the same order as sequential
  ``schedule`` calls (both below and above the heapify threshold);
* fast-path engine histories are bit-identical to scalar ones across the
  async kinds, latency models, backends, samplers, and stateful methods;
* incremental sampler weights equal freshly recomputed ones after observes;
* profiled runs journal a ``profile`` record and ``watch --summary``
  renders the ``hotpath:`` line — with histories untouched by profiling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_federated_dataset
from repro.experiments import run
from repro.experiments.spec import DataSpec, ExperimentSpec, MethodSpec, RuntimeSpec
from repro.nn import make_mlp
from repro.observe import MetricsStore, format_hotpath
from repro.runtime import (
    FastFirstSampler,
    IdleTracker,
    LATENCY_MODELS,
    UtilitySampler,
    VirtualClock,
    make_latency_model,
    resolve_fast_path,
)
from repro.simulation import FLConfig
from repro.simulation.context import SimulationContext

_TINY = dict(
    data=DataSpec(clients=6, scale=0.3, beta=0.3, imbalance_factor=0.3),
    config=FLConfig(rounds=3, participation=0.5, local_epochs=1, batch_size=10,
                    max_batches_per_round=3, eval_every=1, seed=0),
)


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=6,
        seed=0, scale=0.3,
    )


@pytest.fixture(scope="module")
def ctx(ds):
    cfg = FLConfig(rounds=4, participation=0.5, local_epochs=1, seed=0,
                   max_batches_per_round=3, eval_every=2, batch_size=10)
    return SimulationContext(make_mlp(32, 10, seed=0), ds, cfg)


def _spec(kind: str, fast_path, method: str | None = None,
          backend: str = "serial", **runtime_kw) -> ExperimentSpec:
    default = {"fedasync": "fedasync", "fedbuff": "fedbuff"}[kind]
    runtime_kw.setdefault("latency", "lognormal")
    if backend != "serial":
        runtime_kw.setdefault("workers", 2)
    return ExperimentSpec(
        method=MethodSpec(name=method or default),
        runtime=RuntimeSpec(kind=kind, backend=backend, fast_path=fast_path,
                            **runtime_kw),
        **_TINY,
    )


def _history_key(result):
    return [
        (r.round, r.test_accuracy, r.test_loss, r.virtual_time, r.staleness,
         r.concurrency, r.updates_applied, tuple(np.asarray(r.selected)))
        for r in result.history.records
    ]


class TestResolveFastPath:
    def test_default_on(self):
        assert resolve_fast_path() is True
        assert resolve_fast_path(None) is True

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        assert resolve_fast_path(True) is True
        assert resolve_fast_path(False, env=True) is False

    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("true", True), ("on", True), ("yes", True),
        ("0", False), ("false", False), ("off", False), ("no", False),
    ])
    def test_env_opt_in(self, monkeypatch, raw, expect):
        monkeypatch.setenv("REPRO_FAST_PATH", raw)
        assert resolve_fast_path(env=True) is expect
        # direct engine construction never reads ambient state
        assert resolve_fast_path(env=False) is True

    def test_env_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_PATH", "maybe")
        with pytest.raises(ValueError, match="REPRO_FAST_PATH"):
            resolve_fast_path(env=True)


class TestSampleMany:
    """Batched draws equal per-element ``latency()`` for every model."""

    _KW = {"lognormal": dict(sigma=1.0),
           "pareto": dict(alpha=1.1),
           "dropout": dict(inner="lognormal", p_drop=0.4, max_retries=3)}

    @pytest.mark.parametrize("name", sorted(LATENCY_MODELS))
    def test_bit_equal_to_sequential(self, ctx, name):
        model = make_latency_model(name, **self._KW.get(name, {})).bind(ctx)
        rng = np.random.default_rng(7)
        cids = rng.integers(0, ctx.num_clients, size=64).astype(np.int64)
        seqs = np.arange(64, dtype=np.int64)
        batched = model.sample_many(cids, seqs)
        scalar = np.array(
            [model.latency(int(c), int(i)) for c, i in zip(cids, seqs)]
        )
        np.testing.assert_array_equal(batched, scalar)
        assert batched.dtype == np.float64

    def test_zero_sigma_and_jitter_shortcuts(self, ctx):
        # exp(0 * z) == 1.0 exactly, so skipping the draws is bit-safe
        flat = make_latency_model("lognormal", sigma=0.0, jitter=0.0).bind(ctx)
        cids = np.arange(ctx.num_clients, dtype=np.int64)
        seqs = np.arange(ctx.num_clients, dtype=np.int64)
        scalar = np.array([flat.latency(int(c), int(i)) for c, i in zip(cids, seqs)])
        np.testing.assert_array_equal(flat.sample_many(cids, seqs), scalar)

    def test_unbound_raises(self):
        with pytest.raises(RuntimeError):
            make_latency_model("constant").sample_many(
                np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64)
            )


class TestIdleTracker:
    def test_matches_comprehension_under_churn(self):
        n = 97
        rng = np.random.default_rng(3)
        tr = IdleTracker(n)
        busy: dict[int, int] = {}
        for _ in range(600):
            cid = int(rng.integers(n))
            if rng.random() < 0.55:
                busy[cid] = busy.get(cid, 0) + 1
                tr.mark_busy(cid)
            elif busy.get(cid, 0):
                if busy[cid] <= 1:
                    busy.pop(cid)
                else:
                    busy[cid] -= 1
                tr.mark_idle(cid)
            ref = [k for k in range(n) if not busy.get(k)]
            assert tr.n_idle == len(ref)
            assert tr.idle_ids().tolist() == ref
            if ref:
                j = int(rng.integers(len(ref)))
                assert tr.kth_idle(j) == ref[j]

    def test_rebuild_from_busy_dict(self):
        busy = {3: 2, 7: 1}
        tr = IdleTracker(10, busy=busy)
        assert tr.n_idle == 8
        assert 3 not in tr.idle_ids() and 7 not in tr.idle_ids()
        tr.mark_idle(3)
        assert 3 not in tr.idle_ids()  # count 2 -> 1: still busy
        tr.mark_idle(3)
        assert 3 in tr.idle_ids()

    def test_rank_out_of_range(self):
        tr = IdleTracker(4)
        with pytest.raises(IndexError):
            tr.kth_idle(4)

    def test_double_complete_is_noop(self):
        tr = IdleTracker(4)
        tr.mark_idle(2)  # never marked busy
        assert tr.n_idle == 4


class TestPushMany:
    @pytest.mark.parametrize("k", [1, 3, 8, 50])
    def test_pop_order_matches_sequential(self, k):
        rng = np.random.default_rng(k)
        delays = rng.uniform(0.0, 5.0, size=k)
        delays[rng.integers(k)] = delays[0]  # force at least one tie
        a, b = VirtualClock(), VirtualClock()
        # pre-load both so push_many lands in a non-empty heap
        for c in (a, b):
            c.schedule(2.5, client_id=100)
            c.schedule(0.5, client_id=101)
        for i, d in enumerate(delays):
            a.schedule(float(d), client_id=i)
        b.push_many([(float(d), i, {}) for i, d in enumerate(delays)])
        order_a = [(a.pop().client_id, a.now) for _ in range(k + 2)]
        order_b = [(b.pop().client_id, b.now) for _ in range(k + 2)]
        assert order_a == order_b

    def test_invalid_delay(self):
        with pytest.raises(ValueError):
            VirtualClock().push_many([(-1.0, 0, {})])


class TestEngineEquivalence:
    """Fast-path histories are bit-identical to scalar ones."""

    @pytest.mark.parametrize("kind", ("fedasync", "fedbuff"))
    @pytest.mark.parametrize(
        "latency", ("constant", "lognormal", "pareto", "dropout")
    )
    def test_serial_all_latency_models(self, kind, latency):
        fast = run(_spec(kind, True, latency=latency))
        scalar = run(_spec(kind, False, latency=latency))
        assert _history_key(fast) == _history_key(scalar)
        np.testing.assert_array_equal(fast.final_params, scalar.final_params)

    def test_process_backend(self):
        fast = run(_spec("fedbuff", True, backend="process"))
        scalar = run(_spec("fedbuff", False, backend="process"))
        assert _history_key(fast) == _history_key(scalar)
        np.testing.assert_array_equal(fast.final_params, scalar.final_params)

    def test_scaffold_under_fedbuff(self):
        # stateful per-client dispatch snapshots ride the fast path too
        fast = run(_spec("fedbuff", True, method="scaffold"))
        scalar = run(_spec("fedbuff", False, method="scaffold"))
        assert _history_key(fast) == _history_key(scalar)
        np.testing.assert_array_equal(fast.final_params, scalar.final_params)

    @pytest.mark.parametrize("sampler", ("fast", "utility"))
    def test_time_aware_samplers(self, sampler):
        fast = run(_spec("fedasync", True, sampler=sampler))
        scalar = run(_spec("fedasync", False, sampler=sampler))
        assert _history_key(fast) == _history_key(scalar)
        np.testing.assert_array_equal(fast.final_params, scalar.final_params)

    def test_oversubscribed_concurrency(self):
        # concurrency > clients exercises the empty-idle fallback draw
        fast = run(_spec("fedasync", True, concurrency=9))
        scalar = run(_spec("fedasync", False, concurrency=9))
        assert _history_key(fast) == _history_key(scalar)
        np.testing.assert_array_equal(fast.final_params, scalar.final_params)

    def test_forbidden_for_round_kinds(self):
        with pytest.raises(ValueError, match="fast_path"):
            ExperimentSpec(
                method=MethodSpec(name="fedavg"),
                runtime=RuntimeSpec(kind="sync", fast_path=True),
                **_TINY,
            )


class TestSamplerWeightCache:
    """Incrementally invalidated weights equal freshly recomputed ones."""

    def test_fastfirst_dispatch_weights(self, ctx):
        lat = make_latency_model("lognormal", sigma=1.0).bind(ctx)
        cached = FastFirstSampler(power=2.0).bind(ctx, lat)
        fresh = FastFirstSampler(power=2.0).bind(ctx, lat)
        idle = np.arange(ctx.num_clients, dtype=np.int64)
        rng = np.random.default_rng(11)
        for i in range(20):
            np.testing.assert_array_equal(
                cached.dispatch_weights(idle, now=float(i)),
                np.power(np.maximum(fresh.expected_seconds(), 1e-12),
                         -fresh.power)[idle],
            )
            cid = int(rng.integers(ctx.num_clients))
            obs = float(rng.uniform(0.1, 5.0))
            cached.observe(cid, obs)
            fresh.observe(cid, obs)
        # cache hit: identical object when nothing was observed in between
        w1 = cached._full_weights()
        w2 = cached._full_weights()
        assert w1 is w2

    def test_utility_cache_invalidates_on_loss(self, ctx):
        lat = make_latency_model("constant").bind(ctx)
        s = UtilitySampler().bind(ctx, lat)
        u0 = s.utilities()
        assert s.utilities() is u0  # cached between observes
        s.observe_loss(0, 2.0)
        u1 = s.utilities()
        assert u1 is not u0


class TestProfiler:
    def _recorded(self, tmp_path, fast_path=True):
        spec = _spec("fedbuff", fast_path)
        spec = ExperimentSpec(
            method=spec.method,
            runtime=RuntimeSpec(
                kind="fedbuff", latency="lognormal", fast_path=fast_path,
                record=True, run_dir=str(tmp_path / f"run_{fast_path}"),
            ),
            **_TINY,
        )
        return run(spec)

    def test_profile_journaled_and_summarized(self, tmp_path):
        res = self._recorded(tmp_path)
        assert res.profile is not None
        assert res.profile["completions"] == res.profile["dispatches"] > 0
        assert res.profile["clients_per_sec"] > 0
        assert res.profile["wall_s"] > 0
        # every attributed second is one of the declared phases
        store = MetricsStore.from_journal(
            str(tmp_path / "run_True" / "journal.jsonl")
        )
        assert store.profile is not None
        assert store.profile["type"] == "profile"
        assert store.ended  # the profile record precedes end, not replaces it
        line = store.summary()
        assert "hotpath:" in line
        assert format_hotpath(res.profile).split(" ")[1] == "clients/s"

    def test_profiling_does_not_change_history(self, tmp_path):
        recorded = self._recorded(tmp_path)
        plain = run(_spec("fedbuff", True))
        assert _history_key(recorded) == _history_key(plain)
        np.testing.assert_array_equal(
            recorded.final_params, plain.final_params
        )
