"""Behavioural tests for the NN engine beyond gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    CrossEntropyLoss,
    Dense,
    Dropout,
    GroupNorm,
    MODEL_REGISTRY,
    MomentumInjectedSGD,
    SGD,
    Sequential,
    build_model,
    evaluate,
    flat_grad,
    forward_backward,
    iterate_minibatches,
    make_linear,
    make_mlp,
    make_resnet_lite,
)
from repro.nn.functional import accuracy, log_softmax, one_hot, per_class_accuracy, softmax
from repro.utils import flatten_params, unflatten_params

RNG = np.random.default_rng(0)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        p = softmax(RNG.normal(size=(5, 7)))
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        p = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(p))
        np.testing.assert_allclose(p[0, :2], 0.5, atol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self):
        z = RNG.normal(size=(4, 5))
        np.testing.assert_allclose(log_softmax(z), np.log(softmax(z)), atol=1e-12)

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_validates(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([[0]]), 3)

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_per_class_accuracy_nan_for_absent(self):
        logits = np.array([[2.0, 1.0, 0.0]])
        acc = per_class_accuracy(logits, np.array([0]), 3)
        assert acc[0] == 1.0
        assert np.isnan(acc[1]) and np.isnan(acc[2])


class TestModuleStateManagement:
    def test_set_params_copies_values(self):
        m = Dense(3, 2, np.random.default_rng(0))
        new = {k: np.zeros_like(v) for k, v in m.params.items()}
        m.set_params(new)
        assert np.all(m.params["W"] == 0)
        new["W"][0, 0] = 5.0  # mutating the source must not affect the module
        assert m.params["W"][0, 0] == 0.0

    def test_set_params_key_mismatch(self):
        m = Dense(3, 2, np.random.default_rng(0))
        with pytest.raises(KeyError):
            m.set_params({"W": m.params["W"]})

    def test_set_params_shape_mismatch(self):
        m = Dense(3, 2, np.random.default_rng(0))
        bad = {"W": np.zeros((2, 2)), "b": np.zeros(2)}
        with pytest.raises(ValueError):
            m.set_params(bad)

    def test_sequential_param_aliasing(self):
        # writing through the parent's namespaced params must reach children
        m = Sequential(Dense(3, 2, np.random.default_rng(0)))
        flat, spec = flatten_params(m.params)
        flat2 = np.zeros_like(flat)
        m.set_params(unflatten_params(flat2, spec))
        assert np.all(m.children_[0].params["W"] == 0)

    def test_zero_grad(self):
        m = Dense(3, 2, np.random.default_rng(0))
        forward_backward(m, RNG.normal(size=(4, 3)), np.array([0, 1, 0, 1]), CrossEntropyLoss())
        assert np.any(m.grads["W"] != 0)
        m.zero_grad()
        assert np.all(m.grads["W"] == 0)

    def test_backward_before_forward_raises(self):
        m = Dense(3, 2, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            m.backward(np.zeros((1, 2)))


class TestNorms:
    def test_groupnorm_output_normalised(self):
        gn = GroupNorm(2, 4)
        x = RNG.normal(size=(8, 4, 3, 3)) * 10 + 5
        out = gn.forward(x, train=True)
        grp = out.reshape(8, 2, -1)
        np.testing.assert_allclose(grp.mean(axis=2), 0.0, atol=1e-6)
        np.testing.assert_allclose(grp.std(axis=2), 1.0, atol=1e-4)

    def test_groupnorm_divisibility(self):
        with pytest.raises(ValueError):
            GroupNorm(3, 4)

    def test_batchnorm_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = RNG.normal(size=(16, 2, 2, 2)) + 3.0
        bn.forward(x, train=True)
        assert np.all(bn.buffers["running_mean"] > 1.0)

    def test_batchnorm_eval_uses_running_stats(self):
        bn = BatchNorm2d(2, momentum=1.0)
        x = RNG.normal(size=(16, 2, 2, 2))
        bn.forward(x, train=True)
        out_eval = bn.forward(x, train=False)
        out_train = bn.forward(x, train=True)
        # with momentum=1 running stats equal batch stats (up to biased var)
        np.testing.assert_allclose(out_eval, out_train, atol=1e-6)


class TestDropout:
    def test_eval_is_identity(self):
        d = Dropout(0.5, np.random.default_rng(0))
        x = RNG.normal(size=(4, 6))
        np.testing.assert_array_equal(d.forward(x, train=False), x)

    def test_train_scales_survivors(self):
        d = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((1000, 10))
        out = d.forward(x, train=True)
        vals = np.unique(np.round(out, 6))
        assert set(vals) <= {0.0, 2.0}
        assert abs(out.mean() - 1.0) < 0.1  # inverted dropout preserves scale

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))


class TestModels:
    def test_registry_contents(self):
        assert {"mlp", "linear", "resnet-lite-18", "resnet-lite-34"} <= set(MODEL_REGISTRY)

    def test_mlp_shapes(self):
        m = make_mlp(12, 4, hidden=(8,), seed=0)
        out = m.forward(RNG.normal(size=(3, 12)), train=False)
        assert out.shape == (3, 4)

    def test_linear_model(self):
        m = make_linear(6, 3, seed=0)
        assert m.num_params == 6 * 3 + 3

    @pytest.mark.parametrize("depth", ["micro", "18", "34"])
    def test_resnet_depths(self, depth):
        m = make_resnet_lite(3, 8, 10, depth=depth, width=4, seed=0)
        out = m.forward(RNG.normal(size=(2, 3, 8, 8)), train=False)
        assert out.shape == (2, 10)

    def test_resnet_batchnorm_variant(self):
        m = make_resnet_lite(3, 8, 5, depth="micro", width=4, seed=0, norm="batch")
        assert any("running_mean" in k for k in m.buffers)

    def test_resnet_groupnorm_has_no_buffers(self):
        m = make_resnet_lite(3, 8, 5, depth="micro", width=4, seed=0, norm="group")
        assert not m.buffers

    def test_deeper_resnet_has_more_params(self):
        p18 = make_resnet_lite(3, 8, 10, depth="18", width=4, seed=0).num_params
        p34 = make_resnet_lite(3, 8, 10, depth="34", width=4, seed=0).num_params
        assert p34 > p18

    def test_build_model_unknown(self):
        with pytest.raises(KeyError):
            build_model("transformer-xl")

    def test_same_seed_same_init(self):
        a = make_mlp(8, 3, seed=5)
        b = make_mlp(8, 3, seed=5)
        flat_a, _ = flatten_params(a.params)
        flat_b, _ = flatten_params(b.params)
        np.testing.assert_array_equal(flat_a, flat_b)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            make_resnet_lite(3, 7, 10)
        with pytest.raises(ValueError):
            make_resnet_lite(3, 8, 10, depth="50")


class TestOptim:
    def test_sgd_step(self):
        opt = SGD(lr=0.5)
        x = np.array([1.0, 2.0])
        opt.step(x, np.array([1.0, 1.0]))
        np.testing.assert_allclose(x, [0.5, 1.5])

    def test_sgd_momentum_accumulates(self):
        opt = SGD(lr=1.0, momentum=0.5)
        x = np.zeros(1)
        g = np.ones(1)
        opt.step(x, g)  # v=1, x=-1
        opt.step(x, g)  # v=1.5, x=-2.5
        np.testing.assert_allclose(x, [-2.5])

    def test_sgd_weight_decay(self):
        opt = SGD(lr=1.0, weight_decay=0.1)
        x = np.array([10.0])
        opt.step(x, np.zeros(1))
        np.testing.assert_allclose(x, [9.0])

    def test_momentum_injected_mixing(self):
        opt = MomentumInjectedSGD(lr=1.0)
        opt.configure(alpha=0.25, delta=np.array([4.0]))
        x = np.zeros(1)
        opt.step(x, np.array([8.0]))
        # v = 0.25*8 + 0.75*4 = 5
        np.testing.assert_allclose(x, [-5.0])

    def test_momentum_injected_no_delta(self):
        opt = MomentumInjectedSGD(lr=1.0)
        opt.configure(alpha=0.5, delta=None)
        x = np.zeros(1)
        opt.step(x, np.array([2.0]))
        np.testing.assert_allclose(x, [-1.0])

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            MomentumInjectedSGD(lr=0.1).configure(alpha=0.0, delta=None)


class TestTrainHelpers:
    def test_training_reduces_loss(self):
        m = make_mlp(16, 4, hidden=(16,), seed=0)
        rng = np.random.default_rng(0)
        from repro.data import make_classification_data

        x, y = make_classification_data(4, 16, 40, seed=1, separation=2.0, noise=0.5)
        loss_fn = CrossEntropyLoss()
        flat, spec = flatten_params(m.params)
        first = forward_backward(m, x, y, loss_fn)
        for b in iterate_minibatches(rng, len(y), 20, epochs=10):
            forward_backward(m, x[b], y[b], loss_fn)
            flat -= 0.1 * flat_grad(m, spec)
            m.set_params(unflatten_params(flat, spec))
        last = forward_backward(m, x, y, loss_fn)
        assert last < first * 0.5

    def test_evaluate_empty(self):
        m = make_mlp(4, 2, seed=0)
        res = evaluate(m, np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert res["n"] == 0

    def test_iterate_minibatches_covers_all(self):
        batches = list(iterate_minibatches(np.random.default_rng(0), 10, 3, epochs=2))
        idx = np.concatenate(batches)
        assert len(idx) == 20
        assert sorted(idx[:10].tolist()) == list(range(10))

    def test_iterate_minibatches_invalid(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.random.default_rng(0), 10, 0))
