"""Federation service (:mod:`repro.net`): framing, scheduling, bit-identity.

Layered like the subsystem itself:

* framing units — frame round-trips, partial feeds, corrupt headers,
  version handshake, address parsing;
* pickle-cleanliness — every registered method's packed client state and
  broadcast state rides a real JOB/RESULT frame round-trip intact;
* :class:`AggregatorService` units with *scripted* raw-socket workers —
  deterministic least-loaded scheduling, version rejection, worker-death
  requeue (disconnect and heartbeat silence), remote error surfacing,
  wire-byte stamping;
* :class:`RemoteBackend` end-to-end — in-process workers and real
  ``repro worker`` subprocesses, histories bit-identical to the serial
  backend, including a mid-run worker kill absorbed by requeueing.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from dataclasses import replace

import numpy as np
import pytest
from test_backends import assert_history_equal

from repro.algorithms import METHOD_NAMES, make_method
from repro.experiments import (
    DataSpec,
    ExperimentSpec,
    MethodSpec,
    RuntimeSpec,
    build_problem,
    run,
)
from repro.net import (
    JOB_SCHEMA_VERSION,
    PROTOCOL_VERSION,
    XREF_CACHE_VERSIONS,
    AggregatorService,
    FrameDecoder,
    FrameError,
    MsgType,
    RemoteBackend,
    WorkerClient,
    WorkerError,
    XRefToken,
    encode_frame,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.parallel import ClientJob, ClientResult, build_job_runtime, make_backend
from repro.simulation import FLConfig

pytestmark = pytest.mark.net

SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))

_TINY = dict(
    data=DataSpec(clients=6, scale=0.3, beta=0.3, imbalance_factor=0.3),
    config=FLConfig(rounds=3, participation=0.5, local_epochs=1, batch_size=10,
                    max_batches_per_round=3, eval_every=1, seed=0),
)


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _spec(backend: str = "serial", method: str = "scaffold",
          workers: int = 2, **runtime_kw) -> ExperimentSpec:
    """A tiny fedbuff run (stateful SCAFFOLD — the hardest contract case)."""
    if backend == "remote":
        runtime_kw.setdefault("backend_address", f"127.0.0.1:{_free_port()}")
        runtime_kw.setdefault("workers", workers)
    return ExperimentSpec(
        method=MethodSpec(name=method, kwargs={"buffer_size": 3}),
        runtime=RuntimeSpec(kind="fedbuff", backend=backend,
                            latency="lognormal", **runtime_kw),
        **_TINY,
    )


def _deep_equal(a, b, path: str = "$") -> None:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys(), path
        for k in a:
            _deep_equal(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _deep_equal(x, y, f"{path}[{i}]")
    elif hasattr(a, "__dict__") and not isinstance(a, (str, bytes, type)):
        # e.g. a method's momentum-state object carrying arrays
        assert type(a) is type(b), path
        _deep_equal(vars(a), vars(b), f"{path}:{type(a).__name__}")
    else:
        assert a == b, path


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_byte_by_byte(self):
        payload = {"x": np.arange(5.0), "nested": [1, "two", None]}
        frame = encode_frame(MsgType.JOB, payload)
        dec = FrameDecoder()
        out = []
        for i in range(len(frame)):  # worst-case fragmentation
            out.extend(dec.feed(frame[i:i + 1]))
        assert len(out) == 1
        msg_type, decoded, nbytes = out[0]
        assert msg_type is MsgType.JOB
        assert nbytes == len(frame)
        _deep_equal(decoded, payload)

    def test_many_frames_one_feed(self):
        blob = b"".join(encode_frame(MsgType.HEARTBEAT) for _ in range(3))
        blob += encode_frame(MsgType.RESULT, (7, "ok", None))
        out = FrameDecoder().feed(blob)
        assert [t for t, _, _ in out] == [MsgType.HEARTBEAT] * 3 + [MsgType.RESULT]
        assert out[-1][1] == (7, "ok", None)

    def test_corrupt_length_rejected(self):
        import struct
        header = struct.pack(">IB", (1 << 30) + 1, int(MsgType.JOB))
        with pytest.raises(FrameError, match="announces"):
            FrameDecoder().feed(header + b"x")

    def test_unknown_type_rejected(self):
        import struct
        header = struct.pack(">IB", 0, 200)
        with pytest.raises(FrameError, match="unknown message type"):
            FrameDecoder().feed(header)

    def test_blocking_helpers_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, MsgType.WELCOME, {"worker_id": 3})
            assert recv_frame(b) == (MsgType.WELCOME, {"worker_id": 3})
            a.close()
            assert recv_frame(b) is None  # clean EOF at a frame boundary
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame(MsgType.JOB, list(range(100)))[:7])
            a.close()
            with pytest.raises(FrameError, match="mid-frame|header and payload"):
                recv_frame(b)
        finally:
            b.close()

    @pytest.mark.parametrize("addr,expected", [
        ("127.0.0.1:7000", ("127.0.0.1", 7000)),
        ("host.example:0", ("host.example", 0)),
    ])
    def test_parse_address(self, addr, expected):
        assert parse_address(addr) == expected

    @pytest.mark.parametrize("bad", ["7000", ":7000", "host:", "host:xx",
                                     "host:70000"])
    def test_parse_address_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


# ---------------------------------------------------------------------------
# pickle-cleanliness of the job contract over real frames
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_problem():
    spec = ExperimentSpec(method=MethodSpec(name="fedavg"), **_TINY)
    return build_problem(spec)


class TestJobContractOverTheWire:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_method_state_rides_frames(self, method, tiny_problem):
        """Packed client + broadcast state of every registered method must
        survive an actual JOB/RESULT frame round-trip and still execute."""
        ds, model_builder, cfg = tiny_problem
        bundle = make_method(method)
        ctx, algo = build_job_runtime(
            model_builder, ds, cfg,
            loss_builder=bundle.loss_builder,
            sampler_builder=bundle.sampler_builder,
            algo_builder=lambda: bundle.algorithm,
        )
        job = ClientJob(
            round_idx=0, client_id=0, x_ref=ctx.x0.copy(),
            client_state=algo.pack_client_state(0),
            buffers=ctx.model.get_buffers(copy=True) or None,
            broadcast_state=algo.pack_broadcast_state(),
        )
        [(msg_type, (seq, job2), _)] = FrameDecoder().feed(
            encode_frame(MsgType.JOB, (11, job))
        )
        assert msg_type is MsgType.JOB and seq == 11
        _deep_equal(job2.x_ref, job.x_ref)
        _deep_equal(job2.client_state, job.client_state)
        _deep_equal(job2.broadcast_state, job.broadcast_state)

        from repro.parallel import execute_client_job
        result = execute_client_job(ctx, algo, job2)
        [(msg_type, (seq, result2, err), _)] = FrameDecoder().feed(
            encode_frame(MsgType.RESULT, (11, result, None))
        )
        assert err is None
        _deep_equal(result2.update.displacement, result.update.displacement)
        _deep_equal(result2.update.extras, result.update.extras)
        _deep_equal(result2.new_state, result.new_state)


# ---------------------------------------------------------------------------
# AggregatorService units (scripted raw-socket workers)
# ---------------------------------------------------------------------------
def _job(seq: int, collect_timing: bool = False) -> ClientJob:
    return ClientJob(round_idx=seq, client_id=seq % 3,
                     x_ref=np.arange(4.0) + seq,
                     collect_timing=collect_timing,
                     submitted_at=time.monotonic())


def _result(job: ClientJob) -> ClientResult:
    return ClientResult(update=float(job.x_ref.sum()),
                        timing={"queue_wait_s": 0.0, "compute_s": 0.0})


class _ScriptedWorker:
    """A raw-socket worker under test control (no replica, no threads)."""

    def __init__(self, address: str, protocol: int = PROTOCOL_VERSION,
                 schema: int = JOB_SCHEMA_VERSION) -> None:
        host, port = parse_address(address)
        self.sock = socket.create_connection((host, port), timeout=10.0)
        send_frame(self.sock, MsgType.REGISTER, {
            "protocol": protocol, "job_schema": schema, "pid": 0, "host": "t",
        })
        self.welcome = recv_frame(self.sock)
        self._queue: list = []
        self._xref: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def recv_job(self):
        """Next (seq, job) with any XRefToken resolved, consuming JOB_BATCH
        frames with the same cache discipline as the real worker."""
        while not self._queue:
            msg_type, payload = recv_frame(self.sock)
            assert msg_type in (MsgType.JOB, MsgType.JOB_BATCH), msg_type
            if msg_type is MsgType.JOB:
                self._queue.append(payload)
                continue
            batch, inline = payload
            for version, arr in inline.items():
                self._xref[version] = arr
            needed = {j.x_ref.version for _, j in batch
                      if isinstance(j.x_ref, XRefToken)}
            for version in list(self._xref):
                if len(self._xref) <= XREF_CACHE_VERSIONS:
                    break
                if version not in needed:
                    del self._xref[version]
            for seq, job in batch:
                if isinstance(job.x_ref, XRefToken):
                    job = replace(job, x_ref=self._xref[job.x_ref.version])
                self._queue.append((seq, job))
        return self._queue.pop(0)

    def serve(self, n: int) -> None:
        for _ in range(n):
            seq, job = self.recv_job()
            send_frame(self.sock, MsgType.RESULT, (seq, _result(job), None))

    def close(self) -> None:
        self.sock.close()


@pytest.fixture
def service():
    svc = AggregatorService(
        "127.0.0.1:0", spec_payload={"why": "scripted workers ignore this"},
        heartbeat_timeout=30.0,
    ).start()
    yield svc
    svc.stop()


class TestAggregatorService:
    def test_register_schedule_collect(self, service):
        w0 = _ScriptedWorker(service.address)
        w1 = _ScriptedWorker(service.address)
        assert w0.welcome[0] is MsgType.WELCOME
        assert w0.welcome[1]["spec"] == {"why": "scripted workers ignore this"}
        for seq in range(4):
            service.submit(seq, _job(seq))
        # burst-submitted jobs split 2/2 under least-loaded scheduling
        w0.serve(2)
        w1.serve(2)
        results = service.collect(list(range(4)), block=True)
        assert set(results) == {0, 1, 2, 3}
        stats = service.stats()
        assert stats["workers_seen"] == 2 and stats["workers_lost"] == 0
        assert stats["bytes_sent"] > 0 and stats["bytes_received"] > 0
        w0.close(), w1.close()

    def test_version_mismatch_rejected(self, service):
        w = _ScriptedWorker(service.address, protocol=PROTOCOL_VERSION + 1)
        msg_type, payload = w.welcome
        assert msg_type is MsgType.ERROR and "version mismatch" in payload
        assert recv_frame(w.sock) is None  # aggregator closed the link
        assert service.stats()["workers_seen"] == 0

    def test_requeue_on_disconnect(self, service):
        w0 = _ScriptedWorker(service.address)
        service.submit(0, _job(0))
        service.submit(1, _job(1))
        w0.recv_job()  # take a job in flight...
        w0.close()     # ...and die without answering
        w1 = _ScriptedWorker(service.address)
        w1.serve(2)
        results = service.collect([0, 1], block=True)
        assert set(results) == {0, 1}
        stats = service.stats()
        assert stats["workers_lost"] == 1 and stats["requeued_jobs"] >= 1
        w1.close()

    def test_requeue_on_heartbeat_silence(self):
        svc = AggregatorService("127.0.0.1:0", heartbeat_timeout=0.5).start()
        try:
            w0 = _ScriptedWorker(svc.address)
            svc.submit(0, _job(0))
            w0.recv_job()  # holds the job, then goes silent (no heartbeat)
            deadline = time.monotonic() + 10.0
            while svc.stats()["workers_lost"] < 1:  # the timeout fires
                assert time.monotonic() < deadline
                time.sleep(0.05)
            w1 = _ScriptedWorker(svc.address)
            w1.serve(1)    # the requeued job lands on the fresh worker
            results = svc.collect([0], block=True)
            assert set(results) == {0}
            stats = svc.stats()
            assert stats["workers_lost"] == 1 and stats["requeued_jobs"] == 1
            w0.close(), w1.close()
        finally:
            svc.stop()

    def test_remote_exception_surfaces(self, service):
        w = _ScriptedWorker(service.address)
        service.submit(0, _job(0))
        seq, _ = w.recv_job()
        send_frame(w.sock, MsgType.RESULT, (seq, None, "Traceback: boom"))
        with pytest.raises(WorkerError, match="boom"):
            service.collect([0], block=True)
        w.close()

    def test_wire_bytes_stamped_when_timing(self, service):
        w = _ScriptedWorker(service.address)
        service.submit(0, _job(0, collect_timing=True))
        w.serve(1)
        result = service.collect([0], block=True)[0]
        assert result.timing["send_bytes"] > 0
        assert result.timing["recv_bytes"] > 0
        w.close()

    def test_batched_assignment_ships_x_once(self):
        """batch_limit>1: one JOB_BATCH frame carries the whole burst and
        inlines each distinct broadcast vector exactly once."""
        svc = AggregatorService(
            "127.0.0.1:0", batch_limit=4, heartbeat_timeout=30.0
        ).start()
        try:
            w = _ScriptedWorker(svc.address)
            x = np.arange(8.0)
            jobs = [
                ClientJob(round_idx=s, client_id=s % 3, x_ref=x,
                          collect_timing=True, submitted_at=time.monotonic())
                for s in range(4)
            ]
            svc.submit_many(list(enumerate(jobs)))
            msg_type, payload = recv_frame(w.sock)
            assert msg_type is MsgType.JOB_BATCH
            batch, inline = payload
            assert [s for s, _ in batch] == [0, 1, 2, 3]
            assert len(inline) == 1  # the shared x ships once
            assert all(isinstance(j.x_ref, XRefToken) for _, j in batch)
            (version,) = inline
            for seq, job in batch:
                job = replace(job, x_ref=inline[version])
                send_frame(w.sock, MsgType.RESULT, (seq, _result(job), None))
            results = svc.collect([0, 1, 2, 3], block=True)
            assert set(results) == {0, 1, 2, 3}
            stats = svc.stats()
            assert stats["batch_frames"] == 1
            assert stats["job_batch"] == 4
            assert stats["bytes_saved"] == 3 * x.nbytes
            w.close()
        finally:
            svc.stop()

    def test_xref_dedup_across_frames(self, service):
        """Even unbatched (batch_limit=1), a worker receives each broadcast
        version once; later jobs carry tokens only."""
        w = _ScriptedWorker(service.address)
        x = np.arange(16.0)
        for seq in range(3):
            service.submit(seq, replace(_job(seq), x_ref=x))
        w.serve(3)
        results = service.collect([0, 1, 2], block=True)
        assert all(results[s] is not None for s in range(3))
        # the scripted worker resolved tokens from its cache, so every
        # result saw the same vector
        assert len({results[s].update for s in range(3)}) == 1
        assert service.stats()["bytes_saved"] == 2 * x.nbytes
        w.close()

    def test_wait_for_workers_times_out(self, service):
        with pytest.raises(TimeoutError, match="repro worker --connect"):
            service.wait_for_workers(1, timeout=0.3)

    def test_collect_fails_only_when_no_workers_remain(self, service):
        service.submit(0, _job(0))
        with pytest.raises(RuntimeError, match="no workers registered"):
            service.collect([0], block=True, no_worker_timeout=0.5)


# ---------------------------------------------------------------------------
# RemoteBackend: spec validation + bit-identity to the serial backend
# ---------------------------------------------------------------------------
class TestRemoteBackendContract:
    def test_spec_rejects_address_on_local_backends(self):
        with pytest.raises(ValueError, match="backend_address"):
            _spec(backend="process", backend_address="127.0.0.1:7000")

    def test_spec_rejects_malformed_address(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            _spec(backend="remote", backend_address="no-port-here")

    def test_bind_requires_address_and_spec(self):
        backend = make_backend("remote", workers=1)
        assert isinstance(backend, RemoteBackend)
        with pytest.raises(ValueError, match="backend_address"):
            backend.bind(None, None)
        backend = RemoteBackend(workers=1, address="127.0.0.1:0")
        with pytest.raises(ValueError, match="spec facade"):
            backend.bind(None, None)

    def test_inprocess_workers_bit_identical_to_serial(self):
        spec = _spec(backend="remote")
        address = spec.runtime.backend_address
        clients = [WorkerClient(address, connect_timeout=30.0) for _ in range(2)]
        threads = [threading.Thread(target=c.run, daemon=True) for c in clients]
        for t in threads:
            t.start()
        remote = run(spec)
        serial = run(_spec(backend="serial"))
        for t in threads:
            t.join(timeout=10.0)
        assert_history_equal(remote.history, serial.history)
        np.testing.assert_array_equal(remote.final_params, serial.final_params)
        assert sum(c.jobs_done for c in clients) > 0


# ---------------------------------------------------------------------------
# openfl-style e2e: real `repro worker` subprocesses
# ---------------------------------------------------------------------------
def _spawn_worker(address: str, log_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    with open(log_path, "w") as log:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", address, "--retry", "60"],
            stdout=log, stderr=subprocess.STDOUT, env=env,
        )


def _wait_for_log(path: str, needle: str, timeout: float = 90.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with open(path) as f:
            if needle in f.read():
                return
        time.sleep(0.05)
    raise TimeoutError(f"{needle!r} never appeared in {path}")


def _reap(procs: list[subprocess.Popen]) -> None:
    for p in procs:
        if p.poll() is None:
            try:
                os.kill(p.pid, signal.SIGCONT)
            except OSError:
                pass
            try:
                p.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait()


class TestEndToEnd:
    def test_two_worker_subprocesses_bit_identical(self, tmp_path):
        spec = _spec(backend="remote")
        address = spec.runtime.backend_address
        procs = [
            _spawn_worker(address, str(tmp_path / f"w{i}.log")) for i in range(2)
        ]
        try:
            remote = run(spec)
        finally:
            _reap(procs)
        serial = run(_spec(backend="serial"))
        assert_history_equal(remote.history, serial.history)
        np.testing.assert_array_equal(remote.final_params, serial.final_params)
        assert [p.returncode for p in procs] == [0, 0]

    def test_worker_killed_mid_run_requeues(self, tmp_path, monkeypatch):
        """Kill (SIGSTOP) one worker before the run can start: its jobs must
        requeue onto the survivor and the history stay bit-identical."""
        monkeypatch.setenv("REPRO_NET_HEARTBEAT", "0.2")
        # long enough that the frozen victim isn't pruned before the
        # survivor's interpreter starts up and registers
        monkeypatch.setenv("REPRO_NET_HEARTBEAT_TIMEOUT", "3.0")
        run_dir = tmp_path / "rec"
        spec = _spec(backend="remote", record=True, run_dir=str(run_dir))
        address = spec.runtime.backend_address
        victim_log = str(tmp_path / "victim.log")
        victim = _spawn_worker(address, victim_log)
        survivor = None
        box: dict = {}

        def _run():
            try:
                box["result"] = run(spec)
            except BaseException as exc:  # surface on the test thread
                box["error"] = exc

        t = threading.Thread(target=_run, daemon=True)
        t.start()
        try:
            # freeze the victim the moment it registers, BEFORE spawning the
            # survivor: the aggregator needs both workers to start the run,
            # so the victim is frozen from the first dispatch burst no
            # matter how fast the run itself is.  The burst spreads jobs
            # least-loaded across both workers, so the victim necessarily
            # holds some — the heartbeat timeout must requeue them.
            _wait_for_log(victim_log, "registered")
            os.kill(victim.pid, signal.SIGSTOP)
            survivor = _spawn_worker(address, str(tmp_path / "survivor.log"))
            t.join(timeout=180.0)
        finally:
            _reap([victim] + ([survivor] if survivor else []))
        assert not t.is_alive(), "remote run did not survive the worker kill"
        if "error" in box:
            raise box["error"]

        serial = run(_spec(backend="serial"))
        assert_history_equal(box["result"].history, serial.history)
        np.testing.assert_array_equal(
            box["result"].final_params, serial.final_params
        )

        from repro.observe import MetricsStore, journal_path
        transport = MetricsStore.from_journal(
            journal_path(str(run_dir))
        ).transport
        assert transport["workers_lost"] >= 1
        assert transport["requeued_jobs"] >= 1
