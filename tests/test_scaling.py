"""Zero-copy broadcast + batched transport: the scaling-path test matrix.

Covers the transport optimizations behind the clients-per-second bench:

* bit-identity — batched pool tasks (``job_batch``) and shared-memory
  broadcast (``shared_memory``) against the serial reference, across engine
  kinds and stateful methods (SCAFFOLD under FedBuff included);
* :class:`~repro.parallel.shm.BroadcastStore` lifecycle — publish /
  attach round-trips, identity and content-equal fast paths, refcounted
  unlink of superseded versions, unlink-on-close;
* lazy :class:`~repro.runtime.events.ClientStateStore` — packed state
  materializes on first dispatch only, so memory is O(active clients);
* the pinned legacy ``collect(block=False)`` semantics — never starts
  work, never raises;
* ``submit_many`` chunking and transport accounting on the pool backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from test_backends import _spec, assert_history_equal

from repro.algorithms import make_method
from repro.data import load_federated_dataset
from repro.experiments import resume_run, run
from repro.nn import make_mlp
from repro.parallel import (
    ArrayRef,
    BroadcastStore,
    ClientJob,
    ExecutionBackend,
    ProcessPoolBackend,
    build_job_runtime,
    resolve_job_batch,
    resolve_job_refs,
    resolve_shared_memory,
)
from repro.parallel.shm import attach_array
from repro.runtime.events import ClientStateStore
from repro.simulation import FLConfig

KINDS = ("sync", "semisync", "fedasync", "fedbuff")


# ---------------------------------------------------------------------------
# bit-identity: batched + shared-memory transport vs the serial reference
# ---------------------------------------------------------------------------
class TestTransportBitIdentity:
    @pytest.mark.parametrize("kind", KINDS)
    def test_shm_batched_pool_matches_serial(self, kind):
        serial = run(_spec(kind))
        pooled = run(_spec(kind, backend="process",
                           job_batch=3, shared_memory=True))
        assert_history_equal(pooled.history, serial.history)
        np.testing.assert_array_equal(pooled.final_params, serial.final_params)

    def test_stateful_scaffold_under_fedbuff(self):
        """The hardest contract case: per-client control variates and the
        broadcast ``c`` array riding shm descriptors, batched 2-up."""
        kwargs = {"buffer_size": 3}
        serial = run(_spec("fedbuff", method="scaffold", method_kwargs=kwargs))
        pooled = run(_spec("fedbuff", method="scaffold", method_kwargs=kwargs,
                           backend="process", job_batch=2, shared_memory=True))
        assert_history_equal(pooled.history, serial.history)
        np.testing.assert_array_equal(pooled.final_params, serial.final_params)

    def test_batch_only_no_shm(self):
        serial = run(_spec("fedasync"))
        pooled = run(_spec("fedasync", backend="process", job_batch=4))
        assert_history_equal(pooled.history, serial.history)
        np.testing.assert_array_equal(pooled.final_params, serial.final_params)

    def test_stop_resume_with_transport_knobs(self, tmp_path):
        """The knobs persist through spec.json and the resumed half stays
        bit-identical — untouched clients lazily re-pack from the restored
        algorithm state, fresh shm segments publish on resume."""
        kwargs = {"buffer_size": 3}
        full = run(_spec("fedbuff", method="scaffold", method_kwargs=kwargs))
        rdir = str(tmp_path / "run")
        run(_spec("fedbuff", method="scaffold", method_kwargs=kwargs,
                  backend="process", job_batch=2, shared_memory=True,
                  record=True, run_dir=rdir),
            stop_after_rounds=2)
        resumed = resume_run(rdir)
        assert_history_equal(resumed.history, full.history)
        np.testing.assert_array_equal(resumed.final_params, full.final_params)


# ---------------------------------------------------------------------------
# BroadcastStore lifecycle
# ---------------------------------------------------------------------------
class TestBroadcastStore:
    def test_publish_attach_roundtrip_readonly(self):
        with BroadcastStore() as store:
            x = np.arange(32.0)
            ref = store.publish("x", x)
            assert isinstance(ref, ArrayRef)
            assert (ref.shape, ref.dtype, ref.nbytes) == (
                (32,), "float64", x.nbytes)
            mapped = attach_array(ref)
            np.testing.assert_array_equal(mapped, x)
            assert not mapped.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                mapped[0] = 99.0

    def test_identity_and_content_fast_paths(self):
        with BroadcastStore() as store:
            x = np.arange(16.0)
            ref1 = store.publish("x", x)
            assert store.publish("x", x) is ref1  # same object, no hash
            # a fresh object with identical bytes re-anchors, no new segment
            assert store.publish("x", x.copy()) is ref1
            assert store.stats()["shm_versions"] == 1
            # changed content bumps the version in a fresh segment
            ref2 = store.publish("x", x + 1.0)
            assert ref2.version > ref1.version
            assert store.stats()["shm_versions"] == 2

    def test_superseded_segment_unlinked_after_release(self):
        store = BroadcastStore()
        x = np.arange(8.0)
        job = ClientJob(round_idx=0, client_id=0, x_ref=x)
        packed, refs = store.pack_job(job)
        assert isinstance(packed.x_ref, ArrayRef) and len(refs) == 1
        store.publish("x", x + 1.0)  # supersede while the job is in flight
        assert store.stats()["shm_segments_live"] == 2  # refcount pins v0
        for ref in refs:
            store.release(ref)
        assert store.stats()["shm_segments_live"] == 1
        store.close()

    def test_close_unlinks_everything(self):
        store = BroadcastStore()
        ref = store.publish("x", np.arange(8.0))
        store.close()
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)
        store.close()  # idempotent
        with pytest.raises(RuntimeError, match="after close"):
            store.publish("x", np.arange(8.0))

    def test_small_and_non_array_ship_inline(self):
        with BroadcastStore(min_bytes=1024) as store:
            assert store.publish("x", np.arange(4.0)) is None  # below floor
            assert store.publish("x", "not an array") is None
            assert store.publish("x", np.empty(0)) is None
            job = ClientJob(round_idx=0, client_id=0, x_ref=np.arange(4.0))
            packed, refs = store.pack_job(job)
            assert packed is job and refs == ()
            assert resolve_job_refs(packed) is packed  # no-op passthrough


# ---------------------------------------------------------------------------
# lazy client-state store
# ---------------------------------------------------------------------------
class _CountingAlgo:
    stateful_per_client = True

    def __init__(self):
        self.packed: list[int] = []

    def pack_client_state(self, cid: int) -> dict:
        self.packed.append(cid)
        return {"cid": cid}


class TestLazyClientState:
    def test_state_materializes_on_first_snapshot_only(self):
        algo = _CountingAlgo()
        store = ClientStateStore(algo, num_clients=100_000)
        store.capture_initial()
        # a 100k-client store holds nothing until clients actually dispatch
        assert store._state == {} and algo.packed == []
        assert store.snapshot(7) == {"cid": 7}
        assert store.snapshot(7) == {"cid": 7}  # cached, not re-packed
        assert algo.packed == [7]
        store.snapshot(41)
        assert len(store._state) == 2  # O(active), not O(total)

    def test_inactive_store_stays_empty(self):
        algo = _CountingAlgo()
        store = ClientStateStore(algo, num_clients=100, active=False)
        store.capture_initial()
        assert store.snapshot(0) is None and algo.packed == []


# ---------------------------------------------------------------------------
# the pinned legacy collect(block=False) contract + submit_many chunking
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_runtime():
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3,
        num_clients=6, seed=0, scale=0.3,
    )
    cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                   max_batches_per_round=2)
    return ds, cfg


def _jobs(ctx, algo, n: int) -> list[ClientJob]:
    return [
        ClientJob(round_idx=0, client_id=k % 3, x_ref=ctx.x0,
                  client_state=algo.pack_client_state(k % 3),
                  broadcast_state=algo.pack_broadcast_state())
        for k in range(n)
    ]


class _LegacyBackend(ExecutionBackend):
    """run_jobs-only backend: exercises the base-class legacy fallback."""

    name = "legacy"

    def __init__(self):
        self.batches_run = 0

    def bind(self, ctx, algorithm, **_):
        self._ctx, self._algo = ctx, algorithm
        return self

    def run_jobs(self, jobs):
        from repro.parallel import execute_client_job

        self.batches_run += 1
        return [execute_client_job(self._ctx, self._algo, j) for j in jobs]


class TestCollectContract:
    def test_legacy_nonblocking_never_starts_work_never_raises(self, tiny_runtime):
        ds, cfg = tiny_runtime
        ctx, algo = build_job_runtime(
            lambda: make_mlp(32, 10, seed=0), ds, cfg,
            algo_builder=lambda: make_method("fedavg").algorithm,
        )
        with pytest.warns(DeprecationWarning, match="batch API"):
            backend = _LegacyBackend().bind(ctx, algo)
            handles = [backend.submit(j) for j in _jobs(ctx, algo, 3)]
        # non-blocking: nothing ran, nothing raised — not even for a handle
        # the backend has never seen
        assert backend.collect(handles, block=False) == []
        assert backend.collect(block=False) == []
        bogus = type(handles[0])(seq=10_000, job=handles[0].job)
        assert backend.collect([bogus], block=False) == []
        assert backend.batches_run == 0
        # blocking runs the batch; an unknown handle now raises
        done = backend.collect(handles, block=True)
        assert len(done) == 3 and backend.batches_run == 1
        with pytest.raises(KeyError):
            backend.collect([bogus], block=True)
        assert backend.collect([bogus], block=False) == []

    def test_pool_nonblocking_collect_never_raises(self, tiny_runtime):
        ds, cfg = tiny_runtime
        ctx, algo = build_job_runtime(
            lambda: make_mlp(32, 10, seed=0), ds, cfg,
            algo_builder=lambda: make_method("fedavg").algorithm,
        )
        backend = ProcessPoolBackend(workers=2, job_batch=2)
        try:
            backend.bind(ctx, algo, model_builder=lambda: make_mlp(32, 10, seed=0))
            handles = backend.submit_many(_jobs(ctx, algo, 3))
            bogus = type(handles[0])(seq=10_000, job=handles[0].job)
            assert backend.collect([bogus], block=False) == []
            done = backend.collect(handles, block=True)
            assert [h for h, _ in done] == handles
            with pytest.raises(KeyError):
                backend.collect([handles[0]], block=True)  # already collected
        finally:
            backend.close()

    def test_submit_many_chunks_and_accounts(self, tiny_runtime):
        ds, cfg = tiny_runtime
        ctx, algo = build_job_runtime(
            lambda: make_mlp(32, 10, seed=0), ds, cfg,
            algo_builder=lambda: make_method("scaffold").algorithm,
        )
        backend = ProcessPoolBackend(workers=2, job_batch=2, shared_memory=True)
        try:
            backend.bind(ctx, algo, model_builder=lambda: make_mlp(32, 10, seed=0))
            jobs = _jobs(ctx, algo, 5)
            handles = backend.submit_many(jobs)
            assert [h.job.client_id for h in handles] == [j.client_id for j in jobs]
            results = dict(backend.collect(handles, block=True))
            assert len(results) == 5
            stats = backend.transport_stats()
            assert stats["jobs"] == 5
            assert stats["pool_tasks"] == 3  # ceil(5 / 2)
            assert stats["job_batch"] == 2
            # x (and scaffold's broadcast c) shipped as descriptors
            assert stats["shm_jobs_packed"] == 5
            assert stats["shm_bytes_saved"] > 0
            # every handle released its refs: only current versions live
            assert stats["shm_segments_live"] == stats["shm_versions"]
            # batched siblings share one pool task but results stay per-job
            # and match the in-process reference execution exactly
            from repro.parallel import execute_client_job

            for h, job in zip(handles, jobs):
                want = execute_client_job(ctx, algo, job)
                np.testing.assert_array_equal(
                    results[h].update.displacement,
                    want.update.displacement)
        finally:
            backend.close()
        # stats survive close (the journal's end record reads them then)
        assert backend.transport_stats()["shm_jobs_packed"] == 5

    def test_close_unlinks_inflight_segments(self, tiny_runtime):
        """close() with work in flight terminates the pool first, then
        unlinks — the engines' finally-close reaps shm even on a crash."""
        ds, cfg = tiny_runtime
        ctx, algo = build_job_runtime(
            lambda: make_mlp(32, 10, seed=0), ds, cfg,
            algo_builder=lambda: make_method("fedavg").algorithm,
        )
        backend = ProcessPoolBackend(workers=2, shared_memory=True)
        backend.bind(ctx, algo, model_builder=lambda: make_mlp(32, 10, seed=0))
        handles = backend.submit_many(_jobs(ctx, algo, 4))
        ref = handles[0].job.x_ref  # the engine-side job keeps the real array
        packed_ref = backend._handle_refs[handles[0]][0]
        backend.close()  # never collected
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=packed_ref.name)
        assert isinstance(ref, np.ndarray)  # journal path untouched by shm


# ---------------------------------------------------------------------------
# env-mirror resolution
# ---------------------------------------------------------------------------
class TestKnobResolution:
    def test_resolve_job_batch(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_BATCH", raising=False)
        assert resolve_job_batch(None) is None
        assert resolve_job_batch(4) == 4
        monkeypatch.setenv("REPRO_JOB_BATCH", "8")
        assert resolve_job_batch(None) is None  # env is opt-in
        assert resolve_job_batch(None, env=True) == 8
        assert resolve_job_batch(2, env=True) == 2  # explicit wins
        monkeypatch.setenv("REPRO_JOB_BATCH", "0")
        with pytest.raises(ValueError, match="REPRO_JOB_BATCH"):
            resolve_job_batch(None, env=True)

    def test_resolve_shared_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARED_MEMORY", raising=False)
        assert resolve_shared_memory(None) is False
        assert resolve_shared_memory(True) is True
        monkeypatch.setenv("REPRO_SHARED_MEMORY", "1")
        assert resolve_shared_memory(None) is False
        assert resolve_shared_memory(None, env=True) is True
        assert resolve_shared_memory(False, env=True) is False
        monkeypatch.setenv("REPRO_SHARED_MEMORY", "maybe")
        with pytest.raises(ValueError, match="REPRO_SHARED_MEMORY"):
            resolve_shared_memory(None, env=True)

    def test_spec_validates_transport_knobs(self):
        with pytest.raises(ValueError, match="job_batch"):
            _spec("fedasync", job_batch=0)
        with pytest.raises(ValueError, match="transport backends"):
            _spec("fedasync", backend="thread", job_batch=2)
        with pytest.raises(ValueError, match="shared_memory"):
            _spec("fedasync", backend="thread", shared_memory=True)
        # valid combinations construct fine
        _spec("fedasync", backend="process", job_batch=2, shared_memory=True)
