"""Tests for the homomorphic-encryption substrate."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import (
    BFVParams,
    aggregate_class_distribution,
    bfv_keygen,
    find_ntt_prime,
    is_probable_prime,
    paillier_keygen,
    plaintext_bytes,
    random_prime,
)

SMALL_BFV = BFVParams(n=256, t=1 << 16, q_bits=40)


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 97, 7919, 104729):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (1, 4, 561, 1105, 6601, 100000):  # includes Carmichael numbers
            assert not is_probable_prime(c)

    def test_random_prime_bits(self):
        p = random_prime(64, random.Random(0))
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_ntt_prime_congruence(self):
        q = find_ntt_prime(40, 256)
        assert is_probable_prime(q)
        assert (q - 1) % 512 == 0

    def test_ntt_prime_requires_pow2(self):
        with pytest.raises(ValueError):
            find_ntt_prime(40, 100)


class TestPaillier:
    @pytest.fixture(scope="class")
    def keys(self):
        return paillier_keygen(bits=128, seed=0)

    def test_roundtrip(self, keys):
        pk, sk = keys
        rng = random.Random(1)
        for m in (0, 1, 12345, pk.n - 1):
            assert sk.decrypt(pk.encrypt(m, rng)) == m

    def test_homomorphic_add(self, keys):
        pk, sk = keys
        rng = random.Random(2)
        c = pk.add(pk.encrypt(111, rng), pk.encrypt(222, rng))
        assert sk.decrypt(c) == 333

    def test_add_plain_and_mul_plain(self, keys):
        pk, sk = keys
        rng = random.Random(3)
        c = pk.encrypt(10, rng)
        assert sk.decrypt(pk.add_plain(c, 5)) == 15
        assert sk.decrypt(pk.mul_plain(c, 7)) == 70

    def test_semantic_security_randomized(self, keys):
        pk, _ = keys
        rng = random.Random(4)
        assert pk.encrypt(42, rng) != pk.encrypt(42, rng)

    def test_out_of_range_plaintext(self, keys):
        pk, _ = keys
        with pytest.raises(ValueError):
            pk.encrypt(-1, random.Random(0))
        with pytest.raises(ValueError):
            pk.encrypt(pk.n, random.Random(0))

    @settings(max_examples=10, deadline=None)
    @given(a=st.integers(0, 10**9), b=st.integers(0, 10**9))
    def test_additivity_property(self, a, b):
        pk, sk = paillier_keygen(bits=96, seed=5)
        rng = random.Random(6)
        assert sk.decrypt(pk.add(pk.encrypt(a, rng), pk.encrypt(b, rng))) == a + b


class TestBFV:
    @pytest.fixture(scope="class")
    def keys(self):
        return bfv_keygen(SMALL_BFV, seed=0)

    def test_roundtrip(self, keys):
        pk, sk = keys
        rng = random.Random(0)
        msg = [7, 0, 65535, 123, 42]
        ct = pk.encrypt(msg, rng)
        assert pk.decrypt(ct, sk, length=5) == msg

    def test_additive_homomorphism(self, keys):
        pk, sk = keys
        rng = random.Random(1)
        a = [10, 20, 30]
        b = [1, 2, 3]
        ct = pk.encrypt(a, rng) + pk.encrypt(b, rng)
        assert pk.decrypt(ct, sk, length=3) == [11, 22, 33]

    def test_many_additions_exact(self, keys):
        # 50 ciphertext additions must stay below the noise budget
        pk, sk = keys
        rng = random.Random(2)
        vecs = [[random.Random(i).randrange(100) for _ in range(8)] for i in range(50)]
        agg = pk.encrypt(vecs[0], rng)
        for v in vecs[1:]:
            agg = agg + pk.encrypt(v, rng)
        expected = [sum(col) for col in zip(*vecs)]
        assert pk.decrypt(agg, sk, length=8) == expected

    def test_add_plain(self, keys):
        pk, sk = keys
        rng = random.Random(3)
        ct = pk.encrypt([5, 5], rng).add_plain([1, 2])
        assert pk.decrypt(ct, sk, length=2) == [6, 7]

    def test_message_too_long(self, keys):
        pk, _ = keys
        with pytest.raises(ValueError):
            pk.encrypt(list(range(SMALL_BFV.n + 1)), random.Random(0))

    def test_cross_key_addition_rejected(self, keys):
        pk, _ = keys
        pk2, _ = bfv_keygen(SMALL_BFV, seed=99)
        with pytest.raises(ValueError):
            _ = pk.encrypt([1], random.Random(0)) + pk2.encrypt([1], random.Random(0))

    def test_ciphertext_size_independent_of_classes(self, keys):
        pk, _ = keys
        rng = random.Random(0)
        s10 = pk.encrypt([1] * 10, rng).serialized_bytes()
        s100 = pk.encrypt([1] * 100, rng).serialized_bytes()
        assert s10 == s100  # fixed ring parameters -> fixed ciphertext size


class TestProtocol:
    @pytest.mark.parametrize("scheme", ["bfv", "paillier"])
    def test_aggregation_exact(self, scheme):
        counts = np.random.default_rng(0).integers(0, 300, size=(12, 10))
        rep = aggregate_class_distribution(
            counts, scheme=scheme, seed=0, bfv_params=SMALL_BFV, paillier_bits=128
        )
        np.testing.assert_array_equal(rep.global_counts, counts.sum(axis=0))

    def test_plaintext_grows_linearly(self):
        sizes = [plaintext_bytes(c) for c in (10, 20, 50, 100)]
        diffs = np.diff(sizes) / np.diff([10, 20, 50, 100])
        assert np.allclose(diffs, diffs[0])  # constant bytes-per-class

    def test_bfv_ciphertext_stable_across_class_counts(self):
        sizes = []
        for c in (10, 20, 50):
            counts = np.ones((3, c), dtype=np.int64)
            rep = aggregate_class_distribution(counts, scheme="bfv", seed=0, bfv_params=SMALL_BFV)
            sizes.append(rep.ciphertext_bytes)
        assert len(set(sizes)) == 1  # paper Table 6: ~constant ciphertext size

    def test_report_fields(self):
        counts = np.ones((4, 6), dtype=np.int64)
        rep = aggregate_class_distribution(counts, scheme="bfv", seed=0, bfv_params=SMALL_BFV)
        assert rep.num_clients == 4
        assert rep.total_upload_bytes == 4 * rep.ciphertext_bytes
        assert rep.encrypt_seconds_per_client > 0

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            aggregate_class_distribution(np.ones((2, 2), dtype=int), scheme="rsa")

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            aggregate_class_distribution(np.array([[-1, 2]]), scheme="bfv")
