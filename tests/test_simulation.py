"""Tests for the simulation engine, context and config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import FedAvg, FedCM
from repro.data import load_federated_dataset
from repro.nn import make_mlp, make_resnet_lite
from repro.simulation import FLConfig, FederatedSimulation, History, RoundRecord
from repro.simulation.context import SimulationContext


@pytest.fixture(scope="module")
def ds():
    return load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.2, beta=0.3, num_clients=6, seed=0, scale=0.3
    )


class TestFLConfig:
    def test_defaults_match_paper(self):
        cfg = FLConfig()
        assert cfg.batch_size == 50
        assert cfg.local_epochs == 5
        assert cfg.lr_local == 0.1
        assert cfg.lr_global == 1.0
        assert cfg.participation == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"batch_size": 0},
            {"local_epochs": 0},
            {"lr_local": -1},
            {"lr_global": 0},
            {"participation": 0},
            {"participation": 1.5},
            {"eval_every": 0},
            {"max_batches_per_round": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)


class TestContext:
    def _ctx(self, ds):
        model = make_mlp(32, 10, seed=0)
        return SimulationContext(model, ds, FLConfig(seed=1, participation=0.5))

    def test_client_xy_cached(self, ds):
        ctx = self._ctx(ds)
        x1, y1 = ctx.client_xy(0)
        x2, y2 = ctx.client_xy(0)
        assert x1 is x2

    def test_sample_clients_deterministic(self, ds):
        ctx = self._ctx(ds)
        np.testing.assert_array_equal(ctx.sample_clients(3), ctx.sample_clients(3))
        # different rounds -> (almost surely) different cohorts at 50%
        all_same = all(
            np.array_equal(ctx.sample_clients(r), ctx.sample_clients(0)) for r in range(1, 6)
        )
        assert not all_same

    def test_sample_size(self, ds):
        ctx = self._ctx(ds)
        assert len(ctx.sample_clients(0)) == 3  # 50% of 6

    def test_client_rng_independent_of_order(self, ds):
        ctx = self._ctx(ds)
        a = ctx.client_rng(2, 4).random()
        _ = ctx.client_rng(1, 1).random()
        b = ctx.client_rng(2, 4).random()
        assert a == b

    def test_load_params_roundtrip(self, ds):
        ctx = self._ctx(ds)
        x = ctx.x0.copy()
        x += 1.0
        ctx.load_params(x)
        from repro.utils import flatten_params

        flat, _ = flatten_params(ctx.model.params)
        np.testing.assert_allclose(flat, x)

    def test_nominal_batches(self, ds):
        ctx = self._ctx(ds)
        n_avg = len(ds.y_train) // 6
        per_epoch = int(np.ceil(n_avg / ctx.config.batch_size))
        assert ctx.nominal_batches() == per_epoch * ctx.config.local_epochs


class TestHistory:
    def _history(self, accs):
        h = History(algorithm="x")
        for i, a in enumerate(accs):
            h.records.append(RoundRecord(round=i, test_accuracy=a))
        return h

    def test_final_and_best(self):
        h = self._history([0.1, 0.5, 0.4])
        assert h.final_accuracy == 0.4
        assert h.best_accuracy == 0.5

    def test_nan_handling(self):
        h = self._history([0.1, float("nan"), 0.3])
        assert h.final_accuracy == 0.3
        assert h.best_accuracy == 0.3

    def test_rounds_to_accuracy(self):
        h = self._history([0.1, 0.2, 0.6, 0.7])
        assert h.rounds_to_accuracy(0.55) == 2
        assert h.rounds_to_accuracy(0.9) is None

    def test_tail_accuracy(self):
        h = self._history([0.0, 0.2, 0.4, 0.6])
        assert h.tail_accuracy(2) == pytest.approx(0.5)

    def test_empty(self):
        h = History(algorithm="x")
        assert np.isnan(h.final_accuracy)
        assert np.isnan(h.tail_accuracy())


class TestEngine:
    def test_eval_every(self, ds):
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=5, participation=0.5, local_epochs=1, eval_every=2,
                       seed=0, max_batches_per_round=2)
        h = FederatedSimulation(FedAvg(), model, ds, cfg).run()
        evaluated = [not np.isnan(r.test_accuracy) for r in h.records]
        assert evaluated == [True, False, True, False, True]  # 0, 2, 4 (+ last)

    def test_metric_hooks_called(self, ds):
        calls = []

        def hook(ctx, r, x, extras):
            calls.append(r)
            extras["probe"] = 1.0

        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=2, participation=0.5, local_epochs=1, eval_every=1,
                       seed=0, max_batches_per_round=2)
        h = FederatedSimulation(FedAvg(), model, ds, cfg, metric_hooks=[hook]).run()
        assert calls == [0, 1]
        assert h.records[0].extras["probe"] == 1.0

    def test_per_class_eval(self, ds):
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, eval_per_class=True,
                       seed=0, max_batches_per_round=2)
        h = FederatedSimulation(FedAvg(), model, ds, cfg).run()
        assert h.records[0].per_class_accuracy.shape == (10,)

    def test_selected_recorded(self, ds):
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2)
        h = FederatedSimulation(FedAvg(), model, ds, cfg).run()
        assert len(h.records[0].selected) == 3

    def test_final_params_exposed(self, ds):
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2)
        sim = FederatedSimulation(FedAvg(), model, ds, cfg)
        sim.run()
        assert sim.final_params.shape == (sim.ctx.dim,)

    def test_batchnorm_buffers_averaged(self):
        # engine must reset per-client buffers and average them server-side
        ds = load_federated_dataset(
            "cifar10-lite", imbalance_factor=0.5, beta=0.5, num_clients=4, seed=0, scale=0.15
        )
        model = make_resnet_lite(3, 8, 10, depth="micro", width=4, seed=0, norm="batch")
        buf_before = {k: v.copy() for k, v in model.buffers.items()}
        cfg = FLConfig(rounds=2, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=2)
        FederatedSimulation(FedAvg(), model, ds, cfg).run()
        changed = any(
            not np.allclose(model.buffers[k], buf_before[k]) for k in buf_before
        )
        assert changed

    def test_history_algorithm_name(self, ds):
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(rounds=1, participation=0.5, local_epochs=1, seed=0,
                       max_batches_per_round=1)
        h = FederatedSimulation(FedCM(), model, ds, cfg).run()
        assert h.algorithm == "fedcm"
