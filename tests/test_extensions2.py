"""Tests for schedules, augmentation, fairness, communication model and the
stability analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import fairness_report, gini_coefficient, per_client_accuracy
from repro.data import (
    AugmentedSampler,
    FeatureDropout,
    GaussianJitter,
    Mixup,
    UniformBatchSampler,
    load_federated_dataset,
)
from repro.data.augment import soft_cross_entropy
from repro.nn import (
    ConstantSchedule,
    CosineSchedule,
    StepSchedule,
    WarmupSchedule,
    make_mlp,
    make_schedule,
)
from repro.simulation import CommunicationModel
from repro.theory import (
    bias_forgetting_time,
    critical_alpha,
    noise_amplification,
    round_map,
    spectral_radius,
    stability_margin,
)


class TestSchedules:
    def test_constant(self):
        s = ConstantSchedule()
        assert s(0) == s(100) == 1.0

    def test_step_decay(self):
        s = StepSchedule(step_size=10, gamma=0.5)
        assert s(0) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_cosine_endpoints(self):
        s = CosineSchedule(total_rounds=100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(50) == pytest.approx(0.55)

    def test_cosine_clamps_past_total(self):
        s = CosineSchedule(total_rounds=10)
        assert s(1000) == pytest.approx(0.0)

    def test_warmup_then_after(self):
        s = WarmupSchedule(warmup_rounds=10, start=0.2)
        assert s(0) == pytest.approx(0.2)
        assert s(5) == pytest.approx(0.6)
        assert s(10) == 1.0

    def test_factory(self):
        assert isinstance(make_schedule("constant", 10), ConstantSchedule)
        assert isinstance(make_schedule("cosine", 10), CosineSchedule)
        assert isinstance(make_schedule("step", 30), StepSchedule)
        w = make_schedule("warmup-cosine", 100)
        assert isinstance(w, WarmupSchedule)
        with pytest.raises(KeyError):
            make_schedule("exotic", 10)

    @settings(max_examples=30, deadline=None)
    @given(r=st.integers(0, 10_000))
    def test_all_schedules_bounded(self, r):
        for s in (ConstantSchedule(), StepSchedule(7, 0.7), CosineSchedule(500, 0.05),
                  WarmupSchedule(20)):
            v = s(r)
            assert 0.0 <= v <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepSchedule(0)
        with pytest.raises(ValueError):
            CosineSchedule(0)
        with pytest.raises(ValueError):
            WarmupSchedule(0)


class TestAugment:
    def test_jitter_changes_features_not_labels(self):
        rng = np.random.default_rng(0)
        x = np.zeros((5, 4))
        y = np.arange(5)
        xa, ya = GaussianJitter(0.5)(x, y, rng)
        assert not np.allclose(xa, x)
        np.testing.assert_array_equal(ya, y)

    def test_jitter_zero_sigma_identity(self):
        x = np.ones((3, 2))
        xa, _ = GaussianJitter(0.0)(x, np.zeros(3, dtype=int), np.random.default_rng(0))
        assert xa is x

    def test_feature_dropout_fraction(self):
        rng = np.random.default_rng(0)
        x = np.ones((100, 50))
        xa, _ = FeatureDropout(0.3)(x, np.zeros(100, dtype=int), rng)
        dropped = np.mean(xa == 0)
        assert 0.25 < dropped < 0.35

    def test_mixup_soft_targets_valid(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 4))
        y = rng.integers(0, 3, 8)
        xm, ym = Mixup(3, alpha=0.4)(x, y, rng)
        assert ym.shape == (8, 3)
        np.testing.assert_allclose(ym.sum(axis=1), 1.0)
        assert np.all(ym >= 0)

    def test_soft_cross_entropy_matches_hard_ce(self):
        from repro.nn import CrossEntropyLoss
        from repro.nn.functional import one_hot

        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        y = rng.integers(0, 4, 6)
        l_hard, g_hard = CrossEntropyLoss()(logits, y)
        l_soft, g_soft = soft_cross_entropy(logits, one_hot(y, 4))
        assert l_hard == pytest.approx(l_soft, abs=1e-9)
        np.testing.assert_allclose(g_hard, g_soft, atol=1e-12)

    def test_augmented_sampler_materialize(self):
        rng = np.random.default_rng(0)
        x = np.ones((20, 4))
        y = np.zeros(20, dtype=int)
        s = AugmentedSampler(UniformBatchSampler(y, 5), [GaussianJitter(0.1)])
        bidx = next(iter(s.epoch(rng)))
        xb, yb = s.materialize(x, y, bidx, rng)
        assert xb.shape == (5, 4)
        assert not np.allclose(xb, 1.0)
        assert s.batches_per_epoch() == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianJitter(-1)
        with pytest.raises(ValueError):
            FeatureDropout(1.0)
        with pytest.raises(ValueError):
            Mixup(1)


class TestFairness:
    def test_gini_equal_distribution(self):
        assert gini_coefficient(np.full(10, 0.5)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_extreme_inequality(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.95

    def test_gini_negative_raises(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 1.0]))

    def test_fairness_report_fields(self):
        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.2, beta=0.2, num_clients=5,
            seed=0, scale=0.2,
        )
        model = make_mlp(32, 10, seed=0)
        rep = fairness_report(model, ds)
        assert set(rep) == {"mean", "std", "worst", "best", "gini", "spread"}
        assert rep["worst"] <= rep["mean"] <= rep["best"]
        acc = per_client_accuracy(model, ds)
        assert acc.shape == (5,)


class TestCommunicationModel:
    def test_momentum_methods_cost_more_downlink(self):
        cm = CommunicationModel(num_params=1000, clients_per_round=10)
        avg = cm.estimate("fedavg", rounds=10)
        wcm = cm.estimate("fedwcm", rounds=10)
        assert wcm.downlink_per_round == 2 * avg.downlink_per_round
        assert wcm.uplink_per_round == avg.uplink_per_round

    def test_scaffold_doubles_both_directions(self):
        cm = CommunicationModel(num_params=1000, clients_per_round=4)
        sc = cm.estimate("scaffold", rounds=1)
        avg = cm.estimate("fedavg", rounds=1)
        assert sc.per_round == 2 * avg.per_round

    def test_fedwcm_one_time_cost(self):
        cm = CommunicationModel(num_params=1000, clients_per_round=10)
        c = cm.estimate("fedwcm", rounds=100, num_classes=10, total_clients=100)
        assert c.one_time == 2 * 100 * 10 * 8
        assert c.total == c.per_round * 100 + c.one_time

    def test_he_one_time_cost_uses_ciphertext(self):
        cm = CommunicationModel(num_params=1000, clients_per_round=10)
        c = cm.estimate(
            "fedwcm-he", rounds=10, num_classes=10, total_clients=50,
            he_ciphertext_bytes=14336,
        )
        assert c.one_time == 50 * 14336 + 50 * 10 * 8

    def test_creff_feature_stats(self):
        cm = CommunicationModel(num_params=1000, clients_per_round=2)
        plain = cm.estimate("fedavg", rounds=1)
        creff = cm.estimate("creff", rounds=1, num_classes=10, feature_dim=32)
        assert creff.uplink_per_round > plain.uplink_per_round

    def test_fedcm_variants_resolve(self):
        cm = CommunicationModel(num_params=10, clients_per_round=1)
        assert cm.estimate("fedcm+focal", rounds=1).downlink_per_round == 2 * 10 * 8

    def test_unknown_method(self):
        cm = CommunicationModel(num_params=10, clients_per_round=1)
        with pytest.raises(KeyError):
            cm.estimate("gossip", rounds=1)

    def test_compare_table(self):
        cm = CommunicationModel(num_params=10, clients_per_round=1)
        out = cm.compare(["fedavg", "fedwcm"], rounds=5)
        assert set(out) == {"fedavg", "fedwcm"}


class TestStabilityAnalysis:
    def test_round_map_shape_and_det(self):
        m = round_map(1.0, 0.1, 1.0)
        assert m.shape == (2, 2)
        # det M = 1 - alpha independent of lam and step
        assert np.linalg.det(m) == pytest.approx(0.9)
        assert np.linalg.det(round_map(3.0, 0.1, 0.5)) == pytest.approx(0.9)

    def test_spectral_radius_monotone_in_alpha(self):
        radii = [spectral_radius(1.0, a, 1.0) for a in (0.1, 0.3, 0.6, 0.9)]
        assert all(np.diff(radii) < 0)

    def test_alpha_one_recovers_gd(self):
        # alpha=1: no momentum; radius = |1 - step*lam|
        assert spectral_radius(1.0, 1.0, 0.5) == pytest.approx(0.5)

    def test_bias_forgetting_time_scaling(self):
        t_heavy = bias_forgetting_time(1.0, 0.1, 1.0)
        t_light = bias_forgetting_time(1.0, 0.9, 1.0)
        assert t_heavy > 10 * t_light

    def test_noise_amplification_finite_when_stable(self):
        assert np.isfinite(noise_amplification(1.0, 0.5, 1.0))

    def test_noise_amplification_infinite_when_unstable(self):
        # enormous step: unstable at any alpha -> infinite variance gain
        assert noise_amplification(1.0, 1.0, 3.0) == float("inf")

    def test_stability_margin_sign(self):
        assert stability_margin(1.0, 0.5, 1.0) > 0
        assert stability_margin(1.0, 1.0, 3.0) < 0

    def test_critical_alpha_bisection(self):
        a = critical_alpha(1.0, 1.0, target_margin=0.3)
        assert 0 < a <= 1.0
        assert stability_margin(1.0, a, 1.0) >= 0.3 - 1e-6

    def test_critical_alpha_impossible_margin(self):
        assert critical_alpha(1.0, 3.0, target_margin=0.5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            round_map(-1.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            round_map(1.0, 0.0, 1.0)


class TestScheduleEngineIntegration:
    def test_lr_at_applies_schedule(self):
        from repro.simulation import FLConfig, FederatedSimulation
        from repro.algorithms import FedAvg
        from repro.data import load_federated_dataset
        from repro.nn import StepSchedule, make_mlp

        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.5, beta=0.5, num_clients=4,
            seed=0, scale=0.2,
        )
        cfg = FLConfig(rounds=1, lr_local=0.2, seed=0,
                       lr_schedule=StepSchedule(step_size=5, gamma=0.5))
        sim = FederatedSimulation(FedAvg(), make_mlp(32, 10, seed=0), ds, cfg)
        assert sim.ctx.lr_at(0) == pytest.approx(0.2)
        assert sim.ctx.lr_at(5) == pytest.approx(0.1)
        assert sim.ctx.lr_at(12) == pytest.approx(0.05)

    def test_scheduled_run_differs_from_constant(self):
        from repro.simulation import FLConfig, FederatedSimulation
        from repro.algorithms import make_method
        from repro.data import load_federated_dataset
        from repro.nn import CosineSchedule, make_mlp

        ds = load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.5, beta=0.5, num_clients=4,
            seed=0, scale=0.2,
        )

        def run(schedule):
            cfg = FLConfig(rounds=4, participation=0.5, local_epochs=1,
                           eval_every=4, seed=0, lr_schedule=schedule,
                           max_batches_per_round=3)
            sim = FederatedSimulation(
                make_method("fedcm").algorithm, make_mlp(32, 10, seed=0), ds, cfg
            )
            sim.run()
            return sim.final_params

        x_const = run(None)
        x_sched = run(CosineSchedule(total_rounds=4))
        assert not np.allclose(x_const, x_sched)


class TestSamFamily:
    """FedSpeed / FedSMOO / FedLESAM — the remaining Fig 18/19 baselines."""

    def _run(self, name, ds):
        from repro.algorithms import make_method
        from repro.simulation import FLConfig, FederatedSimulation

        b = make_method(name)
        cfg = FLConfig(rounds=3, participation=0.5, local_epochs=1, eval_every=3,
                       seed=0, max_batches_per_round=3)
        sim = FederatedSimulation(b.algorithm, make_mlp(32, 10, seed=0), ds, cfg)
        return sim, sim.run()

    @pytest.fixture(scope="class")
    def ds(self):
        return load_federated_dataset(
            "fashion-mnist-lite", imbalance_factor=0.3, beta=0.3, num_clients=6,
            seed=0, scale=0.3,
        )

    @pytest.mark.parametrize("name", ["fedspeed", "fedsmoo", "fedlesam"])
    def test_runs_and_finite(self, ds, name):
        _, h = self._run(name, ds)
        assert np.isfinite(h.final_accuracy)
        assert h.final_accuracy > 0.1

    def test_fedlesam_tracks_previous_global(self, ds):
        sim, _ = self._run("fedlesam", ds)
        # after a run, the stored previous model differs from the start
        assert not np.allclose(sim.algorithm._x_prev, sim.ctx.x0)

    def test_fedsmoo_duals_update(self, ds):
        sim, _ = self._run("fedsmoo", ds)
        assert np.any(np.linalg.norm(sim.algorithm._hi, axis=1) > 0)
        assert np.linalg.norm(sim.algorithm._mu) > 0

    def test_validation(self):
        from repro.algorithms import FedSpeed, FedSMOO, FedLESAM

        with pytest.raises(ValueError):
            FedSpeed(rho=0)
        with pytest.raises(ValueError):
            FedSMOO(alpha=0)
        with pytest.raises(ValueError):
            FedLESAM(rho=-1)
