"""Legacy setup shim: this environment's setuptools lacks bdist_wheel, so
``pip install -e . --no-use-pep517`` (setup.py develop) is the supported
editable-install path. Metadata lives in pyproject.toml."""
from setuptools import setup

setup()
