"""IoT human-activity sensing with rare critical events (the paper's intro
scenario).

Smart-home devices mostly observe routine activities (sitting, walking,
standing...) while safety-critical events (falls, seizures) are rare — a
textbook long-tailed federated problem where tail recall is what matters.

This example builds that scenario explicitly (8 routine activities as head
classes, 2 critical events as tail classes at ~2% frequency), then compares
FedAvg / FedCM / FedWCM on *critical-event accuracy*.

    python examples/iot_sensing_longtail.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_method
from repro.analysis import head_tail_accuracy, per_label_accuracy
from repro.data.partition import partition_balanced_dirichlet
from repro.data.registry import DatasetInfo, FederatedDataset
from repro.data.synthetic import ClassConditionalGenerator, SyntheticSpec
from repro.nn import make_mlp
from repro.simulation import FLConfig, FederatedSimulation

ACTIVITIES = [
    "sitting", "walking", "standing", "lying", "cooking",
    "cleaning", "watching-tv", "sleeping",           # routine (head)
    "fall", "medical-emergency",                     # critical (tail)
]


def build_sensing_dataset(num_devices: int = 20, seed: int = 0) -> FederatedDataset:
    """36-dim IMU-like feature windows; critical events at ~6% of the head."""
    rng = np.random.default_rng(seed)
    spec = SyntheticSpec(
        num_classes=len(ACTIVITIES), shape=(36,), separation=0.8, noise=1.0, modes=3
    )
    gen = ClassConditionalGenerator(spec, seed=rng.spawn(1)[0])
    counts = np.array([400, 400, 350, 350, 300, 300, 250, 250, 25, 25])
    x_train, y_train = gen.sample(counts, rng.spawn(1)[0])
    x_test, y_test = gen.sample(np.full(len(ACTIVITIES), 40), rng.spawn(1)[0])
    partitions = partition_balanced_dirichlet(
        y_train, num_devices, beta=0.2, rng=rng.spawn(1)[0], num_classes=len(ACTIVITIES)
    )
    info = DatasetInfo(
        name="iot-sensing",
        num_classes=len(ACTIVITIES),
        shape=(36,),
        n_max_train=400,
        n_test_per_class=40,
        separation=0.8,
        noise=1.0,
        modes=3,
        paper_counterpart="IoT HAR motivation (section 1)",
    )
    return FederatedDataset(
        info=info, x_train=x_train, y_train=y_train, x_test=x_test, y_test=y_test,
        partitions=partitions, imbalance_factor=float(counts.min() / counts.max()),
        beta=0.2, partition_kind="balanced",
    )


def main() -> None:
    ds = build_sensing_dataset()
    print(f"devices: {ds.num_clients}, IF = {ds.imbalance_factor:.3f}")
    print(f"class counts: {dict(zip(ACTIVITIES, ds.global_class_counts.tolist()))}\n")

    results = {}
    for method in ("fedavg", "fedcm", "fedwcm"):
        bundle = make_method(method)
        model = make_mlp(36, len(ACTIVITIES), seed=0)
        cfg = FLConfig(rounds=30, batch_size=10, participation=0.25, local_epochs=5,
                       eval_every=10, seed=0)
        sim = FederatedSimulation(
            bundle.algorithm, model, ds, cfg,
            loss_builder=bundle.loss_builder, sampler_builder=bundle.sampler_builder,
        )
        h = sim.run()
        sim.ctx.load_params(sim.final_params)
        per_label = per_label_accuracy(sim.ctx.model, ds.x_test, ds.y_test, ds.num_classes)
        ht = head_tail_accuracy(per_label, ds.global_class_counts, head_fraction=0.8)
        critical = float(np.nanmean(per_label[8:]))
        results[method] = (h.final_accuracy, ht, critical)
        print(
            f"{method:8s} overall={h.final_accuracy:.3f}  "
            f"routine={ht['head']:.3f}  critical-events={critical:.3f}"
        )

    print(
        "\ncritical-event (fall / medical-emergency) accuracy is the metric "
        "that matters for deployment; FedWCM's scarcity weighting gives the "
        "devices holding those rare events more influence on the momentum."
    )


if __name__ == "__main__":
    main()
