"""Straggler resilience walkthrough: from blocked rounds to async updates.

Real federations are dominated by device heterogeneity: a synchronous
server waits for the slowest sampled client every round, so one slow phone
sets the pace of the whole fleet.  This example walks the three escape
hatches the :mod:`repro.runtime` subsystem provides, on a small long-tailed
problem with heavy-tailed (Pareto) stragglers:

1. price the damage — how much of a synchronous round is spent waiting;
2. semi-synchronous deadlines — drop the tail, keep the round structure;
3. fully asynchronous FedAsync / FedBuff — never wait at all, discount
   stale arrivals instead.

Run: ``PYTHONPATH=src python examples/straggler_resilience.py``
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import FedAsync, FedAvg, FedBuff
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.runtime import (
    AsyncFederatedSimulation,
    ParetoLatency,
    SemiSyncFederatedSimulation,
)
from repro.simulation import FLConfig


def main() -> None:
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.1, beta=0.3,
        num_clients=20, seed=0, scale=0.5,
    )
    cfg = FLConfig(
        rounds=30, participation=0.25, local_epochs=2, batch_size=10,
        max_batches_per_round=8, eval_every=5, seed=0,
    )
    latency = lambda: ParetoLatency(alpha=1.5)  # noqa: E731 - tiny factory

    # -- 1. price the straggler damage --------------------------------------
    print("=== 1. what stragglers cost a synchronous server ===")
    sync = SemiSyncFederatedSimulation(
        FedAvg(), make_mlp(32, 10, seed=0), ds, cfg, latency_model=latency()
    )
    h_sync = sync.run()
    waits = []
    for r in range(cfg.rounds):
        lats = sync.round_latencies(r, sync.ctx.sample_clients(r))
        waits.append(lats.max() / np.median(lats))
    print(f"sync FedAvg: final acc {h_sync.final_accuracy:.3f}, "
          f"total simulated time {sync.total_virtual_time:.2f}s")
    print(f"the slowest sampled client is on average "
          f"{np.mean(waits):.1f}x slower than the cohort median\n")

    # -- 2. semi-sync: cut the tail with a deadline -------------------------
    print("=== 2. deadline-based semi-synchronous rounds ===")
    probe = latency().bind(sync.ctx)
    base = np.array([probe.latency(k, k) for k in range(ds.num_clients)])
    deadline = float(np.quantile(base, 0.75))
    semi = SemiSyncFederatedSimulation(
        FedAvg(), make_mlp(32, 10, seed=0), ds, cfg,
        latency_model=latency(), deadline=deadline,
    )
    h_semi = semi.run()
    dropped = sum(r.extras.get("n_dropped", 0) for r in h_semi.records)
    print(f"deadline {deadline:.2f}s: final acc {h_semi.final_accuracy:.3f}, "
          f"time {semi.total_virtual_time:.2f}s "
          f"({sync.total_virtual_time / semi.total_virtual_time:.1f}x faster), "
          f"{dropped} late updates dropped\n")

    # -- 3. fully asynchronous ----------------------------------------------
    print("=== 3. asynchronous staleness-aware aggregation ===")
    for algo, label in (
        (FedAsync(mixing=0.9), "fedasync (polynomial staleness mixing)"),
        (FedBuff(buffer_size=3), "fedbuff  (buffered-K aggregation)"),
    ):
        sim = AsyncFederatedSimulation(
            algo, make_mlp(32, 10, seed=0), ds, cfg, latency_model=latency()
        )
        h = sim.run()
        stale = np.mean([r.staleness for r in h.records])
        print(f"{label}: final acc {h.final_accuracy:.3f}, "
              f"time {sim.total_virtual_time:.2f}s "
              f"({sync.total_virtual_time / sim.total_virtual_time:.1f}x faster), "
              f"mean staleness {stale:.2f}")

    print("\nSame client work, same data, same seeds — the async runtimes "
          "simply refuse to wait for the tail.")


if __name__ == "__main__":
    main()
