"""Straggler resilience walkthrough: from blocked rounds to async updates.

Real federations are dominated by device heterogeneity: a synchronous
server waits for the slowest sampled client every round, so one slow phone
sets the pace of the whole fleet.  This example walks the three escape
hatches the :mod:`repro.runtime` subsystem provides, on a small long-tailed
problem with heavy-tailed (Pareto) stragglers — each scenario is a
declarative :class:`~repro.experiments.ExperimentSpec` override of one base
spec, executed through the ``run(spec)`` facade:

1. price the damage — how much of a synchronous round is spent waiting;
2. semi-synchronous deadlines — drop the tail, keep the round structure;
3. fully asynchronous FedAsync / FedBuff — never wait at all, discount
   stale arrivals instead.

Run: ``PYTHONPATH=src python examples/straggler_resilience.py``
"""

from __future__ import annotations

import numpy as np

from repro.experiments import DataSpec, ExperimentSpec, RuntimeSpec, run
from repro.simulation import FLConfig


def main() -> None:
    # the shared problem; kind="semisync" with deadline=None IS the
    # straggler-blocked synchronous timing baseline
    base = ExperimentSpec(
        name="sync-fedavg",
        data=DataSpec(
            dataset="fashion-mnist-lite", imbalance_factor=0.1, beta=0.3,
            clients=20, scale=0.5,
        ),
        runtime=RuntimeSpec(
            kind="semisync", latency="pareto", latency_kwargs={"alpha": 1.5},
        ),
        config=FLConfig(
            rounds=30, participation=0.25, local_epochs=2, batch_size=10,
            max_batches_per_round=8, eval_every=5, seed=0,
        ),
    )

    # -- 1. price the straggler damage --------------------------------------
    print("=== 1. what stragglers cost a synchronous server ===")
    sync = run(base)
    engine = sync.engine
    waits = []
    for r in range(base.config.rounds):
        lats = engine.round_latencies(r, engine.ctx.sample_clients(r))
        waits.append(lats.max() / np.median(lats))
    print(f"sync FedAvg: final acc {sync.final_accuracy:.3f}, "
          f"total simulated time {sync.total_virtual_time:.2f}s")
    print(f"the slowest sampled client is on average "
          f"{np.mean(waits):.1f}x slower than the cohort median\n")

    # -- 2. semi-sync: cut the tail with a deadline -------------------------
    print("=== 2. deadline-based semi-synchronous rounds ===")
    probe = engine.latency_model
    clients = base.data.clients
    cost = np.array([probe.latency(k, k) for k in range(clients)])
    deadline = float(np.quantile(cost, 0.75))
    semi = run(base.override_many([
        ("name", "semisync-deadline"), ("runtime.deadline", deadline),
    ]))
    dropped = sum(r.extras.get("n_dropped", 0) for r in semi.history.records)
    print(f"deadline {deadline:.2f}s: final acc {semi.final_accuracy:.3f}, "
          f"time {semi.total_virtual_time:.2f}s "
          f"({sync.total_virtual_time / semi.total_virtual_time:.1f}x faster), "
          f"{dropped} late updates dropped\n")

    # -- 3. fully asynchronous ----------------------------------------------
    print("=== 3. asynchronous staleness-aware aggregation ===")
    for kind, kwargs, label in (
        ("fedasync", {"mixing": 0.9}, "fedasync (polynomial staleness mixing)"),
        ("fedbuff", {"buffer_size": 3}, "fedbuff  (buffered-K aggregation)"),
    ):
        result = run(base.override_many([
            ("name", kind),
            ("runtime.kind", kind),
            ("method.name", kind),
            ("method.kwargs", kwargs),
        ]))
        stale = np.mean([r.staleness for r in result.history.records])
        print(f"{label}: final acc {result.final_accuracy:.3f}, "
              f"time {result.total_virtual_time:.2f}s "
              f"({sync.total_virtual_time / result.total_virtual_time:.1f}x faster), "
              f"mean staleness {stale:.2f}")

    print("\nSame client work, same data, same seeds — the async runtimes "
          "simply refuse to wait for the tail.")


if __name__ == "__main__":
    main()
