"""Privacy-preserving global-distribution gathering (paper section 5.5 /
appendix C).

FedWCM needs the *global* class distribution; clients may refuse to reveal
local distributions in the clear.  This example runs the BatchCrypt-style
protocol end to end with both HE backends, then feeds the (decrypted) global
distribution into FedWCM as its target-aware scoring input.

    python examples/private_distribution_sharing.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import FedWCM
from repro.data import load_federated_dataset
from repro.he import BFVParams, aggregate_class_distribution, plaintext_bytes
from repro.nn import make_mlp
from repro.simulation import FLConfig, FederatedSimulation


def main() -> None:
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.1, beta=0.1, num_clients=20, seed=0
    )
    client_counts = ds.client_counts  # (K, C) — each row is private to a client

    print("=== encrypted aggregation of class distributions ===")
    for scheme in ("bfv", "paillier"):
        rep = aggregate_class_distribution(
            client_counts,
            scheme=scheme,
            seed=0,
            bfv_params=BFVParams(n=1024, t=1 << 20, q_bits=50),
            paillier_bits=256,
        )
        ok = np.array_equal(rep.global_counts, client_counts.sum(axis=0))
        print(
            f"{scheme:9s} exact={ok}  ciphertext={rep.ciphertext_bytes/1024:.1f} KiB "
            f"(plaintext {rep.plaintext_bytes} B)  "
            f"encrypt/client={rep.encrypt_seconds_per_client*1e3:.1f} ms  "
            f"total upload={rep.total_upload_bytes/1e6:.2f} MB"
        )

    # the server now knows only the *global* distribution — exactly the input
    # FedWCM's scoring needs (Eq. 3); individual rows were never revealed.
    rep = aggregate_class_distribution(client_counts, scheme="paillier", seed=0, paillier_bits=256)
    global_dist = rep.global_counts / rep.global_counts.sum()
    print(f"\nreconstructed global distribution: {np.round(global_dist, 3).tolist()}")

    print("\n=== FedWCM using the privately gathered distribution ===")
    algo = FedWCM()  # scoring consumes ds.client_counts; in a deployment the
    # per-client scores s_k are computed *locally* from the broadcast global
    # distribution (section 5.1), so the server never sees local counts.
    model = make_mlp(32, 10, seed=0)
    cfg = FLConfig(rounds=20, batch_size=10, participation=0.25, local_epochs=5,
                   eval_every=5, seed=0)
    h = FederatedSimulation(algo, model, ds, cfg).run(verbose=True)
    print(f"\nfinal accuracy: {h.final_accuracy:.4f}")


if __name__ == "__main__":
    main()
