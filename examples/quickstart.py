"""Quickstart: train FedWCM on a long-tailed non-IID federated problem.

Runs in under a minute on a laptop CPU:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import make_method
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.simulation import FLConfig, FederatedSimulation


def main() -> None:
    # 1. a long-tailed (IF = 0.1), heterogeneous (Dirichlet beta = 0.1)
    #    federated dataset across 20 clients
    dataset = load_federated_dataset(
        "fashion-mnist-lite",
        imbalance_factor=0.1,
        beta=0.1,
        num_clients=20,
        seed=0,
    )
    counts = dataset.global_class_counts
    print(f"global class counts (head -> tail): {counts.tolist()}")

    # 2. model + method (any name from repro.algorithms.METHOD_NAMES)
    model = make_mlp(input_dim=32, num_classes=10, seed=0)
    bundle = make_method("fedwcm")

    # 3. the federated round loop (paper defaults: eta_l = 0.1, eta_g = 1,
    #    5 local epochs, 25% participation here for a faster demo)
    config = FLConfig(
        rounds=30,
        batch_size=10,
        participation=0.25,
        local_epochs=5,
        eval_every=5,
        seed=0,
    )
    sim = FederatedSimulation(
        bundle.algorithm,
        model,
        dataset,
        config,
        loss_builder=bundle.loss_builder,
        sampler_builder=bundle.sampler_builder,
    )
    history = sim.run(verbose=True)

    print(f"\nfinal accuracy: {history.final_accuracy:.4f}")
    print(f"best accuracy:  {history.best_accuracy:.4f}")
    alphas = [r.extras.get("alpha") for r in history.records if "alpha" in r.extras]
    print(f"adaptive alpha ranged over [{min(alphas):.3f}, {max(alphas):.3f}]")


if __name__ == "__main__":
    main()
