"""Quickstart: train FedWCM on a long-tailed non-IID federated problem.

One declarative :class:`~repro.experiments.ExperimentSpec` describes the
whole run — data, model, method, engine, hyper-parameters — and a single
``run(spec)`` call executes it.  The same spec serializes to JSON
(``spec.save(...)`` / ``python -m repro run --config spec.json``), so this
exact experiment can be committed, shared, and swept.

Runs in under a minute on a laptop CPU:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments import DataSpec, ExperimentSpec, MethodSpec, run
from repro.simulation import FLConfig


def main() -> None:
    # 1. the whole experiment as one declarative, serializable object: a
    #    long-tailed (IF = 0.1), heterogeneous (Dirichlet beta = 0.1)
    #    problem across 20 clients, trained with FedWCM under the paper
    #    defaults (eta_l = 0.1, eta_g = 1, 5 local epochs; 25% participation
    #    here for a faster demo)
    spec = ExperimentSpec(
        name="quickstart",
        data=DataSpec(
            dataset="fashion-mnist-lite",
            imbalance_factor=0.1,
            beta=0.1,
            clients=20,
        ),
        method=MethodSpec(name="fedwcm"),
        config=FLConfig(
            rounds=30,
            batch_size=10,
            participation=0.25,
            local_epochs=5,
            eval_every=5,
            seed=0,
        ),
    )
    print("spec as JSON (try `python -m repro run --config <file>`):")
    print(spec.to_json())
    print()

    # 2. one facade call resolves every registry and runs the right engine
    result = run(spec, verbose=True)
    history = result.history

    counts = result.engine.ctx.dataset.global_class_counts
    print(f"\nglobal class counts (head -> tail): {counts.tolist()}")
    print(f"final accuracy: {history.final_accuracy:.4f}")
    print(f"best accuracy:  {history.best_accuracy:.4f}")
    alphas = [r.extras.get("alpha") for r in history.records if "alpha" in r.extras]
    print(f"adaptive alpha ranged over [{min(alphas):.3f}, {max(alphas):.3f}]")

    # 3. variations are dotted-path overrides, not new wiring
    variant = spec.apply_overrides(["method.name=fedavg", "config.rounds=10"])
    print(f"\nfedavg baseline (10 rounds): "
          f"final accuracy {run(variant).final_accuracy:.4f}")


if __name__ == "__main__":
    main()
