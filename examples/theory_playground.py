"""Convergence theory on the quadratic testbed (paper section 6).

The quadratic problem has known smoothness L, noise sigma and gap Delta, so
Theorem 6.1's rate bound is directly computable.  This example:

1. verifies the measured average gradient norm sits below the bound,
2. shows the alpha feasibility bound beta <= sqrt(NKL*Delta/(sigma^2 R)),
3. demonstrates the momentum/noise trade-off that motivates adaptive alpha.

    python examples/theory_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.theory import (
    RateConstants,
    beta_upper_bound,
    convergence_rate_bound,
    lr_condition,
    make_longtail_quadratic,
    run_quadratic_fl,
)


def main() -> None:
    problem = make_longtail_quadratic(
        num_clients=40, dim=16, head_fraction=0.8, sigma=0.5, seed=0
    )
    x0 = np.full(16, 5.0)
    consts = RateConstants(
        L=problem.L,
        delta=problem.global_loss(x0) - problem.global_loss(problem.x_star),
        sigma=problem.sigma,
        n_clients=10,  # 25% participation of 40
        k_steps=10,
    )
    print(f"problem constants: L={consts.L:.3f}  Delta={consts.delta:.2f}  sigma={consts.sigma}")

    print("\nrounds   measured mean||grad||^2   Theorem 6.1 bound   alpha upper bound")
    for rounds in (50, 200, 800):
        out = run_quadratic_fl(
            problem, "fedavg", rounds=rounds, local_steps=10, participation=0.25,
            seed=0, x0=x0,
        )
        measured = out["grad_norm_sq"].mean()
        bound = convergence_rate_bound(consts, rounds)
        amax = beta_upper_bound(consts, rounds)
        print(f"{rounds:6d}   {measured:22.5f}   {bound:17.5f}   {amax:17.3f}")

    cond = lr_condition(consts, rounds=200, eta=0.05, beta=0.5)
    print(f"\nlr condition at eta=0.05, beta=0.5: eta*K*L = {cond['eta_k_l']:.3f} "
          f"vs binding bound {cond['min_bound']:.3f} -> satisfied={cond['satisfied']}")

    print("\nsteady-state ||grad||^2 by method (long-tail-biased cohorts):")
    for name, method, kw in (
        ("fedavg", "fedavg", {}),
        ("fedcm alpha=0.1", "fedcm", {"alpha": 0.1}),
        ("fedwcm adaptive", "fedwcm", {"adaptive_alpha_fn": lambda r, _: min(0.1 + 0.02 * r, 0.8)}),
    ):
        out = run_quadratic_fl(
            problem, method, rounds=300, local_steps=10, participation=0.25,
            seed=0, x0=x0, **kw,
        )
        print(f"  {name:18s} {out['grad_norm_sq'][-50:].mean():.5f}")


if __name__ == "__main__":
    main()
