"""Extending the framework with a custom federated algorithm.

The algorithm protocol is three methods (setup / client_update / aggregate);
the ``LocalSGDMixin`` gives you the inner loop with a pluggable per-step
``direction_fn``.  This example implements **FedWCM-Prox** — FedWCM's
weighted momentum plus a FedProx-style proximal anchor — in ~30 lines, and
races it against its two parents.

    python examples/custom_algorithm_plugin.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import FedWCM, make_method
from repro.algorithms.base import ClientUpdate
from repro.data import load_federated_dataset
from repro.nn import make_mlp
from repro.simulation import FLConfig, FederatedSimulation


class FedWCMProx(FedWCM):
    """FedWCM local rule with an added proximal term mu*(x - x_global).

    Everything else — scarcity scoring, temperature-softmax aggregation,
    adaptive alpha — is inherited from :class:`repro.algorithms.FedWCM`.
    """

    name = "fedwcm-prox"

    def __init__(self, mu: float = 0.01, **kwargs) -> None:
        super().__init__(**kwargs)
        if mu < 0:
            raise ValueError("mu must be >= 0")
        self.mu = mu

    def client_update(self, ctx, round_idx, client_id, x_global) -> ClientUpdate:
        mom = self.momentum
        a, delta, mu = mom.alpha, mom.delta, self.mu

        def direction(g: np.ndarray, x: np.ndarray) -> np.ndarray:
            return a * g + (1.0 - a) * delta + mu * (x - x_global)

        x_local, nb = self._local_sgd(
            ctx, round_idx, client_id, x_global, direction_fn=direction
        )
        return ClientUpdate(
            client_id=client_id,
            displacement=x_global - x_local,
            n_samples=len(ctx.client_xy(client_id)[1]),
            n_batches=nb,
        )


def main() -> None:
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.1, beta=0.1, num_clients=20, seed=0
    )
    cfg = FLConfig(rounds=24, batch_size=10, participation=0.25, local_epochs=5,
                   eval_every=8, seed=0)

    contenders = {
        "fedprox": make_method("fedprox").algorithm,
        "fedwcm": make_method("fedwcm").algorithm,
        "fedwcm-prox (custom)": FedWCMProx(mu=0.01),
    }
    for name, algo in contenders.items():
        model = make_mlp(32, 10, seed=0)
        h = FederatedSimulation(algo, model, ds, cfg).run()
        print(f"{name:22s} final={h.final_accuracy:.4f} best={h.best_accuracy:.4f}")


if __name__ == "__main__":
    main()
