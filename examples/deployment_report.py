"""Deployment-readiness report for a federated method.

Beyond headline accuracy, a production FL rollout cares about: per-client
fairness (does the model serve tail-holding devices?), communication budget
(what do 300 rounds cost on the wire?), privacy overhead (what does HE-based
distribution gathering add?), and lr scheduling.  This example assembles all
of that for FedWCM vs FedAvg on one long-tailed problem.

    python examples/deployment_report.py
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import make_method
from repro.analysis import fairness_report
from repro.data import load_federated_dataset
from repro.he import BFVParams, aggregate_class_distribution
from repro.nn import CosineSchedule, make_mlp
from repro.simulation import CommunicationModel, FederatedSimulation, FLConfig
from repro.viz import ascii_barchart


def main() -> None:
    ds = load_federated_dataset(
        "fashion-mnist-lite", imbalance_factor=0.1, beta=0.1, num_clients=20, seed=0
    )
    rounds = 30

    print("=" * 64)
    print("1. accuracy + cross-client fairness")
    print("=" * 64)
    reports = {}
    for method in ("fedavg", "fedwcm"):
        bundle = make_method(method)
        model = make_mlp(32, 10, seed=0)
        cfg = FLConfig(
            rounds=rounds, batch_size=10, participation=0.25, local_epochs=5,
            eval_every=10, seed=0, lr_schedule=CosineSchedule(total_rounds=rounds, floor=0.2),
        )
        sim = FederatedSimulation(bundle.algorithm, model, ds, cfg)
        h = sim.run()
        sim.ctx.load_params(sim.final_params)
        fair = fairness_report(sim.ctx.model, ds)
        reports[method] = (h.final_accuracy, fair)
        print(
            f"{method:8s} global={h.final_accuracy:.3f}  "
            f"worst-client={fair['worst']:.3f}  gini={fair['gini']:.3f}  "
            f"spread={fair['spread']:.3f}"
        )

    print()
    print(ascii_barchart(
        {f"{m} worst-client": rep[1]["worst"] for m, rep in reports.items()},
        title="worst-served client accuracy",
    ))

    print()
    print("=" * 64)
    print("2. communication budget (300-round deployment, float32 wire format)")
    print("=" * 64)
    model = make_mlp(32, 10, seed=0)
    he_rep = aggregate_class_distribution(
        ds.client_counts, scheme="bfv", seed=0,
        bfv_params=BFVParams(n=1024, t=1 << 20, q_bits=50),
    )
    cm = CommunicationModel(
        num_params=model.num_params, clients_per_round=5, bytes_per_param=4
    )
    table = cm.compare(
        ["fedavg", "fedcm", "fedwcm", "fedwcm-he", "scaffold"],
        rounds=300,
        num_classes=10,
        total_clients=20,
        he_ciphertext_bytes=he_rep.ciphertext_bytes,
    )
    for method, cost in table.items():
        print(
            f"{method:10s} per-round={cost['per_round']/1024:8.1f} KiB   "
            f"one-time={cost['one_time']/1024:8.1f} KiB   "
            f"total={cost['total']/1e6:6.2f} MB"
        )
    print(
        f"\nHE gathering adds a one-time {he_rep.ciphertext_bytes * 20 / 1024:.0f} KiB "
        f"upload (~{he_rep.encrypt_seconds_per_client * 1e3:.0f} ms/client) — "
        "negligible next to 300 rounds of model traffic."
    )


if __name__ == "__main__":
    main()
