"""Analysis substrate: neuron concentration, neural/minority collapse,
per-label accuracy (paper Figures 4, 8, 13-17)."""

from repro.analysis.concentration import (
    neuron_concentration,
    capture_relu_activations,
    layer_concentrations,
    ConcentrationTracker,
)
from repro.analysis.collapse import (
    within_between_ratio,
    classifier_angles,
    minority_collapse_index,
    feature_class_means,
)
from repro.analysis.perclass import per_label_accuracy, head_tail_accuracy, PerClassTracker
from repro.analysis.fairness import per_client_accuracy, fairness_report, gini_coefficient

__all__ = [
    "neuron_concentration",
    "capture_relu_activations",
    "layer_concentrations",
    "ConcentrationTracker",
    "within_between_ratio",
    "classifier_angles",
    "minority_collapse_index",
    "feature_class_means",
    "per_label_accuracy",
    "head_tail_accuracy",
    "PerClassTracker",
    "per_client_accuracy",
    "fairness_report",
    "gini_coefficient",
]
