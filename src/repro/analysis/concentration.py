"""Neuron concentration analysis (paper Figure 4 and appendix B).

The paper tracks how concentrated each neuron's activations are on specific
classes: under balanced data, concentration evolves smoothly (neural
collapse); under long-tailed data with momentum, concentration spikes as
majority-class neurons occupy the representational space of others
("minority collapse").

Definition used here (the paper gives the concept, not a formula): for a
probe set with labels, let ``a_c(j)`` be the mean activation of neuron ``j``
on class ``c`` (post-ReLU, hence nonnegative).  Normalising over classes
gives a distribution ``p_c(j)``; the neuron's concentration is

    conc(j) = (max_c p_c(j) - 1/C) / (1 - 1/C)   in [0, 1]

(0 = class-agnostic neuron, 1 = fires for a single class).  Layer
concentration averages over neurons; the network-level series averages over
layers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.container import BasicBlock, Sequential
from repro.nn.layers import ReLU

__all__ = [
    "neuron_concentration",
    "capture_relu_activations",
    "layer_concentrations",
    "ConcentrationTracker",
]


def neuron_concentration(activations: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """Mean concentration of a layer's neurons (see module docstring).

    Args:
        activations: (n, units) nonnegative activation matrix (conv maps are
            averaged over spatial positions by the caller).
        labels: (n,) integer labels of the probe samples.
        num_classes: number of classes C.
    """
    acts = np.asarray(activations, dtype=np.float64)
    if acts.ndim != 2:
        raise ValueError(f"activations must be 2-D, got shape {acts.shape}")
    labels = np.asarray(labels)
    c = num_classes
    means = np.zeros((c, acts.shape[1]))
    for cls in range(c):
        mask = labels == cls
        if mask.any():
            means[cls] = acts[mask].mean(axis=0)
    total = means.sum(axis=0)
    alive = total > 1e-12
    if not alive.any():
        return 0.0
    p = means[:, alive] / total[alive]
    conc = (p.max(axis=0) - 1.0 / c) / (1.0 - 1.0 / c)
    return float(conc.mean())


def capture_relu_activations(model: Sequential, x: np.ndarray) -> list[np.ndarray]:
    """Forward ``x`` and collect each ReLU output (conv maps spatially pooled).

    Residual blocks contribute their two internal ReLU outputs.
    """
    outs: list[np.ndarray] = []

    def record(a: np.ndarray) -> None:
        if a.ndim == 4:
            outs.append(a.mean(axis=(2, 3)))
        else:
            outs.append(a)

    h = x
    for m in model.children_:
        if isinstance(m, BasicBlock):
            skip = h if m.project is None else m.project.forward(h, train=False)
            t = m.conv1.forward(h, train=False)
            t = m.norm1.forward(t, train=False)
            t = m.relu1.forward(t, train=False)
            record(t)
            t = m.conv2.forward(t, train=False)
            t = m.norm2.forward(t, train=False)
            h = m.relu2.forward(t + skip, train=False)
            record(h)
        else:
            h = m.forward(h, train=False)
            if isinstance(m, ReLU):
                record(h)
    return outs


def layer_concentrations(
    model: Sequential, x: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Concentration of every ReLU layer on a probe set."""
    acts = capture_relu_activations(model, x)
    return np.array(
        [neuron_concentration(a, labels, num_classes) for a in acts], dtype=np.float64
    )


class ConcentrationTracker:
    """Metric hook recording per-layer neuron concentration each evaluation.

    Use as a ``metric_hooks`` entry of
    :class:`repro.simulation.FederatedSimulation`; results accumulate in
    ``self.rounds`` / ``self.per_layer`` (list of arrays) and each round's
    mean is stored into the history record's extras under
    ``"neuron_concentration"``.
    """

    def __init__(
        self, probe_x: np.ndarray, probe_y: np.ndarray, num_classes: int, max_samples: int = 256
    ) -> None:
        self.x = probe_x[:max_samples]
        self.y = probe_y[:max_samples]
        self.c = num_classes
        self.rounds: list[int] = []
        self.per_layer: list[np.ndarray] = []

    def __call__(self, ctx, round_idx: int, x_flat: np.ndarray, extras: dict) -> None:
        ctx.load_params(x_flat)
        concs = layer_concentrations(ctx.model, self.x, self.y, self.c)
        self.rounds.append(round_idx)
        self.per_layer.append(concs)
        extras["neuron_concentration"] = float(concs.mean())

    @property
    def mean_series(self) -> np.ndarray:
        return np.array([c.mean() for c in self.per_layer])
