"""Neural-collapse / minority-collapse statistics (paper appendix B).

Fang et al. 2021 show that balanced training drives the penultimate features
and classifier rows toward a simplex equiangular tight frame (ETF); under
imbalance, minority classifier rows collapse toward each other ("minority
collapse").  These metrics quantify both effects:

* ``within_between_ratio`` — within-class feature variance over between-class
  variance (decreases toward 0 under neural collapse, "NC1").
* ``classifier_angles`` — pairwise cosine matrix of classifier rows; under an
  ETF all off-diagonal cosines equal -1/(C-1); under minority collapse the
  tail-tail cosines rise toward +1.
* ``minority_collapse_index`` — mean cosine among the tail half's classifier
  rows minus the ETF target (0 = healthy, ~1+1/(C-1) = fully collapsed).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "within_between_ratio",
    "classifier_angles",
    "minority_collapse_index",
    "feature_class_means",
]


def feature_class_means(
    features: np.ndarray, labels: np.ndarray, num_classes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-class feature means and the global mean.

    Returns:
        ``(class_means, global_mean)``; absent classes get the global mean
        (contributing zero between-class scatter).
    """
    f = np.asarray(features, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {f.shape}")
    mu_g = f.mean(axis=0)
    means = np.tile(mu_g, (num_classes, 1))
    for c in range(num_classes):
        mask = labels == c
        if mask.any():
            means[c] = f[mask].mean(axis=0)
    return means, mu_g


def within_between_ratio(features: np.ndarray, labels: np.ndarray, num_classes: int) -> float:
    """NC1 statistic: tr(Sigma_W) / tr(Sigma_B)."""
    f = np.asarray(features, dtype=np.float64)
    means, mu_g = feature_class_means(f, labels, num_classes)
    sw = 0.0
    sb = 0.0
    n = f.shape[0]
    for c in range(num_classes):
        mask = labels == c
        if not mask.any():
            continue
        diff = f[mask] - means[c]
        sw += float((diff**2).sum())
        nc = int(mask.sum())
        sb += nc * float(((means[c] - mu_g) ** 2).sum())
    if sb <= 1e-12:
        return float("inf")
    return (sw / n) / (sb / n)


def classifier_angles(classifier_rows: np.ndarray) -> np.ndarray:
    """Pairwise cosine matrix of classifier weight rows (C, d)."""
    w = np.asarray(classifier_rows, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError(f"classifier_rows must be 2-D, got shape {w.shape}")
    norms = np.linalg.norm(w, axis=1, keepdims=True)
    wn = w / np.maximum(norms, 1e-12)
    return wn @ wn.T


def minority_collapse_index(classifier_rows: np.ndarray, tail_classes: np.ndarray) -> float:
    """Mean pairwise cosine among tail classifier rows, relative to the ETF.

    Under a healthy simplex ETF the expected cosine is -1/(C-1); the index is
    the excess above that target, so 0 means no collapse and values near
    ``1 + 1/(C-1)`` mean the tail rows point the same way (full collapse).
    """
    w = np.asarray(classifier_rows, dtype=np.float64)
    tail = np.asarray(tail_classes, dtype=np.int64)
    if tail.size < 2:
        raise ValueError("need at least two tail classes")
    cos = classifier_angles(w)
    sub = cos[np.ix_(tail, tail)]
    iu = np.triu_indices(tail.size, k=1)
    mean_cos = float(sub[iu].mean())
    etf_target = -1.0 / (w.shape[0] - 1)
    return mean_cos - etf_target
