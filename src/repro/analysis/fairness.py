"""Cross-client fairness metrics.

Long-tailed FL papers increasingly report not just global accuracy but its
*distribution over clients* — a method that sacrifices tail-holding clients
can still look good on average.  These metrics evaluate the global model on
each client's local data distribution.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.nn.train import evaluate

__all__ = ["per_client_accuracy", "fairness_report", "gini_coefficient"]


def per_client_accuracy(model: Module, dataset, batch_size: int = 256) -> np.ndarray:
    """Global-model accuracy on each client's local training data."""
    out = np.empty(dataset.num_clients)
    for k in range(dataset.num_clients):
        x, y = dataset.client_data(k)
        out[k] = evaluate(model, x, y, batch_size=batch_size)["accuracy"] if len(y) else np.nan
    return out


def gini_coefficient(values: np.ndarray) -> float:
    """Gini inequality index of nonnegative values (0 = perfectly equal)."""
    v = np.asarray(values, dtype=np.float64)
    v = v[~np.isnan(v)]
    if v.size == 0:
        return float("nan")
    if np.any(v < 0):
        raise ValueError("gini_coefficient requires nonnegative values")
    total = v.sum()
    if total == 0:
        return 0.0
    v = np.sort(v)
    n = v.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * v).sum() / (n * total)) - (n + 1.0) / n)


def fairness_report(model: Module, dataset) -> dict[str, float]:
    """Summary of the cross-client accuracy distribution.

    Returns:
        dict with ``mean``, ``std``, ``worst`` (minimum client accuracy),
        ``best``, ``gini`` and ``spread`` (best - worst).
    """
    acc = per_client_accuracy(model, dataset)
    finite = acc[~np.isnan(acc)]
    if finite.size == 0:
        nan = float("nan")
        return {"mean": nan, "std": nan, "worst": nan, "best": nan, "gini": nan, "spread": nan}
    return {
        "mean": float(finite.mean()),
        "std": float(finite.std()),
        "worst": float(finite.min()),
        "best": float(finite.max()),
        "gini": gini_coefficient(finite),
        "spread": float(finite.max() - finite.min()),
    }
