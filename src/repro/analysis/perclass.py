"""Per-label accuracy utilities (paper Figure 8)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import per_class_accuracy
from repro.nn.module import Module

__all__ = ["per_label_accuracy", "head_tail_accuracy", "PerClassTracker"]


def per_label_accuracy(
    model: Module, x: np.ndarray, y: np.ndarray, num_classes: int, batch: int = 256
) -> np.ndarray:
    """Per-class top-1 accuracy of a model on a labelled set."""
    logits = np.concatenate(
        [model.forward(x[lo : lo + batch], train=False) for lo in range(0, len(x), batch)]
    )
    return per_class_accuracy(logits, y, num_classes)


def head_tail_accuracy(
    per_class: np.ndarray, class_counts: np.ndarray, head_fraction: float = 0.5
) -> dict[str, float]:
    """Split per-class accuracies into head/tail groups by training frequency.

    Args:
        per_class: per-class accuracy vector (NaN allowed for absent classes).
        class_counts: global training counts per class.
        head_fraction: fraction of classes (by rank) treated as head.

    Returns:
        dict with ``head`` and ``tail`` mean accuracies.
    """
    counts = np.asarray(class_counts, dtype=np.float64)
    acc = np.asarray(per_class, dtype=np.float64)
    if counts.shape != acc.shape:
        raise ValueError("per_class and class_counts must have equal length")
    order = np.argsort(-counts)
    n_head = max(1, int(round(head_fraction * counts.size)))
    head_idx, tail_idx = order[:n_head], order[n_head:]

    def safe_mean(v: np.ndarray) -> float:
        v = v[~np.isnan(v)]
        return float(v.mean()) if v.size else float("nan")

    return {"head": safe_mean(acc[head_idx]), "tail": safe_mean(acc[tail_idx])}


class PerClassTracker:
    """Metric hook recording the per-class accuracy trajectory."""

    def __init__(self, num_classes: int) -> None:
        self.c = num_classes
        self.rounds: list[int] = []
        self.series: list[np.ndarray] = []

    def __call__(self, ctx, round_idx: int, x_flat: np.ndarray, extras: dict) -> None:
        ctx.load_params(x_flat)
        acc = per_label_accuracy(
            ctx.model, ctx.dataset.x_test, ctx.dataset.y_test, self.c
        )
        self.rounds.append(round_idx)
        self.series.append(acc)
        extras["per_class_accuracy"] = acc
