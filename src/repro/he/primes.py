"""Prime generation for the homomorphic-encryption substrate.

Pure-Python Miller–Rabin plus helpers to find NTT-friendly primes
(q ≡ 1 mod 2n) used by the BFV scheme's negacyclic number-theoretic
transform.
"""

from __future__ import annotations

import random

__all__ = ["is_probable_prime", "random_prime", "find_ntt_prime"]

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test (error probability <= 4^-rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Random prime with exactly ``bits`` bits."""
    if bits < 4:
        raise ValueError(f"bits must be >= 4, got {bits}")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate):
            return candidate


def find_ntt_prime(bits: int, n: int) -> int:
    """Smallest prime >= 2^(bits-1) with q ≡ 1 (mod 2n).

    Such primes admit a primitive 2n-th root of unity, enabling the
    negacyclic NTT over Z_q[x]/(x^n + 1).
    """
    if n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    m = 2 * n
    q = (1 << (bits - 1)) + 1
    q += (-(q - 1)) % m  # align q ≡ 1 (mod 2n)
    while True:
        if is_probable_prime(q):
            return q
        q += m


def primitive_root_of_unity(q: int, order: int, seed: int = 0) -> int:
    """A primitive ``order``-th root of unity modulo prime ``q``."""
    if (q - 1) % order:
        raise ValueError(f"order {order} does not divide q-1")
    rng = random.Random(seed)
    exponent = (q - 1) // order
    while True:
        g = rng.randrange(2, q - 1)
        w = pow(g, exponent, q)
        if pow(w, order // 2, q) != 1:  # primitive iff w^(order/2) == -1
            return w
