"""Toy BFV (Brakerski/Fan–Vercauteren) scheme over the negacyclic ring.

The paper's appendix C uses the BFV scheme (via TenSEAL) to aggregate
integer class-distribution vectors under encryption.  This module implements
the scheme from scratch:

* ring R_q = Z_q[x] / (x^n + 1), q an NTT-friendly prime;
* plaintext space R_t with coefficient packing (one vector slot per
  coefficient — enough for exact additive aggregation of count vectors);
* encryption ct = (c0, c1) = (b*u + e1 + Δ·m, a*u + e2) with Δ = floor(q/t);
* additive homomorphism by coefficient-wise ciphertext addition;
* exact decryption while the accumulated noise stays below Δ/2.

Polynomial multiplication uses an exact negacyclic number-theoretic
transform (O(n log n), pure Python integers — no overflow).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.he.primes import find_ntt_prime, primitive_root_of_unity

__all__ = ["BFVParams", "BFVPublicKey", "BFVSecretKey", "BFVCiphertext", "bfv_keygen"]


# --------------------------------------------------------------------------
# negacyclic NTT over Z_q
# --------------------------------------------------------------------------
class _NegacyclicNTT:
    """Exact negacyclic convolution via the 2n-th root-of-unity trick."""

    def __init__(self, n: int, q: int) -> None:
        if n & (n - 1):
            raise ValueError(f"n must be a power of two, got {n}")
        if (q - 1) % (2 * n):
            raise ValueError("q must satisfy q ≡ 1 (mod 2n)")
        self.n, self.q = n, q
        psi = primitive_root_of_unity(q, 2 * n)  # psi^n = -1
        self.psi = [pow(psi, i, q) for i in range(n)]
        psi_inv = pow(psi, -1, q)
        self.psi_inv = [pow(psi_inv, i, q) for i in range(n)]
        self.w = pow(psi, 2, q)
        self.w_inv = pow(self.w, -1, q)
        self.n_inv = pow(n, -1, q)

    def _ntt(self, a: list[int], root: int) -> list[int]:
        """Iterative Cooley–Tukey NTT (bit-reversal ordering)."""
        n, q = self.n, self.q
        a = a[:]
        # bit reversal permutation
        j = 0
        for i in range(1, n):
            bit = n >> 1
            while j & bit:
                j ^= bit
                bit >>= 1
            j |= bit
            if i < j:
                a[i], a[j] = a[j], a[i]
        length = 2
        while length <= n:
            w_len = pow(root, n // length, q)
            for start in range(0, n, length):
                w = 1
                half = length // 2
                for k in range(start, start + half):
                    u, v = a[k], a[k + half] * w % q
                    a[k] = (u + v) % q
                    a[k + half] = (u - v) % q
                    w = w * w_len % q
            length <<= 1
        return a

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Negacyclic product a(x) * b(x) mod (x^n + 1, q)."""
        n, q = self.n, self.q
        at = self._ntt([x * p % q for x, p in zip(a, self.psi)], self.w)
        bt = self._ntt([x * p % q for x, p in zip(b, self.psi)], self.w)
        ct = [x * y % q for x, y in zip(at, bt)]
        c = self._ntt(ct, self.w_inv)
        return [x * self.n_inv % q * pinv % q for x, pinv in zip(c, self.psi_inv)]


# --------------------------------------------------------------------------
# scheme
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class BFVParams:
    """Ring and modulus parameters.

    Defaults give exact aggregation of >=100-client count vectors with
    comfortably sub-Δ noise: n = 1024, t = 2^20, q ≈ 2^50.
    """

    n: int = 1024
    t: int = 1 << 20
    q_bits: int = 50
    noise_bound: int = 4  # uniform ternary-ish noise in [-B, B]

    def __post_init__(self) -> None:
        if self.n & (self.n - 1):
            raise ValueError("n must be a power of two")
        if self.t < 2 or self.q_bits < 20 or self.noise_bound < 1:
            raise ValueError("invalid BFV parameters")


class BFVSecretKey:
    def __init__(self, s: list[int]):
        self.s = s


class BFVPublicKey:
    """Public key (b, a) = (-(a*s + e), a) plus scheme parameters."""

    def __init__(self, params: BFVParams, q: int, b: list[int], a: list[int], ntt: _NegacyclicNTT):
        self.params = params
        self.q = q
        self.b = b
        self.a = a
        self._ntt = ntt
        self.delta = q // params.t

    # -- helpers ----------------------------------------------------------
    def _small_poly(self, rng: random.Random) -> list[int]:
        bound = self.params.noise_bound
        return [rng.randint(-bound, bound) % self.q for _ in range(self.params.n)]

    def _ternary_poly(self, rng: random.Random) -> list[int]:
        return [rng.choice((-1, 0, 1)) % self.q for _ in range(self.params.n)]

    def encrypt(self, message: list[int], rng: random.Random) -> "BFVCiphertext":
        """Encrypt an integer vector packed into polynomial coefficients."""
        n, t, q = self.params.n, self.params.t, self.q
        if len(message) > n:
            raise ValueError(f"message length {len(message)} exceeds ring degree {n}")
        m = [int(v) % t for v in message] + [0] * (n - len(message))
        u = self._ternary_poly(rng)
        e1 = self._small_poly(rng)
        e2 = self._small_poly(rng)
        c0 = self._ntt.multiply(self.b, u)
        c0 = [(x + e + self.delta * mm) % q for x, e, mm in zip(c0, e1, m)]
        c1 = self._ntt.multiply(self.a, u)
        c1 = [(x + e) % q for x, e in zip(c1, e2)]
        return BFVCiphertext(self, c0, c1)

    def decrypt(
        self, ct: "BFVCiphertext", sk: BFVSecretKey, length: int | None = None
    ) -> list[int]:
        """Exact decryption (valid while noise < Δ/2)."""
        q, t = self.q, self.params.t
        inner = self._ntt.multiply(ct.c1, sk.s)
        raw = [(c0 + x) % q for c0, x in zip(ct.c0, inner)]
        out = [((v * t + q // 2) // q) % t for v in raw]
        return out[: length if length is not None else self.params.n]

    def ciphertext_bytes(self) -> int:
        """Serialized ciphertext size: 2 polynomials of n coefficients mod q."""
        per_coef = (self.q.bit_length() + 7) // 8
        return 2 * self.params.n * per_coef


class BFVCiphertext:
    """A (c0, c1) pair supporting additive homomorphism."""

    def __init__(self, pk: BFVPublicKey, c0: list[int], c1: list[int]):
        self.pk = pk
        self.c0 = c0
        self.c1 = c1

    def __add__(self, other: "BFVCiphertext") -> "BFVCiphertext":
        if other.pk is not self.pk:
            raise ValueError("ciphertexts under different keys cannot be added")
        q = self.pk.q
        return BFVCiphertext(
            self.pk,
            [(x + y) % q for x, y in zip(self.c0, other.c0)],
            [(x + y) % q for x, y in zip(self.c1, other.c1)],
        )

    def add_plain(self, values: list[int]) -> "BFVCiphertext":
        """Add a plaintext vector (scaled by Δ) without encryption."""
        q, t, d = self.pk.q, self.pk.params.t, self.pk.delta
        m = [int(v) % t for v in values] + [0] * (self.pk.params.n - len(values))
        c0 = [(x + d * mm) % q for x, mm in zip(self.c0, m)]
        return BFVCiphertext(self.pk, c0, self.c1[:])

    def serialized_bytes(self) -> int:
        return self.pk.ciphertext_bytes()


def bfv_keygen(params: BFVParams | None = None, seed: int = 0) -> tuple[BFVPublicKey, BFVSecretKey]:
    """Generate a BFV key pair (deterministic given ``seed``)."""
    params = params or BFVParams()
    q = find_ntt_prime(params.q_bits, params.n)
    ntt = _NegacyclicNTT(params.n, q)
    rng = random.Random(seed)
    s = [rng.choice((-1, 0, 1)) % q for _ in range(params.n)]
    a = [rng.randrange(q) for _ in range(params.n)]
    e = [rng.randint(-params.noise_bound, params.noise_bound) % q for _ in range(params.n)]
    as_prod = ntt.multiply(a, s)
    b = [(-(x + ee)) % q for x, ee in zip(as_prod, e)]
    pk = BFVPublicKey(params, q, b, a, ntt)
    return pk, BFVSecretKey(s)
