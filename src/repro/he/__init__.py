"""Homomorphic-encryption substrate (paper section 5.5 and appendix C).

From-scratch Paillier and toy-BFV additive HE plus the BatchCrypt-style
class-distribution aggregation protocol.  Replaces the paper's TenSEAL
dependency (see DESIGN.md section 1).
"""

from repro.he.primes import is_probable_prime, random_prime, find_ntt_prime
from repro.he.paillier import PaillierPublicKey, PaillierPrivateKey, paillier_keygen
from repro.he.bfv import BFVParams, BFVPublicKey, BFVSecretKey, BFVCiphertext, bfv_keygen
from repro.he.protocol import AggregationReport, aggregate_class_distribution, plaintext_bytes

__all__ = [
    "is_probable_prime",
    "random_prime",
    "find_ntt_prime",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "paillier_keygen",
    "BFVParams",
    "BFVPublicKey",
    "BFVSecretKey",
    "BFVCiphertext",
    "bfv_keygen",
    "AggregationReport",
    "aggregate_class_distribution",
    "plaintext_bytes",
]
