"""Encrypted global class-distribution aggregation (paper section 5.5 / appendix C).

The BatchCrypt-style protocol under a semi-honest server:

1. **Key generation** — a randomly chosen subset of clients generates key
   pairs and distributes public keys.
2. **Encryption & upload** — every client encrypts its local class-count
   vector under the received public key.
3. **Aggregation** — the server sums the ciphertexts homomorphically without
   decrypting.
4. **Decryption & reconstruction** — the key generator decrypts the aggregate
   and returns the global class distribution to the server.

Two backends: ``"bfv"`` (the paper's scheme; packs the whole vector into one
ciphertext) and ``"paillier"`` (one ciphertext per class).  The run record
includes the measured sizes and timings that Table 6 reports.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

import numpy as np

from repro.he.bfv import BFVParams, bfv_keygen
from repro.he.paillier import paillier_keygen

__all__ = ["AggregationReport", "aggregate_class_distribution", "plaintext_bytes"]


def plaintext_bytes(num_classes: int, count_bits: int = 32) -> int:
    """Serialized plaintext size of one class-count vector.

    Mirrors the paper's Table 6 accounting: a small fixed header plus
    ``count_bits`` per class entry (the paper's plaintext grows linearly,
    136 B at 10 classes -> 856 B at 100 classes, i.e. 8 B/class + 56 B).
    """
    if num_classes < 1:
        raise ValueError("num_classes must be >= 1")
    return 56 + num_classes * (count_bits // 4)


@dataclass
class AggregationReport:
    """Outcome of one encrypted aggregation run."""

    scheme: str
    num_clients: int
    num_classes: int
    global_counts: np.ndarray
    plaintext_bytes: int
    ciphertext_bytes: int
    encrypt_seconds_per_client: float
    aggregate_seconds: float
    decrypt_seconds: float

    @property
    def total_upload_bytes(self) -> int:
        return self.ciphertext_bytes * self.num_clients


def aggregate_class_distribution(
    client_counts: np.ndarray,
    scheme: str = "bfv",
    seed: int = 0,
    bfv_params: BFVParams | None = None,
    paillier_bits: int = 256,
) -> AggregationReport:
    """Run the full protocol on a (K, C) client class-count matrix.

    Returns an :class:`AggregationReport`; ``global_counts`` is verified by
    the caller (tests assert it equals the plaintext column sum).
    """
    counts = np.asarray(client_counts, dtype=np.int64)
    if counts.ndim != 2:
        raise ValueError(f"client_counts must be (K, C), got shape {counts.shape}")
    if np.any(counts < 0):
        raise ValueError("client_counts must be nonnegative")
    k, c = counts.shape
    rng = random.Random(seed)

    if scheme == "bfv":
        params = bfv_params or BFVParams()
        if c > params.n:
            raise ValueError(f"{c} classes exceed BFV ring degree {params.n}")
        pk, sk = bfv_keygen(params, seed=seed)

        t0 = time.perf_counter()
        cts = [pk.encrypt(list(map(int, row)), rng) for row in counts]
        enc_time = (time.perf_counter() - t0) / k

        t0 = time.perf_counter()
        agg = cts[0]
        for ct in cts[1:]:
            agg = agg + ct
        agg_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        decrypted = np.array(pk.decrypt(agg, sk, length=c), dtype=np.int64)
        dec_time = time.perf_counter() - t0
        ct_bytes = pk.ciphertext_bytes()

    elif scheme == "paillier":
        pk, sk = paillier_keygen(bits=paillier_bits, seed=seed)

        t0 = time.perf_counter()
        cts = [[pk.encrypt(int(v), rng) for v in row] for row in counts]
        enc_time = (time.perf_counter() - t0) / k

        t0 = time.perf_counter()
        agg_cols = list(cts[0])
        for row in cts[1:]:
            for j in range(c):
                agg_cols[j] = pk.add(agg_cols[j], row[j])
        agg_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        decrypted = np.array([sk.decrypt(ct) for ct in agg_cols], dtype=np.int64)
        dec_time = time.perf_counter() - t0
        ct_bytes = pk.ciphertext_bytes() * c  # one ciphertext per class

    else:
        raise ValueError(f"scheme must be 'bfv' or 'paillier', got {scheme!r}")

    return AggregationReport(
        scheme=scheme,
        num_clients=k,
        num_classes=c,
        global_counts=decrypted,
        plaintext_bytes=plaintext_bytes(c),
        ciphertext_bytes=ct_bytes,
        encrypt_seconds_per_client=enc_time,
        aggregate_seconds=agg_time,
        decrypt_seconds=dec_time,
    )
