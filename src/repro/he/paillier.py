"""Paillier additively homomorphic encryption (from scratch).

Used as the simple/reference additive-HE backend for the FedWCM
class-distribution aggregation protocol: ``E(m1) * E(m2) mod n^2 =
E(m1 + m2)``.  The BFV backend (:mod:`repro.he.bfv`) is the
paper-matching scheme (packed integer vectors); Paillier encrypts one
integer per ciphertext.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import gcd

from repro.he.primes import random_prime

__all__ = ["PaillierPublicKey", "PaillierPrivateKey", "paillier_keygen"]


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key (n, g) with the standard g = n + 1 choice."""

    n: int

    @property
    def n_sq(self) -> int:
        return self.n * self.n

    def encrypt(self, m: int, rng: random.Random) -> int:
        """Encrypt integer ``m`` in [0, n)."""
        if not 0 <= m < self.n:
            raise ValueError(f"plaintext must lie in [0, n), got {m}")
        n, n2 = self.n, self.n_sq
        while True:
            r = rng.randrange(1, n)
            if gcd(r, n) == 1:
                break
        # (1 + n)^m = 1 + m*n (mod n^2)
        return ((1 + m * n) % n2) * pow(r, n, n2) % n2

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: E(m1) (+) E(m2) = E(m1 + m2 mod n)."""
        return (c1 * c2) % self.n_sq

    def add_plain(self, c: int, k: int) -> int:
        """Homomorphic plaintext addition: E(m) (+) k = E(m + k mod n)."""
        return (c * ((1 + (k % self.n) * self.n) % self.n_sq)) % self.n_sq

    def mul_plain(self, c: int, k: int) -> int:
        """Homomorphic scalar multiplication: E(m) (*) k = E(k * m mod n)."""
        return pow(c, k % self.n, self.n_sq)

    def ciphertext_bytes(self) -> int:
        """Serialized size of one ciphertext (an element of Z_{n^2})."""
        return (self.n_sq.bit_length() + 7) // 8


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key (lambda, mu) for the matching public key."""

    public: PaillierPublicKey
    lam: int
    mu: int

    def decrypt(self, c: int) -> int:
        n, n2 = self.public.n, self.public.n_sq
        u = pow(c, self.lam, n2)
        l_val = (u - 1) // n
        return (l_val * self.mu) % n


def paillier_keygen(bits: int = 512, seed: int = 0) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier key pair with an n of roughly ``bits`` bits.

    Deterministic given ``seed`` (tests and benchmarks are reproducible).
    """
    if bits < 32:
        raise ValueError(f"bits must be >= 32, got {bits}")
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(half, rng)
        if p != q:
            break
    n = p * q
    lam = (p - 1) * (q - 1)  # Carmichael simplification for p, q of equal size
    public = PaillierPublicKey(n=n)
    # mu = lam^{-1} mod n for the g = n + 1 variant
    mu = pow(lam, -1, n)
    return public, PaillierPrivateKey(public=public, lam=lam, mu=mu)
