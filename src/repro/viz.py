"""Dependency-free ASCII visualisation for run histories.

No matplotlib in this environment, so the examples and benchmark reports
render learning curves and bar charts as terminal text.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_lineplot", "ascii_barchart", "history_plot"]


def ascii_lineplot(
    series: dict[str, tuple[list, list]],
    width: int = 68,
    height: int = 16,
    title: str = "",
    y_label: str = "acc",
    x_label: str = "round",
) -> str:
    """Render multiple (x, y) series as an ASCII line plot.

    Each series is assigned a marker character; points are nearest-cell
    rasterised onto a ``height`` x ``width`` grid.
    """
    if not series:
        return title
    markers = "ox+*#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    ys_all = ys_all[np.isfinite(ys_all)]
    if xs_all.size == 0 or ys_all.size == 0:
        return title
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (name, (x, y)) in enumerate(series.items()):
        m = markers[i % len(markers)]
        legend.append(f"{m}={name}")
        for xv, yv in zip(x, y):
            if not np.isfinite(yv):
                continue
            col = int(round((float(xv) - x_lo) / x_span * (width - 1)))
            row = height - 1 - int(round((float(yv) - y_lo) / y_span * (height - 1)))
            grid[row][col] = m

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        y_val = y_hi - r * y_span / (height - 1)
        lines.append(f"{y_val:7.3f} |" + "".join(row))
    lines.append(" " * 8 + "+" + "-" * width)
    axis = f"{y_label} vs {x_label}"
    lines.append(" " * 9 + f"{x_lo:<10.0f}{axis}{x_hi:>{max(width - 13 - len(axis), 1)}.0f}")
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)


def ascii_barchart(
    values: dict[str, float], width: int = 50, title: str = "", fmt: str = "{:.3f}"
) -> str:
    """Horizontal bar chart of name -> value."""
    if not values:
        return title
    finite = [v for v in values.values() if np.isfinite(v)]
    vmax = max(finite) if finite else 1.0
    vmax = vmax if vmax > 0 else 1.0
    name_w = max(len(n) for n in values)
    lines = [title] if title else []
    for name, v in values.items():
        if not np.isfinite(v):
            bar, label = "", "nan"
        else:
            bar = "#" * max(int(round(v / vmax * width)), 0)
            label = fmt.format(v)
        lines.append(f"{name:<{name_w}} |{bar} {label}")
    return "\n".join(lines)


def history_plot(histories: dict[str, "History"], title: str = "") -> str:  # noqa: F821
    """Plot several :class:`repro.simulation.History` accuracy curves."""
    series = {}
    for name, h in histories.items():
        xs, ys = [], []
        for r in h.records:
            if not np.isnan(r.test_accuracy):
                xs.append(r.round)
                ys.append(r.test_accuracy)
        series[name] = (xs, ys)
    return ascii_lineplot(series, title=title)
