"""One ``build()`` / ``run()`` facade over every engine family.

This is the single place where an :class:`~repro.experiments.ExperimentSpec`
meets the registries: datasets (:data:`repro.data.DATASET_REGISTRY`), models
(:data:`repro.nn.models.MODEL_REGISTRY`), methods
(:func:`repro.algorithms.make_method`), latency models
(:data:`repro.runtime.LATENCY_MODELS`) and cohort samplers
(:data:`repro.runtime.SAMPLERS`).  Every entry point — the CLI, the
benchmark harness, the examples — goes through here, so a new runtime
feature lands in one file instead of being threaded through each caller.

* :func:`build_problem` — dataset + model builder + config (shared plumbing);
* :func:`build` — a ready-to-run engine for the spec's ``runtime.kind``;
* :func:`run` — execute and wrap the outcome in a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.algorithms import AsyncAdapter, make_method, method_is_parallel_safe
from repro.data import load_federated_dataset
from repro.data.registry import FederatedDataset
from repro.experiments.spec import ExperimentSpec
from repro.parallel import (
    ProcessPoolBackend,
    resolve_backend,
    resolve_job_batch,
    resolve_shared_memory,
    resolve_streaming,
)
from repro.nn import build_model, make_linear, make_mlp
from repro.runtime import (
    AsyncFederatedSimulation,
    ConcurrencyController,
    DeadlineController,
    SemiSyncFederatedSimulation,
    TimeAwareSampler,
    make_latency_model,
    make_sampler,
    resolve_fast_path,
)
from repro.simulation import FLConfig, FederatedSimulation, History

__all__ = [
    "RunResult",
    "MODEL_ALIASES",
    "build",
    "build_problem",
    "replica_builders",
    "resolve_model_alias",
    "run",
    "resume_run",
]

# shorthand arches accepted by the CLI and benchmark harness: "conv" is the
# narrow ResNet backbone the paper-scale benches use
MODEL_ALIASES: dict[str, tuple[str, dict]] = {
    "conv": ("resnet-lite-18", {"width": 4}),
}


def resolve_model_alias(name: str) -> tuple[str, dict]:
    """Map an arch shorthand to ``(registry_name, extra_kwargs)``."""
    arch, kwargs = MODEL_ALIASES.get(name, (name, {}))
    return arch, dict(kwargs)


@dataclass
class RunResult:
    """Outcome of one :func:`run`: the history plus engine-level telemetry."""

    spec: ExperimentSpec
    history: History
    final_params: np.ndarray | None = None
    total_virtual_time: float = 0.0
    engine: object = field(default=None, repr=False)
    #: hot-path profile summary (``HotPathProfiler.as_dict()``) for recorded
    #: runs — the same dict journaled as the run's ``profile`` record
    profile: dict | None = None

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy

    def time_to_accuracy(self, threshold: float) -> float | None:
        return self.history.time_to_accuracy(threshold)


def build_problem(
    spec: ExperimentSpec,
) -> tuple[FederatedDataset, Callable, FLConfig]:
    """Resolve the spec's data + model registries.

    Returns ``(dataset, model_builder, config)``; ``model_builder`` is a
    zero-arg factory (the async engine ships it to worker processes).
    """
    data, model, cfg = spec.data, spec.model, spec.config
    ds = load_federated_dataset(
        data.dataset,
        imbalance_factor=data.imbalance_factor,
        beta=data.beta,
        num_clients=data.clients,
        seed=cfg.seed,
        partition=data.partition,
        scale=data.scale,
    )
    if model.arch in ("mlp", "linear"):
        # vector-input arches train on the dataset's flat view
        ds = ds.flat_view()
        factory = make_mlp if model.arch == "mlp" else make_linear
        dim, classes, seed, kw = ds.x_train.shape[1], ds.num_classes, cfg.seed, dict(model.kwargs)

        def model_builder():
            return factory(dim, classes, seed=seed, **kw)
    else:
        arch = model.arch
        shape, classes, seed, kw = ds.info.shape, ds.num_classes, cfg.seed, dict(model.kwargs)
        if len(shape) < 3:
            raise ValueError(
                f"model arch {arch!r} needs image-shaped data, but dataset "
                f"{data.dataset!r} has shape {shape}; use arch='mlp'"
            )

        def model_builder():
            return build_model(
                arch,
                in_channels=shape[0],
                image_size=shape[1],
                num_classes=classes,
                seed=seed,
                **kw,
            )
    return ds, model_builder, cfg


# async kinds wrap foreign methods in an AsyncAdapter; the rule's own knobs
# may ride in method.kwargs and are routed to the rule, the rest to the method
_ASYNC_RULE_KEYS = {
    "fedasync": ("mixing", "staleness_exponent"),
    "fedbuff": ("buffer_size", "staleness_exponent"),
}


def replica_builders(
    spec: ExperimentSpec,
) -> tuple[Callable, Callable | None, Callable | None]:
    """``(algo_builder, loss_builder, sampler_builder)`` for worker replicas.

    The single source of how an executing algorithm instance is constructed
    for ``spec`` — :func:`build` uses it for the engine's live instance and
    its pool replicas, and :class:`repro.net.worker.WorkerClient` uses it to
    rebuild the *same* replica from a spec shipped over the wire, which is
    what keeps remote execution bit-identical to the serial reference.
    """
    kind = spec.runtime.kind
    mname, mkwargs = spec.method.name, dict(spec.method.kwargs)
    if kind in _ASYNC_RULE_KEYS and mname.lower() != kind:
        rule_kwargs = {
            k: mkwargs.pop(k) for k in _ASYNC_RULE_KEYS[kind] if k in mkwargs
        }
        bundle = make_method(mname, **mkwargs)

        def algo_builder():
            return AsyncAdapter(
                make_method(mname, **mkwargs).algorithm,
                make_method(kind, **rule_kwargs).algorithm,
            )

        return algo_builder, bundle.loss_builder, bundle.sampler_builder

    def algo_builder():
        return make_method(mname, **mkwargs).algorithm

    if kind in _ASYNC_RULE_KEYS:
        # plain fedasync/fedbuff: the engines get no loss/sampler builders
        # (the kinds' own rules declare none), matching build() exactly
        return algo_builder, None, None
    bundle = make_method(mname, **mkwargs)
    return algo_builder, bundle.loss_builder, bundle.sampler_builder


def _build_sampler(spec: ExperimentSpec, timed: bool):
    """Instantiate the cohort sampler, or None for the default uniform draw."""
    rt = spec.runtime
    if rt.sampler.lower() == "uniform":  # kwargs with uniform fail validation
        return None
    sampler = make_sampler(rt.sampler, **rt.sampler_kwargs)
    if isinstance(sampler, TimeAwareSampler) and not timed:
        raise ValueError(
            f"sampler {rt.sampler!r} is time-aware and needs a priced engine; "
            "use runtime.kind='semisync'"
        )
    return sampler


def build(spec: ExperimentSpec):
    """Construct the engine described by ``spec`` (without running it).

    Returns a :class:`~repro.simulation.FederatedSimulation`,
    :class:`~repro.runtime.SemiSyncFederatedSimulation` or
    :class:`~repro.runtime.AsyncFederatedSimulation` depending on
    ``spec.runtime.kind``.
    """
    rt = spec.runtime
    ds, model_builder, cfg = build_problem(spec)
    # spec-driven runs opt into the REPRO_BACKEND environment default
    # ("auto" resolution); direct engine construction does not
    backend_name = resolve_backend(rt.backend, rt.workers, env=True)
    if backend_name != "serial" and not method_is_parallel_safe(spec.method.name):
        # spec validation already rejects an *explicit* non-serial backend
        # for such methods, so reaching here means a blanket REPRO_BACKEND
        # default — quietly keep the only backend that runs them correctly
        backend_name = "serial"
    job_batch = resolve_job_batch(rt.job_batch, env=True)
    shared_memory = resolve_shared_memory(rt.shared_memory, env=True)
    backend: "str | object" = backend_name
    if backend_name == "remote":
        # the remote backend needs run-scoped configuration a bare name
        # cannot carry: the listen address and the spec itself (shipped to
        # workers in the WELCOME handshake so they rebuild replicas).  The
        # instance is engine_owned — engines close it at the end of run()
        from repro.net import RemoteBackend

        backend = RemoteBackend(
            workers=rt.workers, address=rt.backend_address, spec=spec,
            job_batch=job_batch,
        )
    elif backend_name == "process" and (job_batch is not None or shared_memory):
        # transport knobs a bare name cannot carry: build the pool backend
        # here and mark it engine_owned so engines close it (unlinking any
        # shared-memory segments) at the end of run()
        backend = ProcessPoolBackend(
            workers=rt.workers, job_batch=job_batch,
            shared_memory=shared_memory,
        )
        backend.engine_owned = True

    def make_latency():
        # price_comm must reach the engine even under the default latency:
        # materialize the implicit constant model rather than dropping it
        if rt.latency is None and not rt.price_comm:
            return None
        return make_latency_model(
            rt.latency or "constant",
            comm_method="auto" if rt.price_comm else None,
            **rt.latency_kwargs,
        )

    # worker replicas (pool, thread, remote) and the engine's live instance
    # are constructed the same way — replica_builders is the single source
    algo_builder, loss_builder, sampler_builder = replica_builders(spec)

    if rt.kind == "sync":
        return FederatedSimulation(
            algo_builder(),
            model_builder(),
            ds,
            cfg,
            backend=backend,
            workers=rt.workers,
            model_builder=model_builder,
            algo_builder=algo_builder,
            loss_builder=loss_builder,
            sampler_builder=sampler_builder,
            client_sampler=_build_sampler(spec, timed=False),
        )

    if rt.kind == "semisync":
        deadline = rt.deadline
        if rt.adaptive_deadline is not None:
            deadline = DeadlineController(
                target_drop_rate=rt.adaptive_deadline, initial=rt.deadline
            )
        return SemiSyncFederatedSimulation(
            algo_builder(),
            model_builder(),
            ds,
            cfg,
            latency_model=make_latency(),
            deadline=deadline,
            late_weight=rt.late_weight,
            late_policy=rt.late_policy,
            backend=backend,
            workers=rt.workers,
            model_builder=model_builder,
            algo_builder=algo_builder,
            loss_builder=loss_builder,
            sampler_builder=sampler_builder,
            client_sampler=_build_sampler(spec, timed=True),
        )

    controller = None
    if rt.staleness_budget is not None:
        controller = ConcurrencyController(staleness_budget=rt.staleness_budget)
    return AsyncFederatedSimulation(
        algo_builder(),
        model_builder(),
        ds,
        cfg,
        latency_model=make_latency(),
        concurrency=rt.concurrency,
        concurrency_controller=controller,
        max_updates=rt.max_updates,
        backend=backend,
        workers=rt.workers,
        model_builder=model_builder,
        algo_builder=algo_builder,
        sampler=_build_sampler(spec, timed=True),
        buffer_ema=rt.buffer_ema,
        # spec-driven runs opt into the REPRO_STREAMING / REPRO_FAST_PATH
        # environment defaults, mirroring the backend resolution above
        streaming=resolve_streaming(rt.streaming, env=True),
        fast_path=resolve_fast_path(rt.fast_path, env=True),
        loss_builder=loss_builder,
        sampler_builder=sampler_builder,
    )


def run(
    spec: ExperimentSpec,
    verbose: bool = False,
    stop_after_rounds: int | None = None,
) -> RunResult:
    """Build the spec's engine, run it, and package the outcome.

    When ``spec.runtime.record`` is set the run journals itself under
    ``spec.runtime.run_dir`` (the spec is saved there too, so
    :func:`resume_run` can rebuild the engine) and ``stop_after_rounds``
    checkpoints-and-stops at that round boundary.
    """
    engine = build(spec)
    recorder = None
    profiler = None
    if spec.runtime.record:
        import os

        from repro.observe import HotPathProfiler, RunRecorder

        run_dir = spec.runtime.run_dir
        os.makedirs(run_dir, exist_ok=True)
        spec.save(os.path.join(run_dir, "spec.json"))
        recorder = RunRecorder(run_dir)
        # recorded runs profile themselves: the hot-path summary lands in
        # the journal (a "profile" record) and on RunResult.profile
        profiler = HotPathProfiler()
    try:
        history = engine.run(
            verbose=verbose, recorder=recorder, stop_after_rounds=stop_after_rounds,
            profiler=profiler,
        )
    finally:
        if recorder is not None:
            recorder.close()
    return RunResult(
        spec=spec,
        history=history,
        final_params=getattr(engine, "final_params", None),
        total_virtual_time=getattr(engine, "total_virtual_time", 0.0),
        engine=engine,
        profile=profiler.as_dict() if profiler is not None else None,
    )


def resume_run(
    run_dir: str,
    verbose: bool = False,
    stop_after_rounds: int | None = None,
    record: bool = True,
) -> RunResult:
    """Continue a recorded run from its latest round-boundary snapshot.

    Rebuilds the engine from the ``spec.json`` saved alongside the journal,
    restores the core from ``snapshots/round_NNNN.pkl`` and resumes the
    event loop; determinism makes the final history bit-identical to the
    uninterrupted run.  With ``record=True`` (default) the resumed leg
    appends to the same journal.
    """
    import os

    from repro.observe import (
        HotPathProfiler,
        RunRecorder,
        latest_snapshot,
        load_snapshot,
    )

    spec = ExperimentSpec.load(os.path.join(run_dir, "spec.json"))
    snap_path = latest_snapshot(run_dir)
    if snap_path is None:
        raise FileNotFoundError(
            f"no snapshots under {run_dir!r}; was the run recorded "
            "(runtime.record=True)?"
        )
    snap = load_snapshot(snap_path)
    engine = build(spec)
    recorder = RunRecorder(run_dir) if record else None
    profiler = HotPathProfiler() if record else None
    try:
        history = engine.run(
            verbose=verbose,
            recorder=recorder,
            resume=snap,
            stop_after_rounds=stop_after_rounds,
            profiler=profiler,
        )
    finally:
        if recorder is not None:
            recorder.close()
    return RunResult(
        spec=spec,
        history=history,
        final_params=getattr(engine, "final_params", None),
        total_virtual_time=getattr(engine, "total_virtual_time", 0.0),
        engine=engine,
        profile=profiler.as_dict() if profiler is not None else None,
    )
