"""Spec sweeps: one base spec + a grid of dotted-path overrides.

``expand(spec, {"method.name": [...], "data.imbalance_factor": [...]})``
returns the cartesian product as fully validated specs — the declarative
replacement for hand-written benchmark grids (``python -m repro compare`` is
one ``expand`` over ``method.name``).

``run_sweep`` executes the grid — serially, or through any
:class:`~repro.parallel.backend.ExecutionBackend` (each grid point is one
coarse-grained job; every run is a pure function of its spec, so parallel
and serial sweeps produce identical results) — and returns a
:class:`SweepResult`: the per-point :class:`~repro.experiments.RunResult`
list plus dotted-path grouping with mean/std aggregation over
``config.seed`` (the multi-seed bookkeeping that used to live in
``benchmarks/_harness.py``).  ``python -m repro sweep`` drives it from the
command line.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.experiments.facade import RunResult, run
from repro.experiments.spec import ExperimentSpec
from repro.parallel import ExecutionBackend, make_backend, resolve_backend
from repro.simulation import history_from_dict, history_to_dict

__all__ = ["expand", "run_sweep", "run_point", "SweepResult", "SEED_AXIS"]

SWEEP_SCHEMA_VERSION = 1

#: the grid axis treated as replication rather than variation: grouping
#: collapses it and aggregation reports mean/std across it
SEED_AXIS = "config.seed"


def expand(spec: ExperimentSpec, grid: Mapping[str, Sequence]) -> list[ExperimentSpec]:
    """Expand ``spec`` over the cartesian product of a dotted-path grid.

    Args:
        spec: the base experiment every grid point starts from.
        grid: maps dotted override paths (``"method.name"``,
            ``"config.seed"``) to the values each axis takes.  Axis order in
            the mapping fixes enumeration order: the *last* axis varies
            fastest, like nested loops.

    Returns:
        One validated spec per grid point (just ``[spec]`` for an empty
        grid).  Invalid combinations raise immediately, not at run time.
    """
    axes = list(grid.items())
    for path, values in axes:
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise ValueError(
                f"grid axis {path!r} must map to an iterable of values, "
                f"got {values!r}"
            )
    out = []
    for combo in itertools.product(*(list(v) for _, v in axes)):
        # one transaction per grid point, so axes that must change together
        # (e.g. runtime.kind + method.name) never trip mid-way validation
        out.append(spec.override_many(
            [(path, value) for (path, _), value in zip(axes, combo)]
        ))
    return out


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep`: every grid point, plus aggregation.

    Attributes:
        base: the spec every point was derived from.
        grid: the expanded axes (``path -> list of values``).
        assignments: one ``{path: value}`` dict per grid point, in
            enumeration order (the last axis varies fastest).
        results: the matching :class:`~repro.experiments.RunResult` per
            point.
    """

    base: ExperimentSpec
    grid: dict = field(repr=False)
    assignments: list = field(repr=False)
    results: list = field(repr=False)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def group_axes(self) -> tuple:
        """Grid paths that define groups — every axis except the seed."""
        return tuple(path for path in self.grid if path != SEED_AXIS)

    def _grouped(self) -> dict:
        """Canonical-key grouping: ``key -> (original values, results)``.

        Axis values may be unhashable (``method.kwargs`` dicts, list-valued
        knobs); those contribute a canonical JSON form to the key while the
        original values are kept for reporting.
        """
        axes = self.group_axes
        out: dict[tuple, tuple] = {}
        for assignment, result in zip(self.assignments, self.results):
            values = tuple(assignment[a] for a in axes)
            key = tuple(_hashable(v) for v in values)
            out.setdefault(key, (values, []))[1].append(result)
        return out

    def groups(self) -> dict:
        """Results grouped by their non-seed axis values.

        Returns an insertion-ordered mapping from the tuple of
        :attr:`group_axes` values to the group's results (one per seed when
        the grid sweeps ``config.seed``, otherwise a singleton).
        Unhashable axis values (kwargs dicts) appear in their canonical
        JSON form.
        """
        return {key: results for key, (_, results) in self._grouped().items()}

    def aggregate(self, metrics: Mapping[str, Callable] | None = None) -> list[dict]:
        """Mean/std per group over the ``config.seed`` axis.

        Args:
            metrics: ``name -> callable(RunResult) -> float``; defaults to
                ``final`` / ``best`` accuracy.

        Returns:
            One row per group (enumeration order): the group's axis values
            under their dotted paths, ``n`` (runs aggregated, i.e. seeds),
            and ``<name>_mean`` / ``<name>_std`` per metric (population
            std, 0.0 for singleton groups).
        """
        if metrics is None:
            metrics = {
                "final": lambda r: r.final_accuracy,
                "best": lambda r: r.best_accuracy,
            }
        rows = []
        for values, results in self._grouped().values():
            row: dict = dict(zip(self.group_axes, values))
            row["n"] = len(results)
            for name, fn in metrics.items():
                vals = np.array([fn(r) for r in results], dtype=float)
                row[f"{name}_mean"] = float(vals.mean())
                row[f"{name}_std"] = float(vals.std())
            rows.append(row)
        return rows

    # -- persistence ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-safe form: specs + full per-point histories.

        Every round record round-trips through the history schema
        (:func:`repro.simulation.history_to_dict`), so a loaded sweep
        regroups and re-aggregates identically; engines are never persisted
        (they are already dropped from sweep results).
        """
        return {
            "schema": SWEEP_SCHEMA_VERSION,
            "base": self.base.to_dict(),
            "grid": self.grid,
            "assignments": self.assignments,
            "results": [
                {
                    "spec": r.spec.to_dict(),
                    "history": history_to_dict(r.history),
                    "total_virtual_time": r.total_virtual_time,
                }
                for r in self.results
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output."""
        schema = payload.get("schema")
        if schema != SWEEP_SCHEMA_VERSION:
            raise ValueError(
                f"sweep dump schema {schema!r} != {SWEEP_SCHEMA_VERSION}"
            )
        results = [
            RunResult(
                spec=ExperimentSpec.from_dict(r["spec"]),
                history=history_from_dict(r["history"]),
                final_params=None,
                total_virtual_time=r.get("total_virtual_time", 0.0),
                engine=None,
            )
            for r in payload["results"]
        ]
        return cls(
            base=ExperimentSpec.from_dict(payload["base"]),
            grid=dict(payload["grid"]),
            assignments=list(payload["assignments"]),
            results=results,
        )

    def save(self, path: str) -> None:
        """Write the lossless dump (``repro sweep --out``)."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=1)

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as f:
            return cls.from_dict(json.load(f))


def _hashable(value):
    """A value usable in a group key: itself, or its canonical JSON form."""
    try:
        hash(value)
        return value
    except TypeError:
        return json.dumps(value, sort_keys=True, default=repr)


def run_point(spec: ExperimentSpec) -> RunResult:
    """Execute one grid point; engine dropped so the result crosses processes.

    The unit of work every parallel sweep dispatches (also used by the
    benchmark harness) — module-level so it pickles into pool workers.
    """
    result = run(spec)
    result.engine = None
    return result


def run_sweep(
    spec: ExperimentSpec,
    grid: Mapping[str, Sequence],
    backend: ExecutionBackend | str | None = None,
    workers: int | None = None,
    verbose: bool = False,
    keep_engines: bool = False,
) -> SweepResult:
    """:func:`expand` the grid, run every point, aggregate into a
    :class:`SweepResult`.

    Args:
        backend: where grid points execute — an
            :class:`~repro.parallel.backend.ExecutionBackend` instance, a
            registry name, or None to resolve from ``workers`` /
            ``REPRO_BACKEND`` (serial by default).  Each point is one
            coarse-grained ``backend.map`` job; since a run is a pure
            function of its spec, parallel sweeps return the same
            ``SweepResult`` as serial ones.
        workers: worker count for pool backends.
        keep_engines: keep each result's engine (serial backend only —
            engines hold loaded datasets and cannot cross processes).

    Engines are dropped from the results by default — each one pins a fully
    loaded dataset and model, and a sweep would otherwise hold every grid
    point's copy in memory simultaneously.
    """
    axes = {path: list(values) for path, values in grid.items()}
    specs = expand(spec, axes)
    assignments = [
        dict(zip(axes, combo))
        for combo in itertools.product(*axes.values())
    ]
    if isinstance(backend, ExecutionBackend):
        exec_backend = backend
    else:
        exec_backend = make_backend(
            resolve_backend(backend, workers, env=True), workers=workers
        )
    if exec_backend.name != "serial":
        if keep_engines:
            raise ValueError(
                "keep_engines requires the serial backend: engines pin "
                "loaded datasets and cannot cross workers"
            )
        results = exec_backend.map(run_point, specs)
    else:
        results = []
        for s in specs:
            result = run(s, verbose=verbose)
            if not keep_engines:
                result.engine = None
            results.append(result)
    return SweepResult(base=spec, grid=axes, assignments=assignments, results=results)
