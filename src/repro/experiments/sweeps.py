"""Spec sweeps: one base spec + a grid of dotted-path overrides.

``expand(spec, {"method.name": [...], "data.imbalance_factor": [...]})``
returns the cartesian product as fully validated specs — the declarative
replacement for hand-written benchmark grids (``python -m repro compare`` is
one ``expand`` over ``method.name``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from repro.experiments.facade import RunResult, run
from repro.experiments.spec import ExperimentSpec

__all__ = ["expand", "run_sweep"]


def expand(spec: ExperimentSpec, grid: Mapping[str, Sequence]) -> list[ExperimentSpec]:
    """Expand ``spec`` over the cartesian product of a dotted-path grid.

    Args:
        spec: the base experiment every grid point starts from.
        grid: maps dotted override paths (``"method.name"``,
            ``"config.seed"``) to the values each axis takes.  Axis order in
            the mapping fixes enumeration order: the *last* axis varies
            fastest, like nested loops.

    Returns:
        One validated spec per grid point (just ``[spec]`` for an empty
        grid).  Invalid combinations raise immediately, not at run time.
    """
    axes = list(grid.items())
    for path, values in axes:
        if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
            raise ValueError(
                f"grid axis {path!r} must map to an iterable of values, "
                f"got {values!r}"
            )
    out = []
    for combo in itertools.product(*(list(v) for _, v in axes)):
        # one transaction per grid point, so axes that must change together
        # (e.g. runtime.kind + method.name) never trip mid-way validation
        out.append(spec.override_many(
            [(path, value) for (path, _), value in zip(axes, combo)]
        ))
    return out


def run_sweep(
    spec: ExperimentSpec,
    grid: Mapping[str, Sequence],
    verbose: bool = False,
    keep_engines: bool = False,
) -> list[RunResult]:
    """:func:`expand` the grid, then :func:`~repro.experiments.run` each point.

    Engines are dropped from the results by default — each one pins a fully
    loaded dataset and model, and a sweep would otherwise hold every grid
    point's copy in memory simultaneously.  Pass ``keep_engines=True`` when
    the engines themselves are needed (e.g. to probe latency models).
    """
    out = []
    for s in expand(spec, grid):
        result = run(s, verbose=verbose)
        if not keep_engines:
            result.engine = None
        out.append(result)
    return out
