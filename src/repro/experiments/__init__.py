"""Declarative experiment API: serializable specs + one ``run()`` facade.

A federated scenario is *data, not code*: an
:class:`ExperimentSpec` (data + model + method + runtime + hyper-parameters)
round-trips through JSON, takes dotted-path overrides, and runs on any
engine family through a single :func:`run` call::

    from repro.experiments import ExperimentSpec, run

    spec = ExperimentSpec.load("examples/specs/semisync_utility.json")
    spec = spec.apply_overrides(["config.rounds=50", "runtime.sampler=utility"])
    result = run(spec, verbose=True)
    print(result.final_accuracy, result.total_virtual_time)

See :mod:`repro.experiments.spec` for the spec hierarchy,
:mod:`repro.experiments.facade` for registry resolution and
:mod:`repro.experiments.sweeps` for grid expansion.
"""

from repro.experiments.facade import (
    MODEL_ALIASES,
    RunResult,
    build,
    build_problem,
    replica_builders,
    resolve_model_alias,
    resume_run,
    run,
)
from repro.experiments.spec import (
    DataSpec,
    ENGINE_KINDS,
    ExperimentSpec,
    KIND_FORBIDDEN_KNOBS,
    MethodSpec,
    ModelSpec,
    RuntimeSpec,
    apply_overrides,
    parse_override,
)
from repro.experiments.sweeps import SweepResult, expand, run_point, run_sweep

__all__ = [
    "DataSpec",
    "ModelSpec",
    "MethodSpec",
    "RuntimeSpec",
    "ExperimentSpec",
    "ENGINE_KINDS",
    "KIND_FORBIDDEN_KNOBS",
    "apply_overrides",
    "parse_override",
    "RunResult",
    "MODEL_ALIASES",
    "resolve_model_alias",
    "build",
    "build_problem",
    "replica_builders",
    "run",
    "resume_run",
    "expand",
    "run_sweep",
    "run_point",
    "SweepResult",
]
