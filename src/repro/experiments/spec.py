"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single, serializable description of one
federated run: *what data* (:class:`DataSpec`), *what model*
(:class:`ModelSpec`), *what method* (:class:`MethodSpec`), *which engine and
scheduling* (:class:`RuntimeSpec`) and *which hyper-parameters*
(:class:`repro.simulation.FLConfig`).  A scenario is data, not code:

* lossless ``to_dict()`` / ``from_dict()`` and JSON file round-trips
  (``save`` / ``load``), with unknown keys rejected so typos can't silently
  become defaults;
* dotted-path overrides — ``apply_overrides(spec,
  ["runtime.sampler=utility", "config.rounds=50"])`` — with values parsed as
  JSON and type-checked against the target field;
* validation at construction: every registry name (dataset, model, method,
  latency model, sampler) is checked against its registry the moment the
  spec exists, not when the run starts.

The companion facade (:mod:`repro.experiments.facade`) turns a spec into a
running engine; :mod:`repro.experiments.sweeps` expands one spec plus a grid
into many.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from dataclasses import dataclass, field

from repro.algorithms import (
    METHOD_NAMES,
    method_is_parallel_safe,
    method_requires_aggregate,
)
from repro.data import DATASET_REGISTRY
from repro.nn.models import MODEL_REGISTRY
from repro.parallel import BACKENDS
from repro.runtime import (
    BUFFER_EMA_MODES,
    LATE_POLICIES,
    LATENCY_MODELS,
    SAMPLERS,
    TimeAwareSampler,
)
from repro.simulation import FLConfig
from repro.utils.validation import check_fraction, check_positive

__all__ = [
    "DataSpec",
    "ModelSpec",
    "MethodSpec",
    "RuntimeSpec",
    "ExperimentSpec",
    "ENGINE_KINDS",
    "KIND_FORBIDDEN_KNOBS",
    "apply_overrides",
    "parse_override",
]

ENGINE_KINDS = ("sync", "semisync", "fedasync", "fedbuff")

# engine kinds whose MethodSpec must name a staleness-aware algorithm
_ASYNC_KINDS = ("fedasync", "fedbuff")

# runtime knobs each engine kind cannot consume — the single source of truth
# shared by RuntimeSpec validation and the CLI's unused-flag warnings.
# backend / workers appear nowhere: every kind dispatches client compute
# through the execution-backend layer (repro.parallel.backend)
KIND_FORBIDDEN_KNOBS: dict[str, tuple[str, ...]] = {
    "sync": (
        "latency", "price_comm", "deadline", "adaptive_deadline",
        "late_weight", "late_policy", "concurrency", "staleness_budget",
        "max_updates", "buffer_ema", "streaming", "fast_path",
    ),
    "semisync": (
        "concurrency", "staleness_budget", "max_updates", "buffer_ema",
        "streaming", "fast_path",
    ),
    "fedasync": ("deadline", "adaptive_deadline", "late_weight", "late_policy"),
    "fedbuff": ("deadline", "adaptive_deadline", "late_weight", "late_policy"),
}


def _check_jsonable(value, where: str) -> None:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{where} must be JSON-serializable (str/int/float/bool/None and "
            f"nested lists/dicts thereof), got {value!r}"
        ) from None


@dataclass(frozen=True)
class DataSpec:
    """The federated data distribution: which dataset, how skewed, how split.

    Attributes:
        dataset: registry key (see :data:`repro.data.DATASET_REGISTRY`).
        imbalance_factor: long-tail IF in (0, 1]; 1 = balanced.
        beta: Dirichlet concentration of the client partition.
        clients: number of clients K.
        partition: ``"balanced"`` (equal quantities) or ``"fedgrab"``
            (quantity-skewed per-class Dirichlet).
        scale: multiplier on per-class sample volumes (speed knob).
    """

    dataset: str = "fashion-mnist-lite"
    imbalance_factor: float = 0.1
    beta: float = 0.1
    clients: int = 20
    partition: str = "balanced"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_REGISTRY:
            raise ValueError(
                f"unknown dataset {self.dataset!r}; available: {sorted(DATASET_REGISTRY)}"
            )
        check_fraction(self.imbalance_factor, "imbalance_factor")
        check_positive(self.beta, "beta")
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.partition not in ("balanced", "fedgrab"):
            raise ValueError(
                f"partition must be 'balanced' or 'fedgrab', got {self.partition!r}"
            )
        check_positive(self.scale, "scale")


@dataclass(frozen=True)
class ModelSpec:
    """The global model architecture.

    ``arch="mlp"`` trains on the dataset's *flat view* (images flattened to
    vectors); any other registry name (``resnet-lite-18`` / ``-34`` /
    ``linear``) keeps the image geometry and receives ``in_channels`` /
    ``image_size`` / ``num_classes`` derived from the dataset.  ``kwargs``
    forwards extra constructor arguments (e.g. ``{"width": 4}``).
    """

    arch: str = "mlp"
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.arch not in MODEL_REGISTRY:
            raise ValueError(
                f"unknown model arch {self.arch!r}; available: {sorted(MODEL_REGISTRY)}"
            )
        _check_jsonable(self.kwargs, "model.kwargs")


@dataclass(frozen=True)
class MethodSpec:
    """The federated algorithm: registry name plus hyper-parameters.

    Under ``runtime.kind`` in ``("fedasync", "fedbuff")`` the name selects
    the *local* training rule: naming the kind itself runs plain
    FedAsync/FedBuff, while any other method (SCAFFOLD, FedDyn, the SAM
    family, ...) is wrapped in an :class:`~repro.algorithms.AsyncAdapter` —
    its ``client_update`` under the kind's staleness-aware server rule.  In
    the wrapped case the rule's knobs (``mixing`` / ``buffer_size`` /
    ``staleness_exponent``) may still ride in ``kwargs``; they are routed to
    the rule, everything else to the base method.
    """

    name: str = "fedavg"
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name.lower() not in METHOD_NAMES:
            raise ValueError(
                f"unknown method {self.name!r}; available: {METHOD_NAMES}"
            )
        _check_jsonable(self.kwargs, "method.kwargs")


@dataclass(frozen=True)
class RuntimeSpec:
    """Which engine runs the method, and every scheduling knob around it.

    Attributes:
        kind: ``"sync"`` (lock-step rounds), ``"semisync"`` (deadline-based
            rounds wrapping the method), ``"fedasync"`` / ``"fedbuff"``
            (event-driven staleness-aware aggregation).
        latency: latency-model registry name pricing client responses
            (``None`` = untimed for sync, constant for the timed engines).
        latency_kwargs: forwarded to the latency model constructor
            (``scale``, ``sigma``, ``alpha``, ...).
        price_comm: resolve the method's :class:`CommunicationModel` payload
            into the priced latency (``comm_method="auto"``).
        sampler: cohort sampler registry name (``uniform`` keeps the
            context's default stream).  For semisync the sampler draws whole
            cohorts; for fedasync/fedbuff it must be time-aware and picks
            each replacement dispatch (``pick_next``).
        sampler_kwargs: forwarded to the sampler constructor.
        deadline: semi-sync round deadline in virtual seconds (None = wait
            for the slowest client).
        adaptive_deadline: drop-rate budget for a
            :class:`~repro.runtime.scheduling.DeadlineController` (None =
            fixed deadline); ``deadline`` then seeds the controller.
        late_weight: semi-sync weight for deadline-missing clients
            (``late_policy="downweight"`` only).
        late_policy: semi-sync late-client handling — ``"downweight"``
            merges late updates into their own round scaled by
            ``late_weight`` (the same-round approximation), ``"trickle"``
            merges each into the round open at its actual arrival.
        concurrency: async clients in flight (None = sync cohort size).
        staleness_budget: AIMD concurrency control target (None = fixed).
        max_updates: async total client updates (None = rounds x cohort).
        backend: execution backend for client compute, any engine kind —
            ``"serial"``, ``"process"`` (fork pool), ``"thread"``,
            ``"remote"`` (the :mod:`repro.net` federation service: this
            process listens on ``backend_address`` and jobs execute on
            ``repro worker`` processes over TCP), or ``"auto"`` (default):
            the ``REPRO_BACKEND`` environment variable if set, else
            ``"process"`` when ``workers`` asks for more than one, else
            ``"serial"``.  Stateful methods and BatchNorm buffers run
            bit-identically on every backend (packed state rides the job
            contract).
        backend_address: ``"host:port"`` the remote backend's aggregator
            listens on (port 0 = OS-assigned); only meaningful with
            ``backend="remote"`` (or ``"auto"`` resolving there via
            ``REPRO_BACKEND=remote``).  ``None`` with ``backend="remote"``
            falls back to ``REPRO_BACKEND_ADDRESS`` at run time.
        workers: worker count for pool backends (None = the backend default:
            ``REPRO_MAX_WORKERS`` or the capped CPU count); for
            ``backend="remote"`` it is the number of worker registrations
            the run waits for before starting.
        job_batch: jobs shipped per transport unit — one pool task
            (``backend="process"``) or one wire frame
            (``backend="remote"``) carries up to this many jobs, amortizing
            pickling and per-message overhead across the batch.  None
            (default) resolves via ``REPRO_JOB_BATCH``, else per-job
            dispatch.  Histories are bit-identical at any value (jobs are
            stamped at dispatch and results applied in virtual-time order).
            Transport-only, so serial/thread backends reject it.
        shared_memory: ``backend="process"`` only — publish the broadcast
            vector (and round-stable broadcast arrays) into POSIX shared
            memory once per version; jobs carry small descriptors and pool
            workers attach read-only, so the model is no longer pickled
            into every job.  None (default) resolves via
            ``REPRO_SHARED_MEMORY``, else off.  Bit-identical either way.
        buffer_ema: async server-side buffer EMA mode — ``"fixed"``
            (1/window blend, default) or ``"staleness"`` (stale arrivals
            discounted at ``1/(window * (1 + tau))``, mirroring the
            parameter rule).
        streaming: async dispatch scheduling — True submits each dispatch's
            job to the backend the moment it is issued (overlapping worker
            compute with event processing), False accumulates lazy batches,
            None (default) resolves via the ``REPRO_STREAMING`` environment
            variable, else on.  Histories are bit-identical either way (the
            knob only trades wall-clock overlap), and the serial backend
            always uses the lazy-batch path; round engines (sync/semisync)
            submit whole cohorts regardless, so the knob is async-only.
        fast_path: async dispatch planning — True (the resolved default)
            routes dispatch bursts through the vectorized control plane
            (incremental idle tracking, batched latency draws, batched heap
            insertion), False keeps the scalar per-dispatch loop, None
            resolves via the ``REPRO_FAST_PATH`` environment variable, else
            on.  Histories are bit-identical either way (pinned by
            ``tests/test_fastpath.py``); the knob is a debugging opt-out.
            Round engines vectorize their cohort paths unconditionally, so
            like ``streaming`` the knob is async-only.
        record: attach a :class:`~repro.observe.RunRecorder`: every typed
            event becomes a ``journal.jsonl`` record under ``run_dir`` and
            round boundaries snapshot resumable state (valid for every
            kind; requires ``run_dir``).
        run_dir: artifact directory for the recorded run (journal,
            snapshots, the spec itself); requires ``record=True``.
    """

    kind: str = "sync"
    latency: str | None = None
    latency_kwargs: dict = field(default_factory=dict)
    price_comm: bool = False
    sampler: str = "uniform"
    sampler_kwargs: dict = field(default_factory=dict)
    deadline: float | None = None
    adaptive_deadline: float | None = None
    late_weight: float = 0.0
    late_policy: str = "downweight"
    concurrency: int | None = None
    staleness_budget: float | None = None
    max_updates: int | None = None
    backend: str = "auto"
    backend_address: str | None = None
    workers: int | None = None
    job_batch: int | None = None
    shared_memory: bool | None = None
    buffer_ema: str = "fixed"
    streaming: bool | None = None
    fast_path: bool | None = None
    record: bool = False
    run_dir: str | None = None

    def __post_init__(self) -> None:
        # normalize once so every later comparison (and resolve_backend)
        # sees the same casing
        object.__setattr__(self, "backend", self.backend.lower())
        if self.kind not in ENGINE_KINDS:
            raise ValueError(f"unknown engine kind {self.kind!r}; available: {ENGINE_KINDS}")
        if self.latency is not None and self.latency.lower() not in LATENCY_MODELS:
            raise ValueError(
                f"unknown latency model {self.latency!r}; available: {sorted(LATENCY_MODELS)}"
            )
        if self.sampler.lower() not in SAMPLERS:
            raise ValueError(
                f"unknown sampler {self.sampler!r}; available: {sorted(SAMPLERS)}"
            )
        _check_jsonable(self.latency_kwargs, "runtime.latency_kwargs")
        _check_jsonable(self.sampler_kwargs, "runtime.sampler_kwargs")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0 or None, got {self.deadline}")
        if self.adaptive_deadline is not None and not 0.0 <= self.adaptive_deadline < 1.0:
            raise ValueError(
                f"adaptive_deadline (drop-rate budget) must be in [0, 1), "
                f"got {self.adaptive_deadline}"
            )
        if not 0.0 <= self.late_weight <= 1.0:
            raise ValueError(f"late_weight must be in [0, 1], got {self.late_weight}")
        if self.late_policy not in LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {LATE_POLICIES}, got {self.late_policy!r}"
            )
        if self.late_policy == "trickle" and self.late_weight != 0.0:
            raise ValueError(
                "late_weight only applies to late_policy='downweight' "
                "(trickled updates merge at full weight when they arrive)"
            )
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.staleness_budget is not None and self.staleness_budget < 0:
            raise ValueError(
                f"staleness_budget must be >= 0, got {self.staleness_budget}"
            )
        if self.max_updates is not None and self.max_updates < 1:
            raise ValueError(f"max_updates must be >= 1, got {self.max_updates}")
        if self.backend != "auto" and self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: "
                f"{['auto', *sorted(BACKENDS)]}"
            )
        if self.backend_address is not None:
            if self.backend not in ("auto", "remote"):
                raise ValueError(
                    f"backend_address={self.backend_address!r} only applies "
                    f"to backend='remote', got backend={self.backend!r}"
                )
            # reuse the net layer's parser so "what validates" and "what
            # binds" cannot disagree (imported lazily: repro.net imports
            # the job contract from repro.parallel, which this module uses)
            from repro.net.framing import parse_address

            parse_address(self.backend_address)
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend == "serial" and (self.workers or 1) > 1:
            raise ValueError(
                f"backend='serial' contradicts workers={self.workers}; "
                "use backend='process' or 'thread' for parallel client compute"
            )
        if self.job_batch is not None:
            if self.job_batch < 1:
                raise ValueError(
                    f"job_batch must be >= 1, got {self.job_batch}"
                )
            if self.backend in ("serial", "thread"):
                raise ValueError(
                    f"job_batch={self.job_batch} only applies to transport "
                    f"backends ('process', 'remote'), got "
                    f"backend={self.backend!r}"
                )
        if self.shared_memory and self.backend not in ("auto", "process"):
            raise ValueError(
                "shared_memory=True only applies to backend='process' "
                f"(pool workers attach the segments), got "
                f"backend={self.backend!r}"
            )
        if self.buffer_ema not in BUFFER_EMA_MODES:
            raise ValueError(
                f"buffer_ema must be one of {BUFFER_EMA_MODES}, got {self.buffer_ema!r}"
            )
        if self.record and not self.run_dir:
            raise ValueError(
                "record=True needs runtime.run_dir to name the artifact "
                "directory (journal + snapshots)"
            )
        if self.run_dir and not self.record:
            raise ValueError(
                f"run_dir={self.run_dir!r} has no effect without record=True"
            )
        # knobs the chosen engine kind cannot consume are hard errors here —
        # a spec that silently ignored them would lie about the run it names
        if (
            self.kind == "sync"
            and isinstance(SAMPLERS.get(self.sampler.lower()), type)
            and issubclass(SAMPLERS[self.sampler.lower()], TimeAwareSampler)
        ):
            raise ValueError(
                f"sampler {self.sampler!r} is time-aware and needs a priced "
                "engine; use kind='semisync'"
            )
        if (
            self.kind in _ASYNC_KINDS
            and self.sampler.lower() != "uniform"
            and not issubclass(SAMPLERS[self.sampler.lower()], TimeAwareSampler)
        ):
            raise ValueError(
                f"sampler {self.sampler!r} has no per-dispatch interface; the "
                "async engines need a time-aware sampler "
                "(fast, long-idle, utility) or 'uniform'"
            )
        if self.sampler.lower() == "uniform" and self.sampler_kwargs:
            raise ValueError(
                "sampler_kwargs requires a non-uniform sampler "
                f"(the default draw takes no arguments), got {self.sampler_kwargs}"
            )
        if self.latency is None and self.latency_kwargs:
            raise ValueError(
                "latency_kwargs requires runtime.latency to name a model "
                f"(got kwargs {self.latency_kwargs} with latency=None); "
                "use latency='constant' for the default model"
            )
        set_knobs = {
            "latency": self.latency is not None,
            "price_comm": self.price_comm,
            "sampler": self.sampler.lower() != "uniform",
            "sampler_kwargs": bool(self.sampler_kwargs),
            "deadline": self.deadline is not None,
            "adaptive_deadline": self.adaptive_deadline is not None,
            "late_weight": self.late_weight != 0.0,
            "late_policy": self.late_policy != "downweight",
            "concurrency": self.concurrency is not None,
            "staleness_budget": self.staleness_budget is not None,
            "max_updates": self.max_updates is not None,
            "buffer_ema": self.buffer_ema != "fixed",
            "streaming": self.streaming is not None,
            "fast_path": self.fast_path is not None,
        }
        bad = [k for k in KIND_FORBIDDEN_KNOBS[self.kind] if set_knobs[k]]
        if bad:
            hint = (
                "use kind='semisync' with deadline=None for a timed synchronous run"
                if self.kind == "sync"
                else f"kind={self.kind!r} cannot consume them"
            )
            raise ValueError(
                f"runtime knob(s) {bad} have no effect with kind={self.kind!r}; {hint}"
            )


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, serializable federated experiment."""

    data: DataSpec = field(default_factory=DataSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    method: MethodSpec = field(default_factory=MethodSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    config: FLConfig = field(default_factory=FLConfig)
    name: str = ""

    def __post_init__(self) -> None:
        kind = self.runtime.kind
        mname = self.method.name.lower()
        # the event-driven kinds ARE their aggregation rule; any *other*
        # method runs its local rule under that rule via an AsyncAdapter —
        # except a second staleness-aware rule, which cannot nest
        if kind in _ASYNC_KINDS and mname in _ASYNC_KINDS and mname != kind:
            raise ValueError(
                f"method.name={self.method.name!r} is itself a staleness-aware "
                f"rule and cannot run under runtime.kind={kind!r}; name the "
                "kind's own method, or a synchronous method to wrap"
            )
        if kind in _ASYNC_KINDS and method_requires_aggregate(mname):
            raise ValueError(
                f"method {self.method.name!r} broadcasts server state that "
                "only aggregate() refreshes (frozen under async rules); use "
                "runtime.kind='semisync' for deadline-based straggler handling"
            )
        # stateful x workers needs no check anymore: packed client state
        # rides the execution backends' job contract on every engine kind.
        # Methods whose state stays OUTSIDE those contracts are the one
        # remaining exception — worker replicas would silently diverge
        if not method_is_parallel_safe(mname) and (
            self.runtime.backend not in ("auto", "serial")
            or (self.runtime.workers or 1) > 1
        ):
            raise ValueError(
                f"method {self.method.name!r} keeps client-visible state "
                "outside the pack/unpack and broadcast_attrs contracts and "
                "must run on the serial backend; drop runtime.backend/workers"
            )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless nested-dict form (JSON-safe).

        Named lr schedules (``{"name": "cosine", ...}``) serialize as-is;
        bare callables don't.

        Raises:
            ValueError: when ``config.lr_schedule`` is a callable — use the
                named form, or attach the callable after loading.
        """
        schedule = self.config.lr_schedule
        if schedule is not None and not isinstance(schedule, dict):
            raise ValueError(
                "config.lr_schedule is a bare callable and cannot be "
                "serialized; use the named form {'name': 'cosine', ...} "
                "(see repro.nn.schedules), or re-attach it after loading"
            )
        out = dataclasses.asdict(self)
        if schedule is None:
            del out["config"]["lr_schedule"]
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output; unknown keys raise."""
        if not isinstance(d, dict):
            raise ValueError(f"spec must be a mapping, got {type(d).__name__}")
        sections = {
            "data": DataSpec,
            "model": ModelSpec,
            "method": MethodSpec,
            "runtime": RuntimeSpec,
            "config": FLConfig,
        }
        kwargs: dict = {}
        for key, value in d.items():
            if key == "name":
                if not isinstance(value, str):
                    raise ValueError(f"name must be a string, got {value!r}")
                kwargs["name"] = value
            elif key in sections:
                kwargs[key] = _section_from_dict(sections[key], key, value)
            else:
                raise ValueError(
                    f"unknown spec section {key!r}; expected one of "
                    f"{sorted([*sections, 'name'])}"
                )
        return cls(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        with open(path) as f:
            return cls.from_json(f.read())

    # -- overrides -----------------------------------------------------------
    def override(self, path: str, value) -> "ExperimentSpec":
        """Return a copy with the dotted-path field replaced by ``value``.

        ``path`` addresses nested dataclass fields (``config.rounds``,
        ``runtime.sampler``) or entries of kwargs dicts
        (``method.kwargs.mixing``).  Dataclass validation re-runs on the
        rebuilt objects, so an invalid value raises immediately.
        """
        return self.override_many([(path, value)])

    def override_many(self, items: "list[tuple[str, object]]") -> "ExperimentSpec":
        """Apply several ``(path, value)`` overrides as one transaction.

        All assignments are staged first; each touched section is rebuilt
        (and validated) once at the end, and cross-section consistency
        (e.g. ``runtime.kind`` vs ``method.name``) likewise — so override
        order never matters, even for fields that must change together.
        """
        sections = {
            "data": DataSpec,
            "model": ModelSpec,
            "method": MethodSpec,
            "runtime": RuntimeSpec,
            "config": FLConfig,
        }
        replaced: dict = {}  # whole-section / top-level scalar assignments
        staged: dict[str, dict] = {}  # section -> pending field values

        def section_values(head: str, cls) -> dict:
            base = getattr(self, head)
            return {
                f.name: getattr(base, f.name)
                for f in dataclasses.fields(cls)
                if f.init
            }

        for path, value in items:
            parts = path.split(".")
            head = parts[0]
            if head == "name" and len(parts) == 1:
                replaced["name"] = _coerce(type(self), "name", value, path)
                continue
            if head not in sections:
                raise ValueError(
                    f"unknown field {head!r} in override {path!r}; "
                    f"expected one of {sorted([*sections, 'name'])}"
                )
            cls = sections[head]
            if len(parts) == 1:
                if not isinstance(value, cls):
                    raise ValueError(
                        f"override {path!r} must assign a {cls.__name__} "
                        f"instance, got {value!r}; use dotted paths for fields"
                    )
                if head in staged:
                    raise ValueError(
                        f"override {path!r} replaces the whole section but other "
                        f"overrides target its fields; use one style per section"
                    )
                replaced[head] = value
                continue
            if head in replaced:
                raise ValueError(
                    f"override {path!r} targets a field of a section another "
                    f"override replaces wholesale; use one style per section"
                )
            fname = parts[1]
            names = {f.name for f in dataclasses.fields(cls) if f.init}
            if fname not in names:
                raise ValueError(
                    f"unknown field {fname!r} in override {path!r}; "
                    f"expected one of {sorted(names)}"
                )
            cur = staged.setdefault(head, section_values(head, cls))
            if len(parts) == 2:
                cur[fname] = _coerce(cls, fname, value, path)
            else:
                cur[fname] = _set_in_dict(cur[fname], parts[2:], path, value)

        updates = dict(replaced)
        for head, values in staged.items():
            updates[head] = sections[head](**values)
        return dataclasses.replace(self, **updates)

    def apply_overrides(self, assignments: "list[str] | tuple[str, ...]") -> "ExperimentSpec":
        """Apply ``key.path=json_value`` assignment strings (CLI ``--set``)."""
        return self.override_many([parse_override(text) for text in assignments])


def _section_from_dict(cls, section: str, value):
    if not isinstance(value, dict):
        raise ValueError(f"section {section!r} must be a mapping, got {value!r}")
    names = {f.name for f in dataclasses.fields(cls) if f.init}
    if section == "config" and callable(value.get("lr_schedule")):
        raise ValueError(
            "config.lr_schedule in a serialized spec must be the named "
            "{'name': ...} form, not a callable"
        )
    unknown = sorted(set(value) - names)
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} in section {section!r}; "
            f"expected a subset of {sorted(names)}"
        )
    try:
        return cls(**value)
    except TypeError as exc:  # e.g. a list passed where a scalar belongs
        raise ValueError(f"invalid value in section {section!r}: {exc}") from exc


def parse_override(text: str) -> tuple[str, object]:
    """Split one ``dotted.path=value`` assignment; values parse as JSON.

    Unquoted bare words fall back to strings, so both
    ``runtime.sampler=utility`` and ``runtime.sampler="utility"`` work.
    """
    if "=" not in text:
        raise ValueError(f"override {text!r} must look like key.path=value")
    path, raw = text.split("=", 1)
    path = path.strip()
    if not path:
        raise ValueError(f"override {text!r} has an empty key path")
    raw = raw.strip()
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw  # bare string
    return path, value


def _set_in_dict(node, parts: list[str], full_path: str, value):
    """Set a nested key inside a kwargs dict, copying along the way."""
    if not isinstance(node, dict):
        raise ValueError(
            f"cannot descend into {type(node).__name__} at {parts[0]!r} "
            f"(override {full_path!r})"
        )
    new = dict(node)
    head, rest = parts[0], parts[1:]
    if rest:
        if head not in node:
            raise ValueError(f"unknown key {head!r} in override {full_path!r}")
        new[head] = _set_in_dict(node[head], rest, full_path, value)
    else:
        new[head] = value
    return new


def _coerce(owner_cls, field_name: str, value, full_path: str):
    """Type-check ``value`` against the dataclass field's annotation.

    Ints promote to float fields; everything else must match exactly, so
    ``config.rounds=many`` fails loudly instead of exploding later inside
    the engine.
    """
    hints = typing.get_type_hints(owner_cls)
    hint = hints.get(field_name)
    if hint is None:
        return value
    allowed = _flatten_union(hint)
    if any(a is dict for a in allowed) and isinstance(value, dict):
        return value
    if type(value) in allowed:
        return value
    if float in allowed and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if type(None) in allowed and value is None:
        return value
    names = sorted(
        ("None" if a is type(None) else getattr(a, "__name__", str(a))) for a in allowed
    )
    raise ValueError(
        f"override {full_path!r}: expected {' | '.join(names)}, "
        f"got {value!r} ({type(value).__name__})"
    )


def _flatten_union(hint) -> tuple:
    origin = typing.get_origin(hint)
    if origin in (typing.Union, types.UnionType):
        out: list = []
        for arm in typing.get_args(hint):
            out.extend(_flatten_union(arm))
        return tuple(out)
    if origin is not None:  # parametrized generics: match on the origin
        return (origin,)
    if hint is typing.Any:
        return (object,)
    return (hint,)


def apply_overrides(spec: ExperimentSpec, assignments) -> ExperimentSpec:
    """Module-level alias of :meth:`ExperimentSpec.apply_overrides`."""
    return spec.apply_overrides(assignments)
