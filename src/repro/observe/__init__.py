"""Run observability: live JSONL journal, metrics tailer, checkpoint/resume.

Three pieces, one artifact directory (``run_dir``):

* :mod:`repro.observe.journal` — :class:`RunRecorder` hooks into the event
  core and appends one record per typed event to ``journal.jsonl``, plus
  periodic full-state snapshots under ``snapshots/``.
* :mod:`repro.observe.metrics` — :class:`JournalTailer` follows a live or
  finished journal; :class:`MetricsStore` keeps rolling aggregates
  (throughput, staleness quantiles, drop rate, accuracy, controller
  trajectories).  CLI: ``python -m repro watch <run_dir>``.
* :mod:`repro.observe.snapshot` — resumable core snapshots;
  ``repro run --resume <run_dir>`` continues a stopped run bit-identically.

Plus :mod:`repro.observe.profile` — the :class:`HotPathProfiler` per-phase
wall counters the event core feeds while a run executes; recorded runs
journal the summary as a ``profile`` record which ``repro watch --summary``
surfaces as a ``hotpath:`` line.
"""

from repro.observe.journal import JOURNAL_SCHEMA_VERSION, RunRecorder, journal_path
from repro.observe.metrics import JournalTailer, MetricsStore, read_journal
from repro.observe.profile import PROFILE_PHASES, HotPathProfiler, format_hotpath
from repro.observe.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    latest_snapshot,
    load_snapshot,
    model_hash,
    restore_core,
    save_snapshot,
    snapshot_core,
)

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "RunRecorder",
    "journal_path",
    "JournalTailer",
    "MetricsStore",
    "read_journal",
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_core",
    "restore_core",
    "save_snapshot",
    "load_snapshot",
    "latest_snapshot",
    "model_hash",
    "PROFILE_PHASES",
    "HotPathProfiler",
    "format_hotpath",
]
