"""Lightweight hot-path profiler for the event core's dispatch loop.

A :class:`HotPathProfiler` is a bag of per-phase wall-clock counters the
event core and the async policy feed while a run executes.  It answers
the question the clients/sec bench kept begging: *where* does a dispatch
actually spend its time once client compute is cheap?  Phases:

==========  ===========================================================
phase       covers
==========  ===========================================================
pick        idle-set maintenance + client selection (uniform or sampler)
latency     latency-model draws pricing each dispatch
heap        event scheduling into the virtual clock
job_build   ClientJob construction (state snapshot, buffer copies)
submit      backend submit (streaming burst hand-off)
collect     backend collect/flush when a completion needs its result
apply       ``server_apply`` merging an update into the global model
eval        history recording + test-set evaluation at window closes
journal     the run recorder's own hooks (``RunRecorder.hook_seconds``)
other       wall time the probes above did not attribute
==========  ===========================================================

The profiler is pure observation: probes are ``perf_counter`` pairs
behind ``if profiler is not None`` guards, so unprofiled runs pay one
attribute read per site and profiled runs stay bit-identical (no RNG, no
event reordering).  Recorded runs journal the summary as an additive
``profile`` record (schema version unchanged) which
``repro watch --summary`` surfaces as a ``hotpath:`` line; the
clients-per-sec bench prints the full breakdown.
"""

from __future__ import annotations

import time

__all__ = ["PROFILE_PHASES", "HotPathProfiler", "format_hotpath"]

PROFILE_PHASES = (
    "pick", "latency", "heap", "job_build", "submit", "collect",
    "apply", "eval", "journal", "other",
)


class HotPathProfiler:
    """Per-phase wall counters for one event-core run.

    Attach by passing ``profiler=`` to an engine's ``run()`` (or directly
    to :meth:`repro.runtime.events.EventCore.run`); read the result with
    :meth:`as_dict` after the run returns.
    """

    __slots__ = ("seconds", "wall_seconds", "completions", "dispatches")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {p: 0.0 for p in PROFILE_PHASES}
        self.wall_seconds = 0.0
        self.completions = 0
        self.dispatches = 0

    def add(self, phase: str, dt: float) -> None:
        """Accumulate ``dt`` wall seconds into ``phase``."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + dt

    def finish(self, wall_seconds: float, journal_seconds: float = 0.0) -> None:
        """Close the run: total wall, journal overhead, residual 'other'."""
        self.wall_seconds = float(wall_seconds)
        self.seconds["journal"] = float(journal_seconds)
        attributed = sum(v for k, v in self.seconds.items() if k != "other")
        self.seconds["other"] = max(0.0, self.wall_seconds - attributed)

    def clients_per_sec(self) -> float:
        """Completed client updates per wall second (0 when unknown)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.completions / self.wall_seconds

    def as_dict(self) -> dict:
        """JSON-ready summary (the journal's ``profile`` record body)."""
        wall = self.wall_seconds
        phases = {k: round(v, 6) for k, v in self.seconds.items() if v > 0.0}
        shares = (
            {k: round(v / wall, 4) for k, v in self.seconds.items() if v > 0.0}
            if wall > 0
            else {}
        )
        return {
            "wall_s": round(wall, 6),
            "completions": self.completions,
            "dispatches": self.dispatches,
            "clients_per_sec": round(self.clients_per_sec(), 1),
            "phases": phases,
            "shares": shares,
        }


def format_hotpath(profile: dict, top: int = 3) -> str:
    """One-line summary of a journaled ``profile`` record.

    ``"12345 clients/s (pick 42%, latency 31%, heap 9%)"`` — throughput
    plus the ``top`` largest phase shares.  Shared by
    ``repro watch --summary`` and the bench so the two never disagree on
    formatting.
    """
    cps = float(profile.get("clients_per_sec", 0.0))
    shares = profile.get("shares") or {}
    ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)[:top]
    parts = ", ".join(f"{name} {share:.0%}" for name, share in ranked)
    line = f"{cps:.0f} clients/s"
    return f"{line} ({parts})" if parts else line
