"""Tail a run journal and maintain rolling aggregates.

* :class:`JournalTailer` — incremental reader of a live (or finished)
  ``journal.jsonl``: each :meth:`~JournalTailer.poll` returns the complete
  records appended since the last poll, tolerating a partially written
  trailing line (the writer may be mid-append or may have crashed mid-line).
* :class:`MetricsStore` — ingests journal records in any amount and keeps
  rolling aggregates: throughput (clients per virtual/wall second),
  staleness distribution, drop rate, per-round accuracy, controller
  deadline/concurrency trajectories, backend job timing.  Ingestion is
  idempotent per event key (dispatch/completion seq, round index), so
  re-reading a journal — or reading one a resumed run appended to — never
  double-counts.

``python -m repro watch <run_dir>`` is the CLI face: ``--summary`` one-shot
or ``-f`` follow mode.
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["JournalTailer", "MetricsStore", "read_journal"]


class JournalTailer:
    """Incrementally read complete JSONL records from a (growing) file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._partial = ""

    def poll(self) -> list[dict]:
        """Records appended since the last poll (empty if none / no file)."""
        if not os.path.exists(self.path):
            return []
        with open(self.path) as f:
            f.seek(self._offset)
            chunk = f.read()
            self._offset = f.tell()
        if not chunk:
            return []
        text = self._partial + chunk
        lines = text.split("\n")
        # the final piece is complete only if the chunk ended with a newline
        self._partial = lines.pop()
        out = []
        for line in lines:
            line = line.strip()
            if line:
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    # a torn line from a crashed writer; skip it
                    continue
        return out


def read_journal(path: str) -> list[dict]:
    """All complete records of a journal file (one-shot convenience)."""
    return JournalTailer(path).poll()


class MetricsStore:
    """Rolling aggregates over journal records; idempotent per event key."""

    def __init__(self) -> None:
        self.meta: dict = {}
        self._dispatches: dict[int, dict] = {}
        self._completions: dict[int, dict] = {}
        self._rounds: dict[int, dict] = {}
        self._jobs: dict[tuple, dict] = {}
        self.warnings: list[dict] = []
        self.snapshots = 0
        self.resumes = 0
        self.stopped = False
        self.ended = False
        self.final_accuracy: float | None = None
        #: recorder hook seconds self-reported on the latest stop/end record
        self.recorder_overhead_s: float | None = None
        #: wire-level stats from the latest stop/end record (remote backend)
        self.transport: dict = {}
        #: hot-path profile record (profiled runs; latest leg wins)
        self.profile: dict | None = None

    # -- ingestion -----------------------------------------------------------
    def ingest(self, rec: dict) -> None:
        kind = rec.get("type")
        if kind == "meta":
            self.meta = rec
        elif kind == "dispatch":
            self._dispatches[rec["seq"]] = rec
        elif kind == "completion":
            self._completions[rec["seq"]] = rec
        elif kind == "round":
            self._rounds[rec["round"]] = rec
        elif kind == "job":
            self._jobs[(rec["round"], rec["client"])] = rec
        elif kind == "warning":
            self.warnings.append(rec)
        elif kind == "snapshot":
            self.snapshots += 1
        elif kind == "resume":
            self.resumes += 1
            self.stopped = False  # the run is live again
        elif kind == "profile":
            self.profile = rec
        elif kind == "stop":
            self.stopped = True
            self.recorder_overhead_s = rec.get("recorder_overhead_s")
            self.transport = rec.get("transport") or self.transport
        elif kind == "end":
            self.ended = True
            self.final_accuracy = rec.get("final_accuracy")
            self.recorder_overhead_s = rec.get("recorder_overhead_s")
            self.transport = rec.get("transport") or self.transport

    def ingest_many(self, records) -> None:
        for rec in records:
            self.ingest(rec)

    @classmethod
    def from_journal(cls, path: str) -> "MetricsStore":
        store = cls()
        store.ingest_many(read_journal(path))
        return store

    # -- aggregates ----------------------------------------------------------
    @property
    def n_dispatches(self) -> int:
        return len(self._dispatches)

    @property
    def n_completions(self) -> int:
        return len(self._completions)

    @property
    def n_rounds(self) -> int:
        return len(self._rounds)

    def rounds(self) -> list[dict]:
        """Round records in round order."""
        return [self._rounds[r] for r in sorted(self._rounds)]

    def virtual_time(self) -> float:
        """Latest virtual timestamp seen on any record."""
        times = [rec.get("t", 0.0) for rec in self._rounds.values()]
        times += [rec.get("t", 0.0) for rec in self._completions.values()]
        return float(max(times, default=0.0))

    def wall_time(self) -> float:
        """Total engine wall seconds (sum of per-round wall_time)."""
        return float(sum(rec.get("wall_time", 0.0) for rec in self._rounds.values()))

    def clients_per_vsec(self) -> float:
        """Completed client updates per virtual second."""
        vt = self.virtual_time()
        n = self.n_completions or sum(
            len(rec.get("selected") or []) for rec in self._rounds.values()
        )
        return n / vt if vt > 0 else float("nan")

    def clients_per_wall_sec(self) -> float:
        wall = self.wall_time()
        n = self.n_completions or sum(
            len(rec.get("selected") or []) for rec in self._rounds.values()
        )
        return n / wall if wall > 0 else float("nan")

    def staleness_values(self) -> np.ndarray:
        """Per-completion staleness (async); falls back to round means."""
        vals = [
            rec["staleness"]
            for rec in self._completions.values()
            if rec.get("staleness") is not None
        ]
        if not vals:
            vals = [
                rec["staleness"]
                for rec in self._rounds.values()
                if rec.get("staleness") is not None
            ]
        return np.asarray(vals, dtype=float)

    def staleness_quantiles(self) -> dict:
        vals = self.staleness_values()
        if vals.size == 0:
            return {"mean": None, "p50": None, "p90": None, "p99": None}
        return {
            "mean": float(vals.mean()),
            "p50": float(np.quantile(vals, 0.50)),
            "p90": float(np.quantile(vals, 0.90)),
            "p99": float(np.quantile(vals, 0.99)),
        }

    def drop_rate(self) -> float | None:
        """Dropped / sampled clients over all closed rounds (semisync)."""
        dropped = sampled = 0
        seen = False
        for rec in self._rounds.values():
            extras = rec.get("extras") or {}
            if "n_dropped" not in extras:
                continue
            seen = True
            n_drop = int(extras["n_dropped"])
            dropped += n_drop
            sampled += len(rec.get("selected") or []) + n_drop
        if not seen or sampled == 0:
            return None
        return dropped / sampled

    def accuracy_series(self) -> list[tuple[int, float]]:
        return [
            (r, rec["test_accuracy"])
            for r, rec in sorted(self._rounds.items())
            if rec.get("test_accuracy") is not None
        ]

    def best_accuracy(self) -> float | None:
        series = self.accuracy_series()
        return max(v for _, v in series) if series else None

    def last_accuracy(self) -> float | None:
        series = self.accuracy_series()
        return series[-1][1] if series else None

    def trajectory(self, extra_key: str) -> list[tuple[int, float]]:
        """A controller's per-round extras series (deadline, limit, ...)."""
        return [
            (r, (rec.get("extras") or {})[extra_key])
            for r, rec in sorted(self._rounds.items())
            if extra_key in (rec.get("extras") or {})
        ]

    def job_timing(self) -> dict:
        """Backend job-timing aggregates (empty dict when never collected)."""
        jobs = list(self._jobs.values())
        if not jobs:
            return {}
        queue = np.array([j.get("queue_wait_s", 0.0) for j in jobs], dtype=float)
        compute = np.array([j.get("compute_s", 0.0) for j in jobs], dtype=float)
        pickle_b = sum(int(j.get("pickle_bytes", 0)) for j in jobs)
        out = {
            "n_jobs": len(jobs),
            "queue_wait_mean_s": float(queue.mean()),
            "compute_mean_s": float(compute.mean()),
            "compute_total_s": float(compute.sum()),
            "pickle_total_bytes": pickle_b,
        }
        # per-job wire bytes exist only on remote-backend runs
        sent = sum(int(j.get("send_bytes", 0)) for j in jobs)
        recv = sum(int(j.get("recv_bytes", 0)) for j in jobs)
        if sent or recv:
            out["wire_sent_bytes"] = sent
            out["wire_recv_bytes"] = recv
        return out

    def to_dict(self) -> dict:
        """Everything a bench or dashboard needs, JSON-safe."""
        return {
            "algorithm": self.meta.get("algorithm"),
            "policy": self.meta.get("policy"),
            "backend": self.meta.get("backend"),
            "streaming": self.meta.get("streaming"),
            "n_rounds": self.n_rounds,
            "n_dispatches": self.n_dispatches,
            "n_completions": self.n_completions,
            "virtual_time": self.virtual_time(),
            "wall_time": self.wall_time(),
            "clients_per_vsec": _noneify(self.clients_per_vsec()),
            "clients_per_wall_sec": _noneify(self.clients_per_wall_sec()),
            "staleness": self.staleness_quantiles(),
            "drop_rate": self.drop_rate(),
            "final_accuracy": self.final_accuracy
            if self.final_accuracy is not None
            else self.last_accuracy(),
            "best_accuracy": self.best_accuracy(),
            "deadline_trajectory": self.trajectory("deadline"),
            "concurrency_trajectory": self.trajectory("concurrency_limit"),
            "job_timing": self.job_timing(),
            "profile": self.profile,
            "transport": self.transport,
            "n_warnings": len(self.warnings),
            "recorder_overhead_s": self.recorder_overhead_s,
            "snapshots": self.snapshots,
            "resumes": self.resumes,
            "stopped": self.stopped,
            "ended": self.ended,
        }

    def summary(self) -> str:
        """Human-readable one-shot report (``repro watch --summary``)."""
        d = self.to_dict()
        state = "finished" if d["ended"] else ("stopped" if d["stopped"] else "running")
        lines = [
            f"run:        {d['algorithm']} / {d['policy']} / "
            f"backend={d['backend']}"
            + ("+stream" if d["streaming"] else "")
            + f"  [{state}]"
            + (f"  (+{d['resumes']} resume)" if d["resumes"] else ""),
            f"rounds:     {d['n_rounds']}   completions: {d['n_completions']}"
            f"   snapshots: {d['snapshots']}   warnings: {d['n_warnings']}",
            f"virtual:    {d['virtual_time']:.2f}s"
            f"   clients/vsec: {_fmt(d['clients_per_vsec'])}",
            f"wall:       {d['wall_time']:.2f}s"
            f"   clients/sec:  {_fmt(d['clients_per_wall_sec'])}",
        ]
        if d["profile"]:
            from repro.observe.profile import format_hotpath

            lines.append(f"hotpath:    {format_hotpath(d['profile'])}")
        if d["recorder_overhead_s"] is not None:
            lines.append(
                f"recorder:   {d['recorder_overhead_s'] * 1e3:.1f}ms in hooks"
            )
        q = d["staleness"]
        if q["mean"] is not None:
            lines.append(
                f"staleness:  mean={q['mean']:.2f}  p50={q['p50']:.1f}  "
                f"p90={q['p90']:.1f}  p99={q['p99']:.1f}"
            )
        if d["drop_rate"] is not None:
            lines.append(f"drop rate:  {d['drop_rate']:.3f}")
        if d["final_accuracy"] is not None:
            best = d["best_accuracy"]
            lines.append(
                f"accuracy:   last={d['final_accuracy']:.4f}"
                + (f"  best={best:.4f}" if best is not None else "")
            )
        for name, key in (("deadline", "deadline_trajectory"),
                          ("conc.lim", "concurrency_trajectory")):
            traj = d[key]
            if traj:
                vals = [v for _, v in traj]
                lines.append(
                    f"{name}:   first={vals[0]:.3g}  last={vals[-1]:.3g}  "
                    f"min={min(vals):.3g}  max={max(vals):.3g}"
                )
        jt = d["job_timing"]
        if jt:
            lines.append(
                f"jobs:       n={jt['n_jobs']}  "
                f"queue~{jt['queue_wait_mean_s'] * 1e3:.2f}ms  "
                f"compute~{jt['compute_mean_s'] * 1e3:.2f}ms  "
                f"pickled {jt['pickle_total_bytes'] / 1e6:.2f}MB"
            )
        tr = d["transport"]
        if tr and tr.get("transport") == "pool":
            line = (
                f"transport:  pool  jobs={tr.get('jobs', 0)}"
                f"  tasks={tr.get('pool_tasks', 0)}"
                f"  batch={tr.get('job_batch') or 1}"
            )
            saved = tr.get("shm_bytes_saved", 0)
            if saved:
                line += f"  shm saved {saved / 1e6:.2f}MB"
            lines.append(line)
        elif tr:
            line = (
                f"network:    workers={tr.get('workers_seen', 0)}"
                f" (lost {tr.get('workers_lost', 0)})  "
                f"sent {tr.get('bytes_sent', 0) / 1e6:.2f}MB  "
                f"recv {tr.get('bytes_received', 0) / 1e6:.2f}MB  "
                f"requeued {tr.get('requeued_jobs', 0)}"
            )
            saved = tr.get("bytes_saved", 0)
            if saved:
                line += f"  saved {saved / 1e6:.2f}MB"
            lines.append(line)
        return "\n".join(lines)


def _noneify(v: float) -> float | None:
    return None if (isinstance(v, float) and np.isnan(v)) else v


def _fmt(v: float | None) -> str:
    return "n/a" if v is None else f"{v:.2f}"
