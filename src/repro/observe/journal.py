"""Append-only JSONL run journal: one record per typed event.

A :class:`RunRecorder` hooks into :class:`~repro.runtime.events.EventCore`
and turns a run into an operable artifact under ``<run_dir>/``:

* ``journal.jsonl`` — schema-versioned, append-only; one JSON object per
  line.  Record types:

  ==========  ============================================================
  type        contents
  ==========  ============================================================
  meta        schema version, algorithm/policy/backend names, client count
  resume      a resumed run re-attached at this round / virtual time
  dispatch    seq, client, round key, latency, late flag, server version
  completion  seq, client, arrival time, latency, staleness (async)
  tick        deadline tick: round index + phase (``open`` / ``close``)
  job         per-job backend timing: queue wait, compute wall, pickle B
  round       the closed round's full record (same schema as history JSON)
  snapshot    a resumable state snapshot was written (path + model hash)
  warning     a ``repro.*`` logger warning raised while recording
  stop        the run stopped early at a round boundary (checkpointed)
  profile     hot-path per-phase wall breakdown + clients/sec (profiled
              runs; see :class:`repro.observe.profile.HotPathProfiler`)
  end         the run completed; final accuracy and round count
  ==========  ============================================================

  ``stop`` / ``end`` records additionally carry a ``transport`` dict when
  the backend reports wire-level stats (the remote backend: bytes
  sent/received, workers seen/lost, requeued jobs).

* ``snapshots/round_NNNN.pkl`` — periodic full-state snapshots
  (:mod:`repro.observe.snapshot`) enabling ``repro run --resume``.

Records are buffered in memory and flushed at every round boundary (plus
``begin``/``stop``/``end``), so the journal on disk is always consistent at
a round granularity — a crash loses at most the open round's events, which
a resume replays deterministically anyway.  While attached, the recorder
also captures ``logging`` warnings from the ``repro`` logger hierarchy as
``warning`` records (the structured successor of ad-hoc stderr prints in
engine hot paths).
"""

from __future__ import annotations

import functools
import json
import logging
import os
import time

import numpy as np

from repro.observe.snapshot import model_hash, save_snapshot, snapshot_core
from repro.simulation.serialization import round_record_to_dict

__all__ = ["JOURNAL_SCHEMA_VERSION", "RunRecorder", "journal_path"]

JOURNAL_SCHEMA_VERSION = 1


def journal_path(run_dir: str) -> str:
    return os.path.join(run_dir, "journal.jsonl")


def _timed_hook(fn):
    """Accumulate a hook's wall time into ``recorder.hook_seconds``.

    Applied to every hook the event core calls (not to their internal
    helpers, which would double-count), so the recorder carries its own
    overhead accounting: the ``stop``/``end`` records report how much of
    the run's wall clock the journal cost.
    """

    @functools.wraps(fn)
    def wrapped(self, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return fn(self, *args, **kwargs)
        finally:
            self.hook_seconds += time.perf_counter() - t0

    return wrapped


class _JournalLogHandler(logging.Handler):
    """Route ``repro.*`` warnings into the journal while a run records."""

    def __init__(self, recorder: "RunRecorder") -> None:
        super().__init__(level=logging.WARNING)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        self._recorder.emit(
            "warning",
            logger=record.name,
            level=record.levelname.lower(),
            message=record.getMessage(),
        )


class RunRecorder:
    """Append run events to ``<run_dir>/journal.jsonl`` + periodic snapshots.

    Args:
        run_dir: directory owning the journal (created if missing); resumed
            runs append to the existing journal.
        snapshot_every: write a full-state snapshot every N closed rounds
            (default 1: every round boundary is resumable).
        capture_logs: attach a handler to the ``repro`` logger while the run
            records, persisting warnings as ``warning`` records.
    """

    def __init__(
        self, run_dir: str, snapshot_every: int = 1, capture_logs: bool = True
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.path = journal_path(run_dir)
        self.snapshot_dir = os.path.join(run_dir, "snapshots")
        self.snapshot_every = snapshot_every
        self.capture_logs = capture_logs
        # a crashed writer can leave a torn final line; appending straight
        # onto it would corrupt the first new record too, so close the tear
        # with a newline (the tailer skips the invalid line either way)
        torn = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as f:
                f.seek(-1, os.SEEK_END)
                torn = f.read(1) != b"\n"
        self._fh = open(self.path, "a")
        if torn:
            self._fh.write("\n")
        self._buf: list[str] = []
        self._rounds_since_snapshot = 0
        self._handler: _JournalLogHandler | None = None
        self.n_records = 0
        self.last_snapshot_path: str | None = None
        #: cumulative wall seconds spent inside the event-core hooks — the
        #: recorder's own overhead accounting (reported on stop/end records)
        self.hook_seconds = 0.0

    # -- low-level -----------------------------------------------------------
    def emit(self, type_: str, **fields) -> None:
        """Buffer one journal record (written at the next flush point)."""
        self._buf.append(json.dumps({"type": type_, **fields}))
        self.n_records += 1

    def flush(self) -> None:
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf = []
        self._fh.flush()

    def close(self) -> None:
        self._detach_logs()
        self.flush()
        self._fh.close()

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _attach_logs(self) -> None:
        if self.capture_logs and self._handler is None:
            self._handler = _JournalLogHandler(self)
            logging.getLogger("repro").addHandler(self._handler)

    def _detach_logs(self) -> None:
        if self._handler is not None:
            logging.getLogger("repro").removeHandler(self._handler)
            self._handler = None

    # -- EventCore hooks -----------------------------------------------------
    @_timed_hook
    def begin(self, core, resumed: bool = False) -> None:
        self._attach_logs()
        if resumed:
            self.emit(
                "resume",
                t=core.clock.now,
                round=len(core.history.records),
                wall=time.time(),
            )
        else:
            # streaming is an async-policy property; round policies are batch
            streaming_active = getattr(core.policy, "_streaming_active", None)
            self.emit(
                "meta",
                schema=JOURNAL_SCHEMA_VERSION,
                algorithm=core.history.algorithm,
                policy=type(core.policy).__name__,
                backend=core.backend.name,
                streaming=bool(streaming_active(core))
                if streaming_active is not None
                else False,
                num_clients=core.ctx.num_clients,
                seed=core.ctx.config.seed,
                rounds_planned=core.ctx.config.rounds,
                wall=time.time(),
            )
        self.flush()

    @_timed_hook
    def on_dispatch(self, core, dispatch, delay: float) -> None:
        """One unit of client work was issued (its completion is scheduled)."""
        self.emit(
            "dispatch",
            t=core.clock.now,
            seq=dispatch.seq,
            client=dispatch.client_id,
            round=dispatch.round_idx,
            latency=float(delay),
            late=bool(dispatch.late),
            version=dispatch.version,
        )

    @_timed_hook
    def on_completion(self, core, comp, now: float) -> None:
        self.emit(
            "completion",
            t=float(now),
            seq=comp.dispatch.seq,
            client=comp.dispatch.client_id,
            round=comp.dispatch.round_idx,
            latency=float(comp.latency),
            late=bool(comp.dispatch.late),
            staleness=_async_staleness(core, comp),
        )

    @_timed_hook
    def on_tick(self, core, tick) -> None:
        self.emit("tick", t=core.clock.now, round=tick.round_idx, phase=tick.phase)

    @_timed_hook
    def on_job(self, core, job, result) -> None:
        if result.timing is not None:
            self.emit(
                "job",
                round=job.round_idx,
                client=job.client_id,
                **result.timing,
            )

    @_timed_hook
    def on_round(self, core) -> None:
        """A round record just closed: journal it, maybe snapshot, flush."""
        rec = core.history.records[-1]
        self.emit("round", t=core.clock.now, **round_record_to_dict(rec))
        self._rounds_since_snapshot += 1
        if self._rounds_since_snapshot >= self.snapshot_every:
            self._rounds_since_snapshot = 0
            self.write_snapshot(core)
        self.flush()

    def write_snapshot(self, core) -> str:
        snap = snapshot_core(core)
        path = os.path.join(self.snapshot_dir, f"round_{snap['rounds']:04d}.pkl")
        save_snapshot(path, snap)
        self.last_snapshot_path = path
        self.emit(
            "snapshot",
            t=core.clock.now,
            round=snap["rounds"],
            path=os.path.relpath(path, self.run_dir),
            model_hash=snap["model_hash"],
            pending_events=len(snap["clock_heap"]),
        )
        return path

    @_timed_hook
    def on_stop(self, core) -> None:
        self.emit(
            "stop",
            t=core.clock.now,
            round=len(core.history.records),
            wall=time.time(),
            recorder_overhead_s=round(self.hook_seconds, 6),
            **_transport_field(core),
        )
        self.flush()

    @_timed_hook
    def finish(self, core) -> None:
        profiler = getattr(core, "profiler", None)
        if profiler is not None:
            # additive record (schema version unchanged): the hot-path
            # per-phase wall breakdown; `repro watch --summary` renders it
            # as the `hotpath:` line.  Emitted for stopped runs too — the
            # partial leg's profile is still real
            self.emit("profile", t=core.clock.now, **profiler.as_dict())
        if not getattr(core, "stopped", False):
            final = core.history.final_accuracy
            self.emit(
                "end",
                t=core.clock.now,
                round=len(core.history.records),
                final_accuracy=None if np.isnan(final) else float(final),
                wall=time.time(),
                recorder_overhead_s=round(self.hook_seconds, 6),
                **_transport_field(core),
            )
        self._detach_logs()
        self.flush()


def _transport_field(core) -> dict:
    """``{"transport": {...}}`` when the backend reports wire stats, else {}."""
    stats = getattr(core.backend, "transport_stats", lambda: {})()
    return {"transport": stats} if stats else {}


def _async_staleness(core, comp) -> float | None:
    """Server-version staleness of a completion (async policies only)."""
    st = getattr(core.policy, "_state", None)
    if isinstance(st, dict) and "version" in st:
        return float(st["version"] - comp.dispatch.version)
    return None
