"""Round-boundary snapshots of the event core — the resume half of the journal.

A snapshot is everything :class:`~repro.runtime.events.EventCore.run` needs
to continue a run mid-flight *bit-identically*: the global model vector, the
virtual clock (``now`` plus the pending event heap — in-flight completions
ride along with their precomputed updates), the history so far, the
client-state store, the model's buffer estimate, and the mutable state of
the three stateful components (algorithm, policy, cohort sampler).

Component state is captured structurally — ``vars(obj)`` minus *live*
resources (context, model, dataset, backend) and minus plain functions —
and restored with ``__dict__.update`` so object identity is preserved: the
engine facade, the backend and the policy keep pointing at the same
algorithm instance they were built with.  Everything the runs depend on for
randomness is keyed-stream counters (``np.random.default_rng((seed, tag,
idx))``), so "RNG state" is just those counters inside the packed
components; no global RNG state exists to capture.

Determinism makes this cheap: a run is a pure function of (spec, seed), so
resuming from the last round boundary replays the exact event sequence the
uninterrupted run would have produced (``tests/test_observe.py`` pins
bit-identical histories across all engine kinds and backends).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import time
import types

import numpy as np

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "snapshot_core",
    "restore_core",
    "save_snapshot",
    "load_snapshot",
    "latest_snapshot",
    "model_hash",
]

SNAPSHOT_SCHEMA_VERSION = 1

# plain functions/methods never carry run state and often don't pickle
# (lambdas, closures over builders); callable *objects* — samplers,
# controllers — do carry state and must be packed
_FUNC_TYPES = (types.FunctionType, types.MethodType, types.BuiltinFunctionType)

_SNAP_RE = re.compile(r"round_(\d+)\.pkl$")


def _live_types() -> tuple:
    # lazy: repro.observe must import before the heavyweight modules do
    from repro.data.registry import FederatedDataset
    from repro.nn.module import Module
    from repro.parallel.backend import ExecutionBackend
    from repro.simulation.context import SimulationContext

    return (SimulationContext, Module, FederatedDataset, ExecutionBackend)


def model_hash(x: np.ndarray | None) -> str | None:
    """Short content hash of a parameter vector (journal/snapshot stamping)."""
    if x is None:
        return None
    return hashlib.sha256(np.ascontiguousarray(x).tobytes()).hexdigest()[:16]


def pack_component(obj) -> dict | None:
    """Picklable state of one engine component (None for a missing one)."""
    if obj is None:
        return None
    live = _live_types()
    return {
        k: v
        for k, v in vars(obj).items()
        if not isinstance(v, live) and not isinstance(v, _FUNC_TYPES)
    }


def restore_component(obj, state: dict | None) -> None:
    """Overwrite a component's packed attributes in place (identity kept)."""
    if obj is not None and state is not None:
        obj.__dict__.update(state)


def snapshot_core(core) -> dict:
    """Capture a resumable image of the core at a round boundary."""
    prepare = getattr(core.policy, "prepare_snapshot", None)
    if prepare is not None:
        # streaming policies hold backend job handles whose futures cannot
        # be pickled; they materialize outstanding results first (jobs are
        # pure, so collecting early only changes wall-clock overlap)
        prepare(core)
    store = core.state_store
    model = core.ctx.model
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "rounds": len(core.history.records),
        "seq": core._seq,
        "x": core.x.copy(),
        "model_hash": model_hash(core.x),
        "clock_now": core.clock.now,
        "clock_seq": core.clock._seq,
        "clock_heap": list(core.clock._heap),
        "history": core.history,
        "store_state": dict(store._state),
        "store_versions": dict(store._versions),
        "store_stale": store.stale_commits,
        "buffers": model.get_buffers(copy=True) if model.buffers else None,
        "algorithm": pack_component(core.algorithm),
        "policy": pack_component(core.policy),
        "client_sampler": pack_component(core.client_sampler),
    }


def restore_core(core, snap: dict) -> None:
    """Rebuild a freshly constructed core's state from :func:`snapshot_core`.

    Called by :meth:`EventCore.run` after ``setup``/``capture_initial`` have
    run on the fresh objects, so every attribute the snapshot carries simply
    overwrites its just-initialized counterpart.
    """
    if snap.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"snapshot schema {snap.get('schema')!r} != "
            f"{SNAPSHOT_SCHEMA_VERSION} (incompatible repro version?)"
        )
    from repro.runtime.clock import VirtualClock

    core.x = snap["x"].copy()
    core._seq = snap["seq"]
    core.history = snap["history"]
    clock = VirtualClock()
    clock.now = snap["clock_now"]
    clock._seq = snap["clock_seq"]
    clock._heap = list(snap["clock_heap"])
    core.clock = clock
    store = core.state_store
    store._state = dict(snap["store_state"])
    store._versions = dict(snap["store_versions"])
    store.stale_commits = snap["store_stale"]
    if snap["buffers"] is not None:
        core.ctx.model.set_buffers(snap["buffers"])
    restore_component(core.algorithm, snap["algorithm"])
    restore_component(core.policy, snap["policy"])
    restore_component(core.client_sampler, snap["client_sampler"])
    # packed wall-clock anchors are stale by definition
    if hasattr(core.policy, "_t0"):
        core.policy._t0 = time.perf_counter()


def save_snapshot(path: str, snap: dict) -> None:
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "wb") as f:
        pickle.dump(snap, f, protocol=pickle.HIGHEST_PROTOCOL)


def load_snapshot(path: str) -> dict:
    with open(path, "rb") as f:
        return pickle.load(f)


def latest_snapshot(run_dir: str) -> str | None:
    """Path of the newest ``snapshots/round_*.pkl`` under a run dir."""
    snap_dir = os.path.join(run_dir, "snapshots")
    if not os.path.isdir(snap_dir):
        return None
    best, best_round = None, -1
    for name in os.listdir(snap_dir):
        m = _SNAP_RE.fullmatch(name)
        if m and int(m.group(1)) > best_round:
            best, best_round = os.path.join(snap_dir, name), int(m.group(1))
    return best
