"""Federation over the wire: aggregator service, remote workers, framing.

The remote analogue of :mod:`repro.parallel` — the same
:class:`~repro.parallel.ClientJob` -> :class:`~repro.parallel.ClientResult`
contract, executed by worker *processes over TCP* instead of a local pool:

* :mod:`repro.net.framing` — length-prefixed pickle frames with a
  versioned handshake (stdlib only);
* :mod:`repro.net.service` — the :class:`AggregatorService` listener and
  the :class:`RemoteBackend` registered as ``backend="remote"``;
* :mod:`repro.net.worker` — the ``repro worker --connect`` process.

Start an aggregator-driven run with ``repro serve``, attach workers with
``repro worker``; histories are bit-identical to the serial backend.
"""

from repro.net.framing import (
    JOB_SCHEMA_VERSION,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    XREF_CACHE_VERSIONS,
    FrameDecoder,
    FrameError,
    MsgType,
    XRefToken,
    encode_frame,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.net.service import AggregatorService, RemoteBackend, WorkerError
from repro.net.worker import WorkerClient, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_SCHEMA_VERSION",
    "MAX_FRAME_BYTES",
    "XREF_CACHE_VERSIONS",
    "XRefToken",
    "MsgType",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "parse_address",
    "AggregatorService",
    "RemoteBackend",
    "WorkerError",
    "WorkerClient",
    "run_worker",
]
