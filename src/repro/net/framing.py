"""Length-prefixed pickle frames over TCP — the federation wire format.

One frame is a fixed 5-byte header followed by a pickled payload::

    +----------------+--------------+------------------------+
    | length (u32 BE)| type (u8)    | pickle(payload)        |
    +----------------+--------------+------------------------+

``length`` counts the payload bytes only, ``type`` is a :class:`MsgType`
tag.  Stdlib ``socket`` / ``struct`` / ``pickle`` only — no dependencies.

The conversation (aggregator = server, worker = client):

* ``REGISTER``  worker -> server: ``{"protocol", "job_schema", "pid",
  "host"}`` — the versioned handshake.  A version mismatch is answered
  with an ``ERROR`` frame and the connection is closed, so an old worker
  fails loudly instead of mis-decoding jobs.
* ``WELCOME``   server -> worker: ``{"worker_id", "spec",
  "heartbeat_interval"}`` — the serialized
  :class:`~repro.experiments.ExperimentSpec` the worker rebuilds its
  replica from, plus how often to beat.
* ``JOB``       server -> worker: ``(seq, ClientJob)``.
* ``JOB_BATCH`` server -> worker: ``([(seq, ClientJob), ...],
  {version: ndarray})`` — one frame for a whole assignment batch.  Jobs in
  the batch may carry an :class:`XRefToken` instead of the broadcast
  vector; the dict inlines only the versions this worker has not yet been
  sent (the worker keeps a small version cache mirrored by the service),
  so the model ships once per version per worker, not once per job.
* ``RESULT``    worker -> server: ``(seq, ClientResult | None, error_str |
  None)`` — always per job, batched or not, which keeps requeue
  accounting exactly-once.
* ``HEARTBEAT`` worker -> server: ``None`` (liveness only).
* ``SHUTDOWN``  server -> worker: ``None`` — drain and exit.
* ``ERROR``     either direction: a string; the connection is done.

Two consumption styles are provided: blocking exact-read helpers
(:func:`send_frame` / :func:`recv_frame`) for the worker's simple loop, and
an incremental :class:`FrameDecoder` for the aggregator's non-blocking
``selectors`` loop, which receives arbitrary chunks.

Security note: frames are **pickle** and must only cross trusted links
(localhost, a private cluster network) — the same trust model as
``multiprocessing``'s own connections.
"""

from __future__ import annotations

import enum
import pickle
import socket
import struct
from dataclasses import dataclass

__all__ = [
    "PROTOCOL_VERSION",
    "JOB_SCHEMA_VERSION",
    "MAX_FRAME_BYTES",
    "XREF_CACHE_VERSIONS",
    "MsgType",
    "XRefToken",
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "parse_address",
]

#: bumped on any change to the framing or handshake itself
#: (v2: JOB_BATCH frames + per-worker x_ref version dedup)
PROTOCOL_VERSION = 2
#: bumped on any change to the ClientJob/ClientResult dataclasses — a field
#: added to the job contract must not be silently dropped by an old worker
#: (v2: x_ref may arrive as an XRefToken resolved from the batch inline dict)
JOB_SCHEMA_VERSION = 2

_HEADER = struct.Struct(">IB")

#: refuse absurd frames before allocating for them (a corrupt or hostile
#: header would otherwise ask for gigabytes); 1 GiB clears any real job
MAX_FRAME_BYTES = 1 << 30


class MsgType(enum.IntEnum):
    REGISTER = 1
    WELCOME = 2
    JOB = 3
    RESULT = 4
    HEARTBEAT = 5
    SHUTDOWN = 6
    ERROR = 7
    JOB_BATCH = 8


@dataclass(frozen=True)
class XRefToken:
    """Placeholder for a broadcast vector already shipped to this worker.

    The aggregator versions each distinct ``x_ref`` object it is asked to
    ship and sends the actual array at most once per version per worker
    (inlined in a ``JOB_BATCH`` frame's version dict); every other job just
    carries this token, and the worker substitutes its cached copy before
    executing.  Both sides cap the cache at :data:`XREF_CACHE_VERSIONS`
    with identical insertion-ordered eviction, so the mirror never skews.
    """

    version: int


#: how many broadcast-vector versions each side of a connection caches;
#: async servers advance the version on every apply, so a small window
#: covers the in-flight set while bounding worker memory
XREF_CACHE_VERSIONS = 8


class FrameError(RuntimeError):
    """A malformed frame or a protocol violation on the wire."""


def encode_frame(msg_type: MsgType, payload: object = None) -> bytes:
    """One wire-ready frame: header + pickled payload."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _HEADER.pack(len(body), int(msg_type)) + body


def _decode_header(header: bytes) -> tuple[int, MsgType]:
    length, type_code = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame announces {length} bytes (corrupt header?)")
    try:
        return length, MsgType(type_code)
    except ValueError:
        raise FrameError(f"unknown message type {type_code}") from None


class FrameDecoder:
    """Incremental frame parser for a non-blocking receive loop.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    feeds and yields every complete ``(MsgType, payload, frame_bytes)``
    message (``frame_bytes`` includes the header — the aggregator accounts
    per-job wire bytes from it).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[MsgType, object, int]]:
        self._buf.extend(data)
        out: list[tuple[MsgType, object, int]] = []
        while True:
            if len(self._buf) < _HEADER.size:
                return out
            length, msg_type = _decode_header(bytes(self._buf[: _HEADER.size]))
            end = _HEADER.size + length
            if len(self._buf) < end:
                return out
            body = bytes(self._buf[_HEADER.size:end])
            del self._buf[:end]
            out.append((msg_type, pickle.loads(body), end))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or None on a clean EOF at a frame boundary."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf:
                raise FrameError(
                    f"connection closed mid-frame ({len(buf)}/{n} bytes)"
                )
            return None
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock: socket.socket, msg_type: MsgType, payload: object = None) -> int:
    """Blocking send of one frame; returns the bytes put on the wire."""
    frame = encode_frame(msg_type, payload)
    sock.sendall(frame)
    return len(frame)


def recv_frame(sock: socket.socket) -> tuple[MsgType, object] | None:
    """Blocking receive of one frame; None on a clean peer close."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, msg_type = _decode_header(header)
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise FrameError("connection closed between header and payload")
    return msg_type, pickle.loads(body)


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"``; port 0 asks the OS for an ephemeral port."""
    host, sep, port_s = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"backend address must look like HOST:PORT, got {address!r}"
        )
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"backend address port must be an integer, got {port_s!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"backend address port out of range: {port}")
    return host, port
