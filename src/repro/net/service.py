"""The federation aggregator: remote workers behind the backend contract.

Two layers live here:

* :class:`AggregatorService` — a long-lived TCP listener (one background
  I/O thread, stdlib ``selectors``) that accepts worker registrations,
  schedules encoded :class:`~repro.parallel.ClientJob` frames across the
  registered workers (least-loaded first, bounded by a per-worker in-flight
  cap), collects results, and detects worker death — clean disconnect *or*
  heartbeat silence — by **requeueing** the dead worker's in-flight jobs
  onto survivors.  Jobs are pure functions of their payload, so a requeued
  job lands bit-identically wherever it re-executes.
* :class:`RemoteBackend` — the :class:`~repro.parallel.ExecutionBackend`
  adapter (registry name ``"remote"``): ``bind`` starts the service and
  waits for ``workers`` registrations, ``submit``/``collect`` speak the
  same streaming contract every other backend speaks, ``close`` shuts the
  service down.  Every engine kind, the recorder, snapshots and ``repro
  watch`` therefore work over the wire unchanged.

The aggregator is the engine process itself — ``repro serve`` runs an
ordinary experiment whose backend listens for workers, mirroring openfl's
aggregator/collaborator split.  Deployment knobs that are not experiment
science ride environment variables (overridable per constructor):

==============================  =============================================
``REPRO_NET_HEARTBEAT``         worker heartbeat interval, seconds (1.0)
``REPRO_NET_HEARTBEAT_TIMEOUT`` silence declaring a worker dead (5.0)
``REPRO_NET_INFLIGHT``          per-worker in-flight job cap (4)
``REPRO_NET_WORKER_TIMEOUT``    bind-time wait for registrations (60)
``REPRO_BACKEND_ADDRESS``       default ``host:port`` for ``backend=remote``
==============================  =============================================
"""

from __future__ import annotations

import os
import selectors
import socket
import sys
import threading
import time
from collections import OrderedDict, deque
from dataclasses import replace

import numpy as np

from repro.net.framing import (
    JOB_SCHEMA_VERSION,
    PROTOCOL_VERSION,
    XREF_CACHE_VERSIONS,
    FrameDecoder,
    MsgType,
    XRefToken,
    encode_frame,
    parse_address,
)
from repro.parallel.backend import ClientResult, ExecutionBackend, JobHandle

__all__ = ["AggregatorService", "RemoteBackend", "WorkerError"]

_RECV_CHUNK = 1 << 16


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    return float(raw) if raw else default


class WorkerError(RuntimeError):
    """A job raised on a remote worker; carries the worker-side traceback."""


class _Conn:
    """Per-connection server-side state (I/O thread only, except counters)."""

    __slots__ = (
        "sock", "addr", "decoder", "outbox", "worker_id",
        "registered", "last_seen", "inflight", "closing", "sent_versions",
    )

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.decoder = FrameDecoder()
        self.outbox = bytearray()
        self.worker_id: int | None = None
        self.registered = False
        self.last_seen = time.monotonic()
        self.inflight: set[int] = set()
        self.closing = False  # flush the outbox, then close (handshake error)
        # server-side mirror of the worker's broadcast-version cache:
        # inserted exactly when a version is inlined on this conn, evicted
        # oldest-inserted-first at the same cap the worker uses — TCP frame
        # ordering keeps the two caches identical without any round-trip
        self.sent_versions: "OrderedDict[int, None]" = OrderedDict()


class AggregatorService:
    """Listen, register workers, schedule jobs, survive worker death.

    Thread model: the engine thread calls :meth:`submit` / :meth:`collect`
    / :meth:`stop`; one background thread owns every socket and the
    selector.  Shared queues and result maps are guarded by a single lock
    whose condition wakes blocking collects and registration waits.
    """

    def __init__(
        self,
        address: str,
        spec_payload: dict | None = None,
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        inflight_cap: int | None = None,
        batch_limit: int | None = None,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.spec_payload = spec_payload
        #: jobs per JOB_BATCH frame (further bounded by a worker's in-flight
        #: room); 1 keeps per-job scheduling granularity, the pre-batching
        #: behavior — broadcast-vector dedup is on either way
        self.batch_limit = max(1, batch_limit or 1)
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else _env_float("REPRO_NET_HEARTBEAT", 1.0)
        )
        self.heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else _env_float("REPRO_NET_HEARTBEAT_TIMEOUT", 5.0)
        )
        self.inflight_cap = max(
            1,
            inflight_cap
            if inflight_cap is not None
            else int(_env_float("REPRO_NET_INFLIGHT", 4)),
        )
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        # seq -> (wire job, collect_timing, x_ref version | None): kept
        # until the result lands, so a requeue after worker death re-enters
        # scheduling with nothing lost (frames are encoded per assignment,
        # because the batch grouping and which versions to inline both
        # depend on the worker the jobs land on)
        self._wire_jobs: dict[int, tuple[object, bool, int | None]] = {}
        # per-seq share of the last assignment frame, for send_bytes timing
        self._sent_bytes: dict[int, int] = {}
        # broadcast-vector registry: the engine's x_ref is versioned by
        # object identity (the server mutates it only by replacement) and
        # shipped at most once per version per worker
        self._xref_obj: object | None = None
        self._xref_next_version = 0
        self._xref_store: dict[int, np.ndarray] = {}
        self._pending: deque[int] = deque()
        self._results: dict[int, ClientResult] = {}
        self._errors: dict[int, str] = {}
        self._conns: dict[int, _Conn] = {}  # keyed by fd
        self._next_worker_id = 0
        self._listener: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._thread_error: BaseException | None = None
        self._stopping = False
        # cumulative transport counters (read via stats())
        self._bytes_sent = 0
        self._bytes_received = 0
        self._workers_seen = 0
        self._workers_lost = 0
        self._requeued_jobs = 0
        self._batch_frames = 0
        self._bytes_saved = 0  # x_ref payloads not re-shipped (dedup wins)

    # -- lifecycle (engine thread) -------------------------------------------
    def start(self) -> "AggregatorService":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.setblocking(False)
        self.port = listener.getsockname()[1]  # resolve an ephemeral :0
        self._listener = listener
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(listener, selectors.EVENT_READ, "listener")
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._thread = threading.Thread(
            target=self._serve, name="repro-aggregator", daemon=True
        )
        self._thread.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _wake(self) -> None:
        try:
            if self._wake_w is not None:
                self._wake_w.send(b"\x01")
        except OSError:
            pass

    # -- engine-side API ------------------------------------------------------
    def submit(self, seq: int, job) -> None:
        """Queue one job for dispatch; the I/O thread ships it."""
        self.submit_many([(seq, job)])

    def submit_many(self, pairs: list[tuple[int, object]]) -> None:
        """Queue ``(seq, job)`` pairs in one call; the I/O thread ships them.

        The broadcast vector is swapped for an :class:`XRefToken` here (the
        engine thread, where object identity is meaningful); which workers
        still need the actual array is decided per assignment.
        """
        with self._lock:
            self._raise_if_dead()
            for seq, job in pairs:
                version = self._tokenize_locked(job)
                wire_job = (
                    replace(job, x_ref=XRefToken(version))
                    if version is not None
                    else job
                )
                self._wire_jobs[seq] = (
                    wire_job, bool(job.collect_timing), version
                )
                self._pending.append(seq)
        self._wake()

    def _tokenize_locked(self, job) -> int | None:
        """Version ``job.x_ref`` by identity; returns None for inline jobs."""
        ref = getattr(job, "x_ref", None)
        if not isinstance(ref, np.ndarray) or ref.nbytes == 0:
            return None
        if self._xref_obj is not ref:
            version = self._xref_next_version
            self._xref_next_version += 1
            self._xref_obj = ref
            self._xref_store[version] = ref
            # prune superseded versions nothing outstanding references
            # (outstanding wire jobs keep theirs alive for requeue)
            live = {v for _, _, v in self._wire_jobs.values() if v is not None}
            live.add(version)
            for stale in [v for v in self._xref_store if v not in live]:
                del self._xref_store[stale]
        return self._xref_next_version - 1

    def collect(
        self, seqs: list[int], block: bool, no_worker_timeout: float = 60.0
    ) -> dict[int, ClientResult]:
        """Results for ``seqs`` that are ready (all of them when blocking).

        Blocking raises :class:`WorkerError` for a job that raised remotely,
        and :class:`RuntimeError` after ``no_worker_timeout`` seconds spent
        with work outstanding but **zero** registered workers — with at
        least one live worker it waits indefinitely (requeues will land).
        """
        deadline_dead = None
        with self._lock:
            while True:
                self._raise_if_dead()
                for seq in seqs:
                    if seq in self._errors:
                        raise WorkerError(self._errors.pop(seq))
                ready = {s for s in seqs if s in self._results}
                if not block or len(ready) == len(seqs):
                    return {s: self._results.pop(s) for s in seqs if s in ready}
                if self._live_workers():
                    deadline_dead = None
                elif deadline_dead is None:
                    deadline_dead = time.monotonic() + no_worker_timeout
                elif time.monotonic() >= deadline_dead:
                    raise RuntimeError(
                        f"no workers registered for {no_worker_timeout:.0f}s "
                        f"with {len(seqs) - len(ready)} job(s) outstanding; "
                        "start workers with `repro worker --connect "
                        f"{self.address}`"
                    )
                self._wakeup.wait(timeout=0.2)

    def wait_for_workers(self, count: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._live_workers() < count:
                self._raise_if_dead()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"{self._live_workers()}/{count} workers registered "
                        f"within {timeout:.0f}s; start workers with "
                        f"`repro worker --connect {self.address}`"
                    )
                self._wakeup.wait(timeout=min(remaining, 0.2))

    def stats(self) -> dict:
        with self._lock:
            return {
                "transport": "tcp",
                "address": self.address,
                "workers": self._live_workers(),
                "workers_seen": self._workers_seen,
                "workers_lost": self._workers_lost,
                "bytes_sent": self._bytes_sent,
                "bytes_received": self._bytes_received,
                "bytes_saved": self._bytes_saved,
                "batch_frames": self._batch_frames,
                "job_batch": self.batch_limit,
                "requeued_jobs": self._requeued_jobs,
            }

    def _live_workers(self) -> int:
        return sum(1 for c in self._conns.values() if c.registered)

    def _raise_if_dead(self) -> None:
        if self._thread_error is not None:
            raise RuntimeError(
                f"aggregator I/O thread died: {self._thread_error!r}"
            ) from self._thread_error

    # -- I/O thread -----------------------------------------------------------
    def _serve(self) -> None:
        try:
            self._serve_loop()
        except BaseException as exc:  # surface on the engine thread
            with self._lock:
                self._thread_error = exc
                self._wakeup.notify_all()
        finally:
            self._teardown()

    def _serve_loop(self) -> None:
        sel = self._selector
        while True:
            with self._lock:
                if self._stopping:
                    return
            for key, _ in sel.select(timeout=0.05):
                if key.data == "listener":
                    self._accept()
                elif key.data == "wake":
                    try:
                        self._wake_r.recv(4096)
                    except (BlockingIOError, OSError):
                        pass
                else:
                    self._service_conn(key.data, key.events)
            self._check_heartbeats()
            self._assign_pending()

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Conn(sock, addr)
            self._conns[sock.fileno()] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)

    def _service_conn(self, conn: _Conn, events: int) -> None:
        if events & selectors.EVENT_READ:
            try:
                chunk = conn.sock.recv(_RECV_CHUNK)
            except (BlockingIOError, InterruptedError):
                chunk = None
            except OSError:
                self._drop(conn, "connection error")
                return
            if chunk == b"":
                self._drop(conn, "disconnected")
                return
            if chunk:
                try:
                    messages = conn.decoder.feed(chunk)
                except Exception as exc:  # FrameError, unpickling garbage
                    self._drop(conn, f"bad frame: {exc}")
                    return
                for msg_type, payload, nbytes in messages:
                    self._handle_message(conn, msg_type, payload, nbytes)
                    if conn.sock.fileno() < 0:
                        return  # dropped while handling
        if events & selectors.EVENT_WRITE:
            self._flush_outbox(conn)

    def _handle_message(self, conn, msg_type, payload, nbytes: int) -> None:
        conn.last_seen = time.monotonic()
        with self._lock:
            self._bytes_received += nbytes
        if msg_type is MsgType.REGISTER:
            self._register(conn, payload)
        elif msg_type is MsgType.RESULT:
            self._take_result(conn, payload, nbytes)
        elif msg_type is MsgType.HEARTBEAT:
            pass  # last_seen refresh above is the whole point
        elif msg_type is MsgType.ERROR:
            self._drop(conn, f"worker reported: {payload}")
        else:
            self._drop(conn, f"unexpected {msg_type.name} from worker")

    def _register(self, conn: _Conn, payload) -> None:
        info = payload if isinstance(payload, dict) else {}
        proto = info.get("protocol")
        schema = info.get("job_schema")
        if proto != PROTOCOL_VERSION or schema != JOB_SCHEMA_VERSION:
            conn.closing = True  # before queueing: the flush closes on drain
            self._queue_frame(conn, encode_frame(
                MsgType.ERROR,
                f"version mismatch: aggregator speaks protocol "
                f"{PROTOCOL_VERSION} / job schema {JOB_SCHEMA_VERSION}, "
                f"worker sent {proto} / {schema}",
            ))
            return
        with self._lock:
            conn.registered = True
            conn.worker_id = self._next_worker_id
            self._next_worker_id += 1
            self._workers_seen += 1
            self._wakeup.notify_all()
        self._queue_frame(conn, encode_frame(MsgType.WELCOME, {
            "worker_id": conn.worker_id,
            "spec": self.spec_payload,
            "heartbeat_interval": self.heartbeat_interval,
        }))

    def _take_result(self, conn: _Conn, payload, nbytes: int) -> None:
        try:
            seq, result, error = payload
        except (TypeError, ValueError):
            self._drop(conn, f"malformed RESULT payload {payload!r}")
            return
        conn.inflight.discard(seq)
        with self._lock:
            meta = self._wire_jobs.pop(seq, None)
            sent = self._sent_bytes.pop(seq, 0)
            if meta is None:
                # a duplicate from a worker declared dead after the job was
                # requeued and completed elsewhere — exactly-once wins
                return
            if error is not None:
                self._errors[seq] = error
            else:
                if meta[1]:  # collect_timing: stamp wire-byte accounting
                    timing = dict(result.timing or {})
                    timing["send_bytes"] = sent
                    timing["recv_bytes"] = nbytes
                    result = replace(result, timing=timing)
                self._results[seq] = result
            self._wakeup.notify_all()

    def _assign_pending(self) -> None:
        """Ship pending jobs: least-loaded worker first, batched per frame.

        Each iteration takes up to ``batch_limit`` jobs (never more than the
        chosen worker's in-flight room) and encodes them as one
        ``JOB_BATCH`` frame, inlining only the broadcast-vector versions
        this worker has not been sent yet.  With ``batch_limit=1`` the
        scheduling order is exactly the per-job least-loaded behavior.
        """
        while True:
            with self._lock:
                if not self._pending:
                    return
                workers = [
                    c for c in self._conns.values()
                    if c.registered and not c.closing
                    and len(c.inflight) < self.inflight_cap
                ]
                if not workers:
                    return
                conn = min(workers, key=lambda c: (len(c.inflight), c.worker_id))
                room = self.inflight_cap - len(conn.inflight)
                take = min(self.batch_limit, room, len(self._pending))
                seqs = [self._pending.popleft() for _ in range(take)]
                jobs = []
                needed: set[int] = set()
                inline: dict[int, np.ndarray] = {}
                for seq in seqs:
                    wire_job, _, version = self._wire_jobs[seq]
                    if version is not None:
                        needed.add(version)
                        if version in conn.sent_versions or version in inline:
                            # this worker holds (or is receiving) the array
                            # already: the job ships a token only
                            self._bytes_saved += int(
                                self._xref_store[version].nbytes
                            )
                        else:
                            inline[version] = self._xref_store[version]
                    jobs.append((seq, wire_job))
                # mirror the worker's cache update exactly: insert inlined
                # versions in dict order, then evict oldest-inserted entries
                # this frame does not reference until back under the cap
                # (the worker runs the identical insert+evict sequence)
                for version in inline:
                    conn.sent_versions[version] = None
                for version in list(conn.sent_versions):
                    if len(conn.sent_versions) <= XREF_CACHE_VERSIONS:
                        break
                    if version not in needed:
                        del conn.sent_versions[version]
                self._batch_frames += 1
            frame = encode_frame(MsgType.JOB_BATCH, (jobs, inline))
            share = len(frame) // max(take, 1)
            with self._lock:
                for seq in seqs:
                    self._sent_bytes[seq] = share
            conn.inflight.update(seqs)
            self._queue_frame(conn, frame)

    def _queue_frame(self, conn: _Conn, frame: bytes) -> None:
        first = not conn.outbox
        conn.outbox.extend(frame)
        with self._lock:
            self._bytes_sent += len(frame)  # committed to this conn's wire
        if first:
            try:
                self._selector.modify(
                    conn.sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
                )
            except (KeyError, ValueError):
                pass
        self._flush_outbox(conn)

    def _flush_outbox(self, conn: _Conn) -> None:
        try:
            while conn.outbox:
                sent = conn.sock.send(conn.outbox)
                del conn.outbox[:sent]
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn, "send failed")
            return
        if conn.closing:
            self._drop(conn, "handshake rejected")
            return
        try:
            self._selector.modify(conn.sock, selectors.EVENT_READ, conn)
        except (KeyError, ValueError):
            pass

    def _check_heartbeats(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if conn.registered and now - conn.last_seen > self.heartbeat_timeout:
                self._drop(
                    conn,
                    f"heartbeat timeout ({self.heartbeat_timeout:.1f}s silent)",
                )

    def _drop(self, conn: _Conn, reason: str) -> None:
        """Close a connection; requeue whatever it had in flight."""
        fd = conn.sock.fileno()
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(fd, None)
        with self._lock:
            was_worker = conn.registered
            if was_worker:
                self._workers_lost += 1
            requeue = [s for s in conn.inflight if s in self._wire_jobs]
            for seq in requeue:
                self._pending.appendleft(seq)
            self._requeued_jobs += len(requeue)
            self._wakeup.notify_all()
        conn.inflight.clear()
        if was_worker:
            print(
                f"repro.net: worker {conn.worker_id} lost ({reason}); "
                f"requeued {len(requeue)} job(s)",
                file=sys.stderr,
            )

    def _teardown(self) -> None:
        for conn in list(self._conns.values()):
            try:
                conn.sock.setblocking(True)
                conn.sock.settimeout(1.0)
                conn.sock.sendall(encode_frame(MsgType.SHUTDOWN))
            except OSError:
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
        self._conns.clear()
        for sock in (self._listener, self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        if self._selector is not None:
            self._selector.close()


class RemoteBackend(ExecutionBackend):
    """Execution over the wire: jobs fan out to registered worker processes.

    ``shares_state`` is False, so the event core ships packed client state,
    buffers and broadcast state in every job — exactly the process-pool
    path — and results are bit-identical to the serial reference.

    Args:
        workers: registrations to wait for at ``bind`` (default 1); more
            workers may join later, fewer may remain after failures.
        address: ``host:port`` to listen on (port 0 = ephemeral); defaults
            to ``REPRO_BACKEND_ADDRESS``.
        spec: the :class:`~repro.experiments.ExperimentSpec` this run
            executes — shipped to workers in the WELCOME handshake so they
            rebuild bit-identical replicas.  The spec facade wires this;
            constructing by name (``make_backend("remote")``) leaves it
            unset and ``bind`` raises.
        job_batch: jobs per wire frame (``runtime.job_batch`` /
            ``REPRO_JOB_BATCH``); 1 (default) keeps per-job least-loaded
            scheduling.  Broadcast-vector dedup is always on.
    """

    name = "remote"
    shares_state = False
    engine_owned = True  # the facade builds one per run; engines close it

    def __init__(self, workers: int | None = None, address: str | None = None,
                 spec=None, job_batch: int | None = None) -> None:
        self.min_workers = max(1, workers or 1)
        if job_batch is not None and job_batch < 1:
            raise ValueError(f"job_batch must be >= 1, got {job_batch}")
        self.job_batch = job_batch
        self._address = address or os.environ.get(
            "REPRO_BACKEND_ADDRESS", ""
        ).strip() or None
        self.spec = spec
        self._service: AggregatorService | None = None
        self._outstanding: dict[int, JobHandle] = {}
        self._last_stats: dict = {}

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "RemoteBackend":
        if self._address is None:
            raise ValueError(
                "backend 'remote' needs an address: set "
                "runtime.backend_address (or REPRO_BACKEND_ADDRESS) to "
                "HOST:PORT"
            )
        if self.spec is None:
            raise ValueError(
                "backend 'remote' needs the run's ExperimentSpec to ship to "
                "workers; construct it through the spec facade "
                "(runtime.backend='remote' / REPRO_BACKEND=remote) rather "
                "than by bare name"
            )
        self.close()
        self._service = AggregatorService(
            self._address,
            spec_payload=self.spec.to_dict(),
            batch_limit=self.job_batch,
        ).start()
        print(
            f"repro.net: aggregator listening on {self._service.address}; "
            f"waiting for {self.min_workers} worker(s)",
            file=sys.stderr,
        )
        try:
            self._service.wait_for_workers(
                self.min_workers,
                timeout=_env_float("REPRO_NET_WORKER_TIMEOUT", 60.0),
            )
        except BaseException:
            self.close()
            raise
        return self

    def submit(self, job) -> JobHandle:
        return self.submit_many([job])[0]

    def submit_many(self, jobs) -> list[JobHandle]:
        """Queue a burst of jobs in one service call.

        The service groups them into ``JOB_BATCH`` frames at assignment
        time (bounded by ``job_batch`` and each worker's in-flight room),
        so a k-job burst costs one lock round-trip here and ~k/batch
        frames on the wire instead of k of each.
        """
        if self._service is None:
            raise RuntimeError("RemoteBackend.submit before bind()")
        handles = [self._make_handle(self._stamp(job)) for job in jobs]
        for handle in handles:
            self._outstanding[handle.seq] = handle
        self._service.submit_many([(h.seq, h.job) for h in handles])
        return handles

    def collect(self, handles=None, block=True):
        if self._service is None:
            raise RuntimeError("RemoteBackend.collect before bind()")
        if handles is None:
            wanted = list(self._outstanding.values())
        else:
            wanted = []
            for h in handles:
                if h.seq not in self._outstanding:
                    if block:
                        raise KeyError(
                            f"unknown or already-collected handle {h!r}"
                        )
                    continue
                wanted.append(h)
        ready = self._service.collect([h.seq for h in wanted], block=block)
        out = []
        for h in wanted:
            if h.seq in ready:
                del self._outstanding[h.seq]
                out.append((h, ready[h.seq]))
        return out

    def transport_stats(self) -> dict:
        if self._service is not None:
            self._last_stats = self._service.stats()
        return dict(self._last_stats)

    def map(self, fn, items):
        # sweeps dispatch whole grid points; those don't cross this wire
        return [fn(item) for item in items]

    def close(self) -> None:
        if self._service is not None:
            self._last_stats = self._service.stats()
            self._service.stop()
            self._service = None
        self._outstanding = {}
