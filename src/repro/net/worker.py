"""The federation worker: ``repro worker --connect HOST:PORT``.

A worker is openfl's *collaborator* shape: a long-lived process that

1. connects to the aggregator (retrying while it is not up yet),
2. sends a versioned ``REGISTER`` handshake,
3. receives ``WELCOME`` carrying the run's serialized
   :class:`~repro.experiments.ExperimentSpec` and rebuilds a local replica
   — the *same* dataset / model / algorithm construction the pool workers
   get via fork, but rebuilt from the spec because closures cannot cross
   machines (:func:`repro.parallel.build_job_runtime`),
4. loops: ``JOB`` / ``JOB_BATCH`` in, :func:`repro.parallel.execute_client_job`
   (the exact pool-worker compute path) per job, one ``RESULT`` out per job
   — a job that raises ships its traceback back instead of killing the
   worker.  Batched jobs may carry an
   :class:`~repro.net.framing.XRefToken` in place of the broadcast vector,
   resolved from a small version cache mirrored with the aggregator,
5. heartbeats from a background thread at the aggregator-announced
   interval, so liveness is signalled even mid-compute,
6. exits on ``SHUTDOWN`` / clean aggregator close.

Determinism: jobs are pure functions of their payload and replicas are
rebuilt from the same spec, so a run's history is bit-identical whether
jobs execute serially, on a fork pool, or on remote workers — whichever
worker happens to pick each job up.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import replace

from repro.net.framing import (
    JOB_SCHEMA_VERSION,
    PROTOCOL_VERSION,
    XREF_CACHE_VERSIONS,
    FrameError,
    MsgType,
    XRefToken,
    parse_address,
    recv_frame,
    send_frame,
)

__all__ = ["WorkerClient", "run_worker", "default_build_runtime"]


def default_build_runtime(spec_payload: dict):
    """Rebuild the ``(ctx, algorithm)`` replica a spec's jobs execute against.

    Mirrors what the spec facade ships to pool workers: the problem from
    :func:`~repro.experiments.build_problem`, the replica builders from
    :func:`~repro.experiments.replica_builders`, assembled by
    :func:`~repro.parallel.build_job_runtime`.  Imported lazily so the
    socket layer stays importable without the experiments stack.
    """
    from repro.experiments import ExperimentSpec, build_problem, replica_builders
    from repro.parallel import build_job_runtime

    spec = ExperimentSpec.from_dict(spec_payload)
    ds, model_builder, cfg = build_problem(spec)
    algo_builder, loss_builder, sampler_builder = replica_builders(spec)
    return build_job_runtime(
        model_builder, ds, cfg,
        loss_builder=loss_builder, sampler_builder=sampler_builder,
        algo_builder=algo_builder,
    )


class WorkerClient:
    """One aggregator connection: register, execute jobs, heartbeat.

    Args:
        address: the aggregator's ``host:port``.
        build_runtime: ``spec_payload -> (ctx, algorithm)`` replica factory
            (injectable for tests; default rebuilds from the shipped spec).
        connect_timeout: seconds to keep retrying the initial TCP connect
            while the aggregator is not up yet.
    """

    def __init__(self, address: str, build_runtime=None,
                 connect_timeout: float = 30.0) -> None:
        self.host, self.port = parse_address(address)
        self.build_runtime = build_runtime or default_build_runtime
        self.connect_timeout = connect_timeout
        self.worker_id: int | None = None
        self.jobs_done = 0
        self._sock: socket.socket | None = None
        self._send_lock = threading.Lock()
        self._stop_beat = threading.Event()

    # -- plumbing -------------------------------------------------------------
    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        while True:
            try:
                sock = socket.create_connection((self.host, self.port), timeout=10.0)
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(delay)
                delay = min(delay * 2, 1.0)

    def _send(self, msg_type: MsgType, payload: object = None) -> None:
        # the heartbeat thread and the job loop share the socket; frames
        # must not interleave mid-write
        with self._send_lock:
            send_frame(self._sock, msg_type, payload)

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop_beat.wait(timeout=interval):
            try:
                self._send(MsgType.HEARTBEAT)
            except OSError:
                return  # the main loop will see the close and exit

    # -- the session ----------------------------------------------------------
    def run(self) -> int:
        """Serve one aggregator session; returns jobs executed."""
        self._sock = self._connect()
        beat: threading.Thread | None = None
        try:
            self._send(MsgType.REGISTER, {
                "protocol": PROTOCOL_VERSION,
                "job_schema": JOB_SCHEMA_VERSION,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            })
            msg = recv_frame(self._sock)
            if msg is None:
                raise FrameError("aggregator closed during handshake")
            msg_type, payload = msg
            if msg_type is MsgType.ERROR:
                raise FrameError(f"aggregator rejected registration: {payload}")
            if msg_type is not MsgType.WELCOME:
                raise FrameError(f"expected WELCOME, got {msg_type.name}")
            self.worker_id = payload["worker_id"]
            interval = float(payload.get("heartbeat_interval") or 1.0)
            print(
                f"repro.net: worker {self.worker_id} registered with "
                f"{self.host}:{self.port}; building replica",
                file=sys.stderr,
            )
            ctx, algorithm = self.build_runtime(payload["spec"])
            self._stop_beat.clear()
            beat = threading.Thread(
                target=self._heartbeat_loop, args=(interval,),
                name="repro-worker-heartbeat", daemon=True,
            )
            beat.start()
            self._job_loop(ctx, algorithm)
            return self.jobs_done
        finally:
            self._stop_beat.set()
            if beat is not None:
                beat.join(timeout=2.0)
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _job_loop(self, ctx, algorithm) -> None:
        from repro.parallel import execute_client_job

        # broadcast-vector cache, the exact mirror of the aggregator's
        # per-connection `sent_versions`: versions are inserted in the order
        # the inline dicts arrive and evicted oldest-inserted-first (never
        # one the current frame references) at the same cap — TCP frame
        # ordering keeps the two sides identical without a round-trip
        xref_cache: "OrderedDict[int, object]" = OrderedDict()
        while True:
            msg = recv_frame(self._sock)
            if msg is None:
                return  # aggregator gone: this session is over
            msg_type, payload = msg
            if msg_type is MsgType.SHUTDOWN:
                return
            if msg_type is MsgType.ERROR:
                raise FrameError(f"aggregator error: {payload}")
            if msg_type is MsgType.JOB:
                batch = [payload]
            elif msg_type is MsgType.JOB_BATCH:
                batch, inline = payload
                for version, arr in inline.items():
                    xref_cache[version] = arr
                needed = {
                    job.x_ref.version for _, job in batch
                    if isinstance(job.x_ref, XRefToken)
                }
                for version in list(xref_cache):
                    if len(xref_cache) <= XREF_CACHE_VERSIONS:
                        break
                    if version not in needed:
                        del xref_cache[version]
            else:
                raise FrameError(f"expected JOB, got {msg_type.name}")
            for seq, job in batch:
                token = job.x_ref if isinstance(job.x_ref, XRefToken) else None
                if token is not None:
                    cached = xref_cache.get(token.version)
                    if cached is None:
                        self._send(MsgType.RESULT, (seq, None, (
                            f"worker {self.worker_id}: broadcast version "
                            f"{token.version} not in cache (protocol bug)"
                        )))
                        continue
                    job = replace(job, x_ref=cached)
                try:
                    result = execute_client_job(ctx, algorithm, job)
                except Exception:
                    self._send(
                        MsgType.RESULT, (seq, None, traceback.format_exc())
                    )
                else:
                    self._send(MsgType.RESULT, (seq, result, None))
                    self.jobs_done += 1


def run_worker(address: str, connect_timeout: float = 30.0) -> int:
    """CLI entry: serve one aggregator session; returns an exit code."""
    client = WorkerClient(address, connect_timeout=connect_timeout)
    try:
        jobs = client.run()
    except KeyboardInterrupt:
        return 130
    except (OSError, FrameError) as exc:
        print(f"repro.net: worker failed: {exc}", file=sys.stderr)
        return 1
    print(f"repro.net: worker {client.worker_id} done ({jobs} jobs)",
          file=sys.stderr)
    return 0
