"""Synthetic class-conditional datasets standing in for the paper's image sets.

No network access means no Fashion-MNIST/SVHN/CIFAR/ImageNet downloads, so we
generate class-structured data with controllable difficulty:

* **Flat datasets** (``layout="flat"``): each class has a Gaussian prototype
  in R^d plus optional intra-class sub-modes; samples are prototype + noise.
  Used with the MLP backbone (the paper's Fashion-MNIST setup).
* **Image datasets** (``layout="image"``): class prototypes are smooth random
  fields of shape (c, h, w) (low-frequency mixtures), so that convolution and
  pooling actually exploit spatial structure.  Used with the ResNet-lite
  backbones (the paper's SVHN/CIFAR/ImageNet setups).

The *difficulty* knob (prototype separation vs. noise scale) is tuned so that
federated training shows realistic learning curves rather than instant
saturation — this preserves the paper's phenomena (drift, collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["SyntheticSpec", "ClassConditionalGenerator", "make_classification_data"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Specification of a synthetic class-conditional dataset.

    Attributes:
        num_classes: number of classes.
        shape: per-sample shape; ``(d,)`` for flat, ``(c, h, w)`` for images.
        separation: prototype scale (class signal strength).
        noise: within-class noise standard deviation.
        modes: intra-class sub-modes (>=1); more modes = harder classes.
    """

    num_classes: int
    shape: tuple[int, ...]
    separation: float = 2.0
    noise: float = 1.0
    modes: int = 2

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need >= 2 classes, got {self.num_classes}")
        if len(self.shape) not in (1, 3):
            raise ValueError(f"shape must be (d,) or (c, h, w), got {self.shape}")
        if self.separation <= 0 or self.noise <= 0 or self.modes < 1:
            raise ValueError("separation/noise must be positive, modes >= 1")

    @property
    def dim(self) -> int:
        return int(np.prod(self.shape))

    @property
    def is_image(self) -> bool:
        return len(self.shape) == 3


def _smooth_field(rng: np.random.Generator, shape: tuple[int, int, int]) -> np.ndarray:
    """Low-frequency random field: sum of a few 2-D cosine modes per channel."""
    c, h, w = shape
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    out = np.zeros(shape)
    n_modes = 3
    for ch in range(c):
        for _ in range(n_modes):
            fy, fx = rng.uniform(0.5, 2.0, size=2)
            phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.normal(0, 1.0)
            out[ch] += amp * np.cos(2 * np.pi * fy * yy / h + phase_y) * np.cos(
                2 * np.pi * fx * xx / w + phase_x
            )
    # normalise field energy so separation is comparable to the flat case
    out /= max(np.sqrt(np.mean(out**2)), 1e-12)
    return out


class ClassConditionalGenerator:
    """Deterministic generator of class-conditional samples.

    The prototypes are fixed by ``seed``; :meth:`sample` draws fresh noise
    from the provided generator, so train/test splits are disjoint but share
    the class structure.
    """

    def __init__(self, spec: SyntheticSpec, seed: int | np.random.Generator = 0) -> None:
        self.spec = spec
        rng = as_generator(seed)
        k, c = spec.modes, spec.num_classes
        if spec.is_image:
            protos = np.stack(
                [
                    np.stack([_smooth_field(rng, spec.shape) for _ in range(k)])
                    for _ in range(c)
                ]
            )  # (C, modes, c, h, w)
        else:
            protos = rng.normal(size=(c, k, spec.dim))
            protos /= np.linalg.norm(protos, axis=-1, keepdims=True) / np.sqrt(spec.dim)
            protos = protos.reshape(c, k, *spec.shape)
        self.prototypes = protos * spec.separation

    def sample(
        self, class_counts: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``class_counts[c]`` samples of each class.

        Returns:
            ``(x, y)`` with ``x`` of shape ``(n, *spec.shape)`` (float64) and
            integer labels ``y``; rows are shuffled.
        """
        class_counts = np.asarray(class_counts, dtype=np.int64)
        if class_counts.shape != (self.spec.num_classes,):
            raise ValueError(
                f"class_counts must have shape ({self.spec.num_classes},), "
                f"got {class_counts.shape}"
            )
        if np.any(class_counts < 0):
            raise ValueError("class_counts must be nonnegative")
        total = int(class_counts.sum())
        x = np.empty((total, *self.spec.shape), dtype=np.float64)
        y = np.empty(total, dtype=np.int64)
        pos = 0
        for cls in range(self.spec.num_classes):
            n = int(class_counts[cls])
            if n == 0:
                continue
            mode_ids = rng.integers(0, self.spec.modes, size=n)
            base = self.prototypes[cls, mode_ids]
            x[pos : pos + n] = base + rng.normal(0, self.spec.noise, size=base.shape)
            y[pos : pos + n] = cls
            pos += n
        order = rng.permutation(total)
        return x[order], y[order]


def make_classification_data(
    num_classes: int,
    dim: int,
    n_per_class: int,
    seed: int | np.random.Generator = 0,
    separation: float = 2.0,
    noise: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: balanced flat classification data in one call."""
    spec = SyntheticSpec(num_classes=num_classes, shape=(dim,), separation=separation, noise=noise)
    rng = as_generator(seed)
    gen = ClassConditionalGenerator(spec, seed=rng)
    return gen.sample(np.full(num_classes, n_per_class), rng)
