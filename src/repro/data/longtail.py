"""Long-tailed class-frequency profiles.

The paper (section 3.2) defines the imbalance factor as the ratio between the
least- and most-frequent class: ``IF = 1`` is balanced, ``IF = 0.01`` puts the
rarest class at 1% of the most common one ("smaller IF means a longer tail").
The standard exponential profile (Cao et al. 2019) interpolates between them:

    n_c = n_max * IF^(c / (C - 1)),  c = 0..C-1
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["longtail_counts", "imbalance_factor_of", "apply_longtail"]


def longtail_counts(n_max: int, num_classes: int, imbalance_factor: float) -> np.ndarray:
    """Exponential long-tail class counts.

    Args:
        n_max: sample count of the most frequent class (class 0).
        num_classes: number of classes.
        imbalance_factor: IF in (0, 1]; 1 gives a balanced profile.

    Returns:
        Integer counts per class, descending, each at least 1.
    """
    check_positive(n_max, "n_max")
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if not 0.0 < imbalance_factor <= 1.0:
        raise ValueError(
            f"imbalance_factor must lie in (0, 1], got {imbalance_factor}"
        )
    if num_classes == 1:
        return np.array([int(n_max)])
    exponents = np.arange(num_classes) / (num_classes - 1)
    counts = n_max * np.power(imbalance_factor, exponents)
    return np.maximum(counts.astype(np.int64), 1)


def imbalance_factor_of(class_counts: np.ndarray) -> float:
    """Empirical IF of a count vector: min(count) / max(count)."""
    counts = np.asarray(class_counts, dtype=np.float64)
    if counts.size == 0 or counts.max() <= 0:
        raise ValueError("class_counts must contain positive entries")
    return float(counts.min() / counts.max())


def apply_longtail(
    labels: np.ndarray,
    imbalance_factor: float,
    rng: np.random.Generator,
    num_classes: int | None = None,
) -> np.ndarray:
    """Subsample a balanced dataset's indices into a long-tailed subset.

    Classes are ranked by label id (class 0 becomes the head).  Returns the
    selected indices (shuffled).
    """
    labels = np.asarray(labels)
    c = int(num_classes if num_classes is not None else labels.max() + 1)
    per_class = np.bincount(labels, minlength=c)
    n_max = int(per_class.max())
    target = longtail_counts(n_max, c, imbalance_factor)
    target = np.minimum(target, per_class)
    keep: list[np.ndarray] = []
    for cls in range(c):
        idx = np.flatnonzero(labels == cls)
        take = int(target[cls])
        if take < idx.size:
            idx = rng.choice(idx, size=take, replace=False)
        keep.append(idx)
    out = np.concatenate(keep)
    rng.shuffle(out)
    return out
