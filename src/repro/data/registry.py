"""Dataset registry mapping the paper's five datasets to -lite synthetic twins.

Each entry fixes the class count and input geometry analogous to the original
(class counts are exact; spatial sizes and per-class volumes are scaled down
so a 500-round federated run is feasible on a CPU — see DESIGN.md).

``load_federated_dataset`` is the one-stop entry point used by benchmarks and
examples: it builds the long-tailed training set, a *balanced* test set (the
paper evaluates balanced test accuracy), and the client partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.longtail import longtail_counts
from repro.data.partition import (
    client_class_counts,
    partition_balanced_dirichlet,
    partition_by_class_dirichlet,
)
from repro.data.synthetic import ClassConditionalGenerator, SyntheticSpec
from repro.utils.rng import as_generator

__all__ = ["DatasetInfo", "FederatedDataset", "DATASET_REGISTRY", "load_federated_dataset"]


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: geometry + default difficulty of a -lite dataset."""

    name: str
    num_classes: int
    shape: tuple[int, ...]
    n_max_train: int  # head-class training samples at IF=1
    n_test_per_class: int
    separation: float
    noise: float
    modes: int = 2
    default_model: str = "mlp"
    paper_counterpart: str = ""


DATASET_REGISTRY: dict[str, DatasetInfo] = {
    "fashion-mnist-lite": DatasetInfo(
        name="fashion-mnist-lite",
        num_classes=10,
        shape=(32,),
        n_max_train=300,
        n_test_per_class=50,
        separation=0.7,
        noise=1.0,
        modes=3,
        default_model="mlp",
        paper_counterpart="Fashion-MNIST (MLP)",
    ),
    "svhn-lite": DatasetInfo(
        name="svhn-lite",
        num_classes=10,
        shape=(3, 8, 8),
        n_max_train=300,
        n_test_per_class=50,
        separation=0.5,
        noise=1.0,
        modes=4,
        default_model="resnet-lite-18",
        paper_counterpart="SVHN (ResNet-18)",
    ),
    "cifar10-lite": DatasetInfo(
        name="cifar10-lite",
        num_classes=10,
        shape=(3, 8, 8),
        n_max_train=300,
        n_test_per_class=50,
        separation=0.4,
        noise=1.0,
        modes=4,
        default_model="resnet-lite-18",
        paper_counterpart="CIFAR-10 (ResNet-18)",
    ),
    "cifar100-lite": DatasetInfo(
        name="cifar100-lite",
        num_classes=20,  # scaled from 100 to keep per-class volume meaningful
        shape=(3, 8, 8),
        n_max_train=150,
        n_test_per_class=25,
        separation=0.45,
        noise=1.0,
        modes=4,
        default_model="resnet-lite-34",
        paper_counterpart="CIFAR-100 (ResNet-34), classes scaled 100->20",
    ),
    "imagenet-lite": DatasetInfo(
        name="imagenet-lite",
        num_classes=30,  # scaled from 1000
        shape=(3, 12, 12),
        n_max_train=120,
        n_test_per_class=20,
        separation=0.4,
        noise=1.1,
        modes=4,
        default_model="resnet-lite-34",
        paper_counterpart="ImageNet (ResNet-34), classes scaled 1000->30",
    ),
}


@dataclass
class FederatedDataset:
    """A fully materialised federated learning problem instance."""

    info: DatasetInfo
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    partitions: list[np.ndarray]
    imbalance_factor: float
    beta: float
    partition_kind: str

    @property
    def num_clients(self) -> int:
        return len(self.partitions)

    @property
    def num_classes(self) -> int:
        return self.info.num_classes

    @property
    def global_class_counts(self) -> np.ndarray:
        return np.bincount(self.y_train, minlength=self.num_classes)

    @property
    def client_counts(self) -> np.ndarray:
        """Per-client class-count matrix, shape (K, C)."""
        return client_class_counts(self.partitions, self.y_train, self.num_classes)

    def client_data(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        idx = self.partitions[k]
        return self.x_train[idx], self.y_train[idx]

    def flat_view(self) -> "FederatedDataset":
        """Return a copy whose inputs are flattened to (n, d) for MLP models."""
        if self.x_train.ndim == 2:
            return self
        out = FederatedDataset(
            info=self.info,
            x_train=self.x_train.reshape(self.x_train.shape[0], -1),
            y_train=self.y_train,
            x_test=self.x_test.reshape(self.x_test.shape[0], -1),
            y_test=self.y_test,
            partitions=self.partitions,
            imbalance_factor=self.imbalance_factor,
            beta=self.beta,
            partition_kind=self.partition_kind,
        )
        return out


def load_federated_dataset(
    name: str,
    imbalance_factor: float = 0.1,
    beta: float = 0.1,
    num_clients: int = 20,
    seed: int = 0,
    partition: str = "balanced",
    scale: float = 1.0,
) -> FederatedDataset:
    """Build a long-tailed, partitioned federated dataset.

    Args:
        name: registry key (see :data:`DATASET_REGISTRY`).
        imbalance_factor: IF in (0, 1]; 1 = balanced.
        beta: Dirichlet concentration for the client partition.
        num_clients: number of clients.
        seed: master seed — prototypes, sampling and partition all derive
            from it.
        partition: ``"balanced"`` (paper default, equal quantities) or
            ``"fedgrab"`` (per-class Dirichlet, quantity-skewed).
        scale: multiply per-class sample volumes (e.g. 0.5 for faster tests).

    Returns:
        A :class:`FederatedDataset`.
    """
    try:
        info = DATASET_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_REGISTRY)}") from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    rng = as_generator(seed)
    proto_rng, train_rng, test_rng, part_rng = rng.spawn(4)

    spec = SyntheticSpec(
        num_classes=info.num_classes,
        shape=info.shape,
        separation=info.separation,
        noise=info.noise,
        modes=info.modes,
    )
    gen = ClassConditionalGenerator(spec, seed=proto_rng)

    n_max = max(int(round(info.n_max_train * scale)), 2)
    train_counts = longtail_counts(n_max, info.num_classes, imbalance_factor)
    x_train, y_train = gen.sample(train_counts, train_rng)

    n_test = max(int(round(info.n_test_per_class * scale)), 2)
    test_counts = np.full(info.num_classes, n_test)
    x_test, y_test = gen.sample(test_counts, test_rng)

    if partition == "balanced":
        parts = partition_balanced_dirichlet(
            y_train, num_clients, beta, part_rng, num_classes=info.num_classes
        )
    elif partition == "fedgrab":
        parts = partition_by_class_dirichlet(
            y_train, num_clients, beta, part_rng, num_classes=info.num_classes
        )
    else:
        raise ValueError(f"partition must be 'balanced' or 'fedgrab', got {partition!r}")

    return FederatedDataset(
        info=info,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        partitions=parts,
        imbalance_factor=imbalance_factor,
        beta=beta,
        partition_kind=partition,
    )
