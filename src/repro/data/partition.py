"""Client data partitioning strategies.

Two first-class strategies, mirroring the paper's Figure 2:

* :func:`partition_balanced_dirichlet` — the paper's partition (following
  BalanceFL): every client receives (approximately) the **same number of
  samples**, while class proportions per client follow Dir(beta).  This is
  the IoT-motivated setting where device storage is comparable across
  clients.
* :func:`partition_by_class_dirichlet` — FedGraB/CReFF-style: for each class,
  a Dir(beta) draw splits that class's samples across clients, which induces
  **heavy quantity skew** (appendix A).  Every client is guaranteed at least
  one sample.

Both return a list of index arrays (one per client), partitioning the input
labels exactly (no sample dropped or duplicated).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = [
    "partition_balanced_dirichlet",
    "partition_by_class_dirichlet",
    "client_class_counts",
    "quantity_skew_of",
]


def partition_balanced_dirichlet(
    labels: np.ndarray,
    num_clients: int,
    beta: float,
    rng: int | np.random.Generator = 0,
    num_classes: int | None = None,
) -> list[np.ndarray]:
    """Quantity-balanced Dirichlet partition (the paper's default).

    Greedy water-filling: each client draws target proportions p_k ~ Dir(beta)
    and a quota of ``n_total / num_clients`` samples; clients then claim
    samples class by class, capped by the remaining pool of each class, and
    any shortfall is refilled from the classes with the most remaining
    samples.  The result keeps client sizes within one sample of each other
    while class mixtures follow the Dirichlet draw as far as the long-tailed
    pool allows.

    Args:
        labels: integer labels of the (already long-tailed) training set.
        num_clients: number of clients K.
        beta: Dirichlet concentration; smaller = more skew.
        rng: seed or generator.
        num_classes: override the inferred class count.

    Returns:
        ``num_clients`` index arrays forming an exact partition of ``labels``.
    """
    check_positive(beta, "beta")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    rng = as_generator(rng)
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n < num_clients:
        raise ValueError(f"cannot split {n} samples across {num_clients} clients")
    c = int(num_classes if num_classes is not None else labels.max() + 1)

    # per-class pools, shuffled once
    pools = [list(rng.permutation(np.flatnonzero(labels == cls))) for cls in range(c)]
    remaining = np.array([len(p) for p in pools])

    base = n // num_clients
    quotas = np.full(num_clients, base, dtype=np.int64)
    quotas[: n - base * num_clients] += 1  # distribute the remainder

    proportions = rng.dirichlet(np.full(c, beta), size=num_clients)
    out: list[np.ndarray] = []
    order = rng.permutation(num_clients)  # serve clients in random order
    assignments: dict[int, list[int]] = {k: [] for k in range(num_clients)}

    for k in order:
        quota = int(quotas[k])
        want = proportions[k] * quota
        take = np.minimum(np.floor(want).astype(np.int64), remaining)
        # fill the remainder greedily by fractional part, then by pool size
        short = quota - int(take.sum())
        if short > 0:
            frac_order = np.argsort(-(want - np.floor(want)))
            for cls in frac_order:
                if short == 0:
                    break
                extra = min(short, int(remaining[cls] - take[cls]))
                if extra > 0:
                    take[cls] += 1 if extra >= 1 else 0
                    short -= 1 if extra >= 1 else 0
        if short > 0:
            # refill from the largest remaining pools
            while short > 0:
                cls = int(np.argmax(remaining - take))
                room = int(remaining[cls] - take[cls])
                if room <= 0:
                    break
                grab = min(short, room)
                take[cls] += grab
                short -= grab
        for cls in range(c):
            t = int(take[cls])
            if t:
                assignments[k].extend(pools[cls][:t])
                del pools[cls][:t]
                remaining[cls] -= t

    # any leftovers (rounding) go to the smallest clients
    leftovers = [i for p in pools for i in p]
    if leftovers:
        sizes = np.array([len(assignments[k]) for k in range(num_clients)])
        for i, idx in enumerate(leftovers):
            k = int(np.argmin(sizes))
            assignments[k].append(idx)
            sizes[k] += 1

    for k in range(num_clients):
        arr = np.array(assignments[k], dtype=np.int64)
        rng.shuffle(arr)
        out.append(arr)
    return out


def partition_by_class_dirichlet(
    labels: np.ndarray,
    num_clients: int,
    beta: float,
    rng: int | np.random.Generator = 0,
    num_classes: int | None = None,
    min_samples: int = 1,
) -> list[np.ndarray]:
    """FedGraB-style per-class Dirichlet partition (quantity-skewed).

    For each class, a Dir(beta) draw over clients splits that class's pool.
    Clients left with fewer than ``min_samples`` samples steal one sample from
    the largest client until everyone meets the floor (the FedGraB "at least
    one data point" rule).
    """
    check_positive(beta, "beta")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    rng = as_generator(rng)
    labels = np.asarray(labels)
    n = labels.shape[0]
    if n < num_clients * min_samples:
        raise ValueError(
            f"{n} samples cannot give {num_clients} clients >= {min_samples} each"
        )
    c = int(num_classes if num_classes is not None else labels.max() + 1)

    assignments: list[list[int]] = [[] for _ in range(num_clients)]
    for cls in range(c):
        idx = rng.permutation(np.flatnonzero(labels == cls))
        if idx.size == 0:
            continue
        p = rng.dirichlet(np.full(num_clients, beta))
        counts = np.floor(p * idx.size).astype(np.int64)
        # distribute the rounding remainder to the largest shares
        rem = idx.size - int(counts.sum())
        if rem:
            counts[np.argsort(-p)[:rem]] += 1
        lo = 0
        for k in range(num_clients):
            assignments[k].extend(idx[lo : lo + counts[k]])
            lo += counts[k]

    sizes = np.array([len(a) for a in assignments])
    while sizes.min() < min_samples:
        k_small = int(np.argmin(sizes))
        k_big = int(np.argmax(sizes))
        if k_small == k_big or sizes[k_big] <= min_samples:
            break
        assignments[k_small].append(assignments[k_big].pop())
        sizes[k_small] += 1
        sizes[k_big] -= 1

    out = []
    for a in assignments:
        arr = np.array(a, dtype=np.int64)
        rng.shuffle(arr)
        out.append(arr)
    return out


def client_class_counts(
    partitions: list[np.ndarray], labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Matrix of per-client class counts, shape ``(K, C)``."""
    labels = np.asarray(labels)
    out = np.zeros((len(partitions), num_classes), dtype=np.int64)
    for k, idx in enumerate(partitions):
        out[k] = np.bincount(labels[idx], minlength=num_classes)
    return out


def quantity_skew_of(partitions: list[np.ndarray]) -> float:
    """Coefficient of variation of client sizes (0 = perfectly balanced)."""
    sizes = np.array([len(p) for p in partitions], dtype=np.float64)
    if sizes.size == 0 or sizes.mean() == 0:
        return 0.0
    return float(sizes.std() / sizes.mean())
