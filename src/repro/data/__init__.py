"""Data substrate: synthetic datasets, long-tail profiles, client partitions.

Replaces the paper's torchvision datasets (see DESIGN.md section 1 for the
substitution argument).
"""

from repro.data.longtail import longtail_counts, imbalance_factor_of, apply_longtail
from repro.data.synthetic import SyntheticSpec, ClassConditionalGenerator, make_classification_data
from repro.data.partition import (
    partition_balanced_dirichlet,
    partition_by_class_dirichlet,
    client_class_counts,
    quantity_skew_of,
)
from repro.data.sampler import BalancedBatchSampler, UniformBatchSampler
from repro.data.augment import GaussianJitter, Mixup, FeatureDropout, AugmentedSampler
from repro.data.registry import (
    DatasetInfo,
    FederatedDataset,
    DATASET_REGISTRY,
    load_federated_dataset,
)

__all__ = [
    "longtail_counts",
    "imbalance_factor_of",
    "apply_longtail",
    "SyntheticSpec",
    "ClassConditionalGenerator",
    "make_classification_data",
    "partition_balanced_dirichlet",
    "partition_by_class_dirichlet",
    "client_class_counts",
    "quantity_skew_of",
    "BalancedBatchSampler",
    "UniformBatchSampler",
    "GaussianJitter",
    "Mixup",
    "FeatureDropout",
    "AugmentedSampler",
    "DatasetInfo",
    "FederatedDataset",
    "DATASET_REGISTRY",
    "load_federated_dataset",
]
