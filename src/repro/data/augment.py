"""Feature-space augmentation.

BalanceFL's local re-balancing oversamples minority classes, which repeats
the same few samples; augmentation decorrelates the repeats.  These
augmenters operate on already-vectorised features (flat or NCHW) and are
deterministic given the generator.

* :class:`GaussianJitter` — additive feature noise.
* :class:`Mixup` — convex sample mixing (Zhang et al. 2018) with label
  mixing expressed as soft targets.
* :class:`FeatureDropout` — random feature masking (a crude cutout analogue
  for non-image features).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import one_hot

__all__ = ["GaussianJitter", "Mixup", "FeatureDropout", "AugmentedSampler"]


class GaussianJitter:
    """Add isotropic Gaussian noise with standard deviation ``sigma``."""

    def __init__(self, sigma: float = 0.1) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def __call__(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.sigma == 0:
            return x, y
        return x + rng.normal(0.0, self.sigma, size=x.shape), y


class FeatureDropout:
    """Zero a random fraction ``p`` of features per sample."""

    def __init__(self, p: float = 0.1) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError(f"p must lie in [0, 1), got {p}")
        self.p = p

    def __call__(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.p == 0:
            return x, y
        mask = rng.random(x.shape) >= self.p
        return x * mask, y


class Mixup:
    """Pairwise convex mixing; returns soft-label targets.

    Output labels are ``(n, num_classes)`` mixing weights; use with a loss
    accepting soft targets (``soft_cross_entropy`` below).
    """

    def __init__(self, num_classes: int, alpha: float = 0.2) -> None:
        if num_classes < 2:
            raise ValueError("need >= 2 classes")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.c = num_classes
        self.alpha = alpha

    def __call__(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        n = x.shape[0]
        lam = rng.beta(self.alpha, self.alpha, size=n)
        perm = rng.permutation(n)
        lam_x = lam.reshape((n,) + (1,) * (x.ndim - 1))
        x_mix = lam_x * x + (1.0 - lam_x) * x[perm]
        y1h = one_hot(y, self.c)
        y_mix = lam[:, None] * y1h + (1.0 - lam)[:, None] * y1h[perm]
        return x_mix, y_mix


def soft_cross_entropy(logits: np.ndarray, soft_targets: np.ndarray) -> tuple[float, np.ndarray]:
    """CE against soft targets; gradient = (softmax - target)/n."""
    from repro.nn.functional import log_softmax, softmax

    if logits.shape != soft_targets.shape:
        raise ValueError(
            f"logits {logits.shape} and soft_targets {soft_targets.shape} must match"
        )
    n = logits.shape[0]
    loss = float(-(soft_targets * log_softmax(logits)).sum() / n)
    return loss, (softmax(logits) - soft_targets) / n


class AugmentedSampler:
    """Wrap a batch sampler so its batches can be materialised with
    augmentation applied.

    The sampler still yields indices; :meth:`materialize` applies the
    augmenter chain to the gathered batch.
    """

    def __init__(self, base_sampler, augmenters: list) -> None:
        self.base = base_sampler
        self.augmenters = list(augmenters)

    def epoch(self, rng):
        return self.base.epoch(rng)

    def batches_per_epoch(self) -> int:
        return self.base.batches_per_epoch()

    def materialize(
        self, x: np.ndarray, y: np.ndarray, bidx: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        xb, yb = x[bidx], y[bidx]
        for aug in self.augmenters:
            xb, yb = aug(xb, yb, rng)
        return xb, yb
