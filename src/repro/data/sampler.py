"""Class-balanced resampling — the paper's "Balance Sampler" baseline.

``BalancedBatchSampler`` oversamples minority classes so every class is drawn
(in expectation) equally often, matching the classical imbalanced-learning
recipe (He & Garcia 2009) plugged into FedCM in Table 1.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["BalancedBatchSampler", "UniformBatchSampler"]

# the one batch a single-sample client's epoch yields (read-only: callers
# only ever index with it); matches permutation(1)'s dtype and value
_SINGLE = np.zeros(1, dtype=np.int64)
_SINGLE.setflags(write=False)


class UniformBatchSampler:
    """Plain shuffled epoch iteration (the default for all algorithms)."""

    def __init__(self, labels: np.ndarray, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.n = int(np.asarray(labels).shape[0])
        self.batch_size = batch_size

    def epoch(self, rng: int | np.random.Generator) -> Iterator[np.ndarray]:
        if self.n <= 1:
            # permutation(n) draws nothing for n <= 1 (no swaps happen), so
            # skipping it leaves the caller's stream untouched — exact, and
            # single-sample clients are the population-scale bench workload
            if self.n == 1:
                yield _SINGLE
            return
        rng = as_generator(rng)
        order = rng.permutation(self.n)
        for lo in range(0, self.n, self.batch_size):
            yield order[lo : lo + self.batch_size]

    def batches_per_epoch(self) -> int:
        return int(np.ceil(self.n / self.batch_size)) if self.n else 0


class BalancedBatchSampler:
    """Epoch iterator that resamples so classes appear uniformly.

    Each epoch draws ``n`` samples *with replacement*, where each draw first
    picks a class uniformly among classes present, then a sample uniformly
    within that class.  Epoch length thus matches the underlying dataset, so
    swapping this sampler in does not change the number of local iterations —
    only their class mixture (important for a fair Table 1 comparison).
    """

    def __init__(self, labels: np.ndarray, batch_size: int) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        labels = np.asarray(labels)
        self.n = int(labels.shape[0])
        self.batch_size = batch_size
        classes = np.unique(labels)
        self._class_indices = [np.flatnonzero(labels == c) for c in classes]

    def epoch(self, rng: int | np.random.Generator) -> Iterator[np.ndarray]:
        rng = as_generator(rng)
        if self.n == 0:
            return
        k = len(self._class_indices)
        cls_draws = rng.integers(0, k, size=self.n)
        picks = np.empty(self.n, dtype=np.int64)
        for ci, idxs in enumerate(self._class_indices):
            mask = cls_draws == ci
            m = int(mask.sum())
            if m:
                picks[mask] = rng.choice(idxs, size=m, replace=True)
        for lo in range(0, self.n, self.batch_size):
            yield picks[lo : lo + self.batch_size]

    def batches_per_epoch(self) -> int:
        return int(np.ceil(self.n / self.batch_size)) if self.n else 0
