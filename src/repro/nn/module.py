"""Module base class for the manual-backprop NN engine.

Design: each :class:`Module` owns

* ``params``  — ordered ``dict[str, np.ndarray]`` of trainable arrays,
* ``grads``   — same-keyed dict of gradient accumulators,
* ``buffers`` — non-trainable state (e.g. BatchNorm running stats) that is
  *not* part of the flattened parameter vector and therefore never enters
  the momentum algebra.

``forward(x, train)`` caches whatever ``backward(dout)`` needs; ``backward``
returns the gradient w.r.t. the input and writes parameter gradients into
``grads``.  Composite modules namespace child entries as ``"child.param"``.

This mirrors the structure of a PyTorch module but with explicit, inspectable
NumPy state — the momentum-based FL algorithms in :mod:`repro.algorithms`
only ever touch the flattened view produced by
:func:`repro.utils.flatten_params`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Module"]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.buffers: dict[str, np.ndarray] = {}

    # -- forward / backward -------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        return self.forward(x, train=train)

    # -- gradient bookkeeping ------------------------------------------------
    def zero_grad(self) -> None:
        """Reset all gradient accumulators to zero, in place."""
        for g in self.grads.values():
            g.fill(0.0)

    def init_grads(self) -> None:
        """(Re)allocate gradient buffers matching ``params``."""
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}

    # -- state management ----------------------------------------------------
    def get_params(self, copy: bool = True) -> dict[str, np.ndarray]:
        """Return the parameter tree (copied by default)."""
        if copy:
            return {k: v.copy() for k, v in self.params.items()}
        return dict(self.params)

    def set_params(self, tree: dict[str, np.ndarray]) -> None:
        """Load a parameter tree, copying values into existing arrays."""
        if tree.keys() != self.params.keys():
            missing = self.params.keys() - tree.keys()
            extra = tree.keys() - self.params.keys()
            raise KeyError(f"param keys mismatch: missing={missing} extra={extra}")
        for k, v in tree.items():
            if v.shape != self.params[k].shape:
                raise ValueError(
                    f"param {k!r}: shape {v.shape} != expected {self.params[k].shape}"
                )
            np.copyto(self.params[k], v)

    def get_buffers(self, copy: bool = True) -> dict[str, np.ndarray]:
        if copy:
            return {k: v.copy() for k, v in self.buffers.items()}
        return dict(self.buffers)

    def set_buffers(self, tree: dict[str, np.ndarray]) -> None:
        for k, v in tree.items():
            np.copyto(self.buffers[k], v)

    # -- introspection ---------------------------------------------------------
    @property
    def num_params(self) -> int:
        return int(sum(v.size for v in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_params})"


def adopt_child(parent: Module, name: str, child: Module) -> None:
    """Merge a child's params/grads/buffers into ``parent`` under a prefix.

    The merged entries *alias* the child's arrays, so updating the parent's
    ``params[name + '.' + k]`` in place updates the child.
    """
    for k, v in child.params.items():
        parent.params[f"{name}.{k}"] = v
    for k, v in child.grads.items():
        parent.grads[f"{name}.{k}"] = v
    for k, v in child.buffers.items():
        parent.buffers[f"{name}.{k}"] = v
