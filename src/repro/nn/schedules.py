"""Learning-rate schedules over communication rounds.

The paper trains with a constant local lr; long-horizon federated runs
commonly decay it.  Schedules map ``round_idx -> multiplier`` applied to the
configured base ``lr_local`` (the engine consults
:meth:`repro.simulation.SimulationContext.lr_at`).
"""

from __future__ import annotations

import math

__all__ = [
    "ConstantSchedule",
    "StepSchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "SCHEDULE_NAMES",
    "make_schedule",
]

#: names accepted by :func:`make_schedule` (and by the serializable
#: ``{"name": ...}`` form of ``FLConfig.lr_schedule``)
SCHEDULE_NAMES = ("constant", "step", "cosine", "warmup-cosine")


class ConstantSchedule:
    """Multiplier 1 forever (the paper's setting)."""

    def __call__(self, round_idx: int) -> float:
        return 1.0


class StepSchedule:
    """Multiply by ``gamma`` every ``step_size`` rounds."""

    def __init__(self, step_size: int, gamma: float = 0.5) -> None:
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, round_idx: int) -> float:
        return self.gamma ** (round_idx // self.step_size)


class CosineSchedule:
    """Cosine annealing from 1 to ``floor`` over ``total_rounds``."""

    def __init__(self, total_rounds: int, floor: float = 0.0) -> None:
        if total_rounds < 1:
            raise ValueError(f"total_rounds must be >= 1, got {total_rounds}")
        if not 0.0 <= floor < 1.0:
            raise ValueError(f"floor must lie in [0, 1), got {floor}")
        self.total = total_rounds
        self.floor = floor

    def __call__(self, round_idx: int) -> float:
        t = min(round_idx, self.total) / self.total
        return self.floor + (1.0 - self.floor) * 0.5 * (1.0 + math.cos(math.pi * t))


class WarmupSchedule:
    """Linear ramp from ``start`` to 1 over ``warmup_rounds``, then delegate.

    Useful with momentum methods whose Delta estimate is noisy in the first
    rounds.
    """

    def __init__(self, warmup_rounds: int, after=None, start: float = 0.1) -> None:
        if warmup_rounds < 1:
            raise ValueError(f"warmup_rounds must be >= 1, got {warmup_rounds}")
        if not 0.0 < start <= 1.0:
            raise ValueError(f"start must lie in (0, 1], got {start}")
        self.warmup = warmup_rounds
        self.after = after or ConstantSchedule()
        self.start = start

    def __call__(self, round_idx: int) -> float:
        if round_idx < self.warmup:
            frac = round_idx / self.warmup
            return self.start + (1.0 - self.start) * frac
        return self.after(round_idx - self.warmup)


def make_schedule(name: str, total_rounds: int, **kwargs):
    """Schedule factory: ``constant``, ``step``, ``cosine`` or ``warmup-cosine``."""
    name = name.lower()
    if name == "constant":
        return ConstantSchedule()
    if name == "step":
        return StepSchedule(step_size=kwargs.pop("step_size", max(total_rounds // 3, 1)), **kwargs)
    if name == "cosine":
        return CosineSchedule(total_rounds=total_rounds, **kwargs)
    if name == "warmup-cosine":
        warmup = kwargs.pop("warmup_rounds", max(total_rounds // 10, 1))
        return WarmupSchedule(
            warmup_rounds=warmup,
            after=CosineSchedule(total_rounds=max(total_rounds - warmup, 1), **kwargs),
        )
    raise KeyError(f"unknown schedule {name!r}; available: {SCHEDULE_NAMES}")
