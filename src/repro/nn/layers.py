"""Dense layers, activations and shape utilities."""

from __future__ import annotations

import numpy as np

from repro.nn import init as init_mod
from repro.nn.module import Module

__all__ = ["Dense", "ReLU", "Flatten", "Dropout"]


class Dense(Module):
    """Fully-connected layer ``y = x @ W + b``.

    Args:
        in_features: input dimensionality.
        out_features: output dimensionality.
        rng: generator used for He initialization.
        bias: include an additive bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"Dense dims must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = bias
        self.params["W"] = init_mod.he_normal(rng, (in_features, out_features), in_features)
        if bias:
            self.params["b"] = init_mod.zeros((out_features,))
        self.init_grads()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (n, {self.in_features}), got {x.shape}"
            )
        self._x = x if train else None
        y = x @ self.params["W"]
        if self.use_bias:
            y += self.params["b"]
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        self.grads["W"] += self._x.T @ dout
        if self.use_bias:
            self.grads["b"] += dout.sum(axis=0)
        return dout @ self.params["W"].T


class ReLU(Module):
    """Elementwise rectifier."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return dout * self._mask


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        return dout.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity at evaluation time.

    The mask is drawn from the module's own generator so training remains
    deterministic given the construction seed.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
