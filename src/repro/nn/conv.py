"""Convolution and pooling layers (im2col-based, NCHW layout).

The im2col transform turns convolution into a single large GEMM — the
canonical "vectorize the inner loop" move from the HPC guides.  Patch
extraction itself is done with stride tricks (a view, not a copy) and a
single reshape.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.nn import init as init_mod
from repro.nn.module import Module

__all__ = ["Conv2d", "MaxPool2d", "GlobalAvgPool2d", "AvgPool2d"]


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding patches from ``x`` (n, c, h, w) already padded.

    Returns an array of shape ``(n, out_h, out_w, c, kh, kw)`` that is a
    strided *view* of ``x`` — zero-copy until the caller reshapes.
    """
    n, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    view = as_strided(
        x,
        shape=(n, out_h, out_w, c, kh, kw),
        strides=(sn, sh * stride, sw * stride, sc, sh, sw),
        writeable=False,
    )
    return view


def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
) -> np.ndarray:
    """Scatter-add column gradients back to image layout (inverse of im2col)."""
    n, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    dx = np.zeros(x_shape, dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kh, kw)
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + out_h * stride : stride, j : j + out_w * stride : stride] += (
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
            )
    return dx


class Conv2d(Module):
    """2-D convolution over NCHW inputs.

    Args:
        in_channels / out_channels: channel counts.
        kernel_size: square kernel side.
        stride: spatial stride.
        padding: symmetric zero padding.
        rng: generator for He initialization.
        bias: include per-channel bias.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0 or padding < 0:
            raise ValueError("invalid Conv2d geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = bias
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = init_mod.he_normal(
            rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
        )
        if bias:
            self.params["b"] = init_mod.zeros((out_channels,))
        self.init_grads()
        self._cache: tuple | None = None

    def _pad(self, x: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return x
        p = self.padding
        return np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)))

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (n, {self.in_channels}, h, w), got {x.shape}"
            )
        xp = self._pad(x)
        k, s = self.kernel_size, self.stride
        patches = _im2col(xp, k, k, s)  # (n, oh, ow, c, kh, kw)
        n, oh, ow = patches.shape[:3]
        cols = patches.reshape(n * oh * ow, -1)  # copy happens here
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.use_bias:
            out += self.params["b"]
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        if train:
            self._cache = (cols, xp.shape, (n, oh, ow))
        return np.ascontiguousarray(out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        cols, xp_shape, (n, oh, ow) = self._cache
        k, s = self.kernel_size, self.stride
        dout_mat = dout.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        w_mat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] += (dout_mat.T @ cols).reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] += dout_mat.sum(axis=0)
        dcols = dout_mat @ w_mat  # (n*oh*ow, c*k*k)
        dxp = _col2im(
            dcols.reshape(n, oh, ow, self.in_channels, k, k).reshape(n, oh, ow, -1),
            xp_shape,
            k,
            k,
            s,
        )
        if self.padding:
            p = self.padding
            return dxp[:, :, p:-p, p:-p]
        return dxp


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.k = kernel_size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool {k}")
        xr = x.reshape(n, c, h // k, k, w // k, k)
        out = xr.max(axis=(3, 5))
        if train:
            # ties share the gradient equally (counts divisor in backward)
            mask = xr == out[:, :, :, None, :, None]
            self._cache = (mask, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        mask, x_shape = self._cache
        n, c, h, w = x_shape
        k = self.k
        counts = mask.sum(axis=(3, 5), keepdims=True)
        dx = mask * (dout[:, :, :, None, :, None] / counts)
        return dx.reshape(n, c, h // k, k, w // k, k).reshape(x_shape)


class AvgPool2d(Module):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        self.k = kernel_size
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims {h}x{w} not divisible by pool {k}")
        if train:
            self._shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        n, c, h, w = self._shape
        k = self.k
        dx = np.broadcast_to(
            dout[:, :, :, None, :, None] / (k * k), (n, c, h // k, k, w // k, k)
        )
        return dx.reshape(self._shape).copy()


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, yielding (n, c)."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        if train:
            self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        n, c, h, w = self._shape
        return np.broadcast_to(dout[:, :, None, None] / (h * w), self._shape).copy()
