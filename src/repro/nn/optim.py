"""Optimizers over flattened parameter vectors.

Federated algorithms own the outer loop; these helpers implement the inner
(local) step rules.  :class:`MomentumInjectedSGD` is the FedCM/FedWCM local
rule from the paper's Eq. (6):

    v = alpha * g + (1 - alpha) * Delta
    x <- x - eta * v

where ``Delta`` is the *global* momentum broadcast by the server.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "MomentumInjectedSGD"]


class SGD:
    """Plain SGD on a flat vector with optional weight decay and momentum."""

    def __init__(self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._buf: np.ndarray | None = None

    def step(self, x: np.ndarray, g: np.ndarray) -> None:
        """Update ``x`` in place given gradient ``g``."""
        if self.weight_decay:
            g = g + self.weight_decay * x
        if self.momentum:
            if self._buf is None:
                self._buf = np.zeros_like(x)
            self._buf *= self.momentum
            self._buf += g
            g = self._buf
        x -= self.lr * g

    def reset(self) -> None:
        self._buf = None


class MomentumInjectedSGD:
    """FedCM/FedWCM local update: ``x <- x - eta * (alpha*g + (1-alpha)*Delta)``.

    ``Delta`` (the global momentum direction) and ``alpha`` are set per round
    by the server; the same instance is reused across batches of a round.
    """

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.alpha = 1.0
        self.delta: np.ndarray | None = None

    def configure(self, alpha: float, delta: np.ndarray | None) -> None:
        """Install the round's momentum coefficient and global direction."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.delta = delta

    def step(self, x: np.ndarray, g: np.ndarray) -> None:
        if self.delta is None:
            x -= self.lr * self.alpha * g
        else:
            x -= self.lr * (self.alpha * g + (1.0 - self.alpha) * self.delta)
