"""Pure-NumPy neural-network engine with manual backprop.

Substitutes for the paper's PyTorch substrate (see DESIGN.md).  Public
surface: modules/layers, the model zoo, losses, training helpers and
flat-vector optimizers.
"""

from repro.nn.module import Module
from repro.nn.layers import Dense, ReLU, Flatten, Dropout
from repro.nn.conv import Conv2d, MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.norm import GroupNorm, BatchNorm2d, LayerNorm
from repro.nn.container import Sequential, BasicBlock
from repro.nn.models import (
    make_mlp,
    make_resnet_lite,
    make_linear,
    build_model,
    MODEL_REGISTRY,
)
from repro.nn.losses import (
    CrossEntropyLoss,
    FocalLoss,
    PriorCELoss,
    LDAMLoss,
    ClassBalancedLoss,
    make_loss,
)
from repro.nn.optim import SGD, MomentumInjectedSGD
from repro.nn.train import forward_backward, flat_grad, evaluate, iterate_minibatches
from repro.nn.schedules import (
    ConstantSchedule,
    StepSchedule,
    CosineSchedule,
    WarmupSchedule,
    make_schedule,
)
from repro.nn import functional

__all__ = [
    "Module",
    "Dense",
    "ReLU",
    "Flatten",
    "Dropout",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "GroupNorm",
    "BatchNorm2d",
    "LayerNorm",
    "Sequential",
    "BasicBlock",
    "make_mlp",
    "make_resnet_lite",
    "make_linear",
    "build_model",
    "MODEL_REGISTRY",
    "CrossEntropyLoss",
    "FocalLoss",
    "PriorCELoss",
    "LDAMLoss",
    "ClassBalancedLoss",
    "make_loss",
    "SGD",
    "MomentumInjectedSGD",
    "forward_backward",
    "flat_grad",
    "evaluate",
    "iterate_minibatches",
    "functional",
    "ConstantSchedule",
    "StepSchedule",
    "CosineSchedule",
    "WarmupSchedule",
    "make_schedule",
]
