"""Training helpers bridging the NN engine and the federated algorithms.

The algorithms in :mod:`repro.algorithms` operate on flattened parameter
vectors; this module provides the glue: compute a flat gradient at the current
parameters, evaluate in minibatches, iterate shuffled epochs.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.nn.functional import accuracy
from repro.nn.module import Module
from repro.utils.pytree import ParamSpec, flatten_params

__all__ = ["forward_backward", "flat_grad", "evaluate", "iterate_minibatches"]

LossFn = Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]


def forward_backward(model: Module, x: np.ndarray, y: np.ndarray, loss_fn: LossFn) -> float:
    """One fused forward/backward pass; leaves gradients in ``model.grads``."""
    model.zero_grad()
    logits = model.forward(x, train=True)
    loss, dlogits = loss_fn(logits, y)
    model.backward(dlogits)
    return loss


def flat_grad(
    model: Module, spec: ParamSpec, out: np.ndarray | None = None
) -> np.ndarray:
    """Flatten ``model.grads`` into a contiguous vector (reusing ``out``)."""
    flat, _ = flatten_params(model.grads, spec=spec, out=out)
    return flat


def evaluate(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: LossFn | None = None,
    batch_size: int = 256,
) -> dict[str, float]:
    """Batched evaluation returning accuracy (and loss when ``loss_fn`` given)."""
    n = x.shape[0]
    if n == 0:
        return {"accuracy": 0.0, "loss": float("nan"), "n": 0}
    correct = 0
    loss_sum = 0.0
    for lo in range(0, n, batch_size):
        xb = x[lo : lo + batch_size]
        yb = y[lo : lo + batch_size]
        logits = model.forward(xb, train=False)
        correct += int((logits.argmax(axis=1) == yb).sum())
        if loss_fn is not None:
            loss, _ = loss_fn(logits, yb)
            loss_sum += loss * xb.shape[0]
    out = {"accuracy": correct / n, "n": n}
    out["loss"] = loss_sum / n if loss_fn is not None else float("nan")
    return out


def iterate_minibatches(
    rng: np.random.Generator, n: int, batch_size: int, epochs: int = 1
) -> Iterator[np.ndarray]:
    """Yield shuffled index batches for ``epochs`` passes over ``n`` samples.

    The final batch of each epoch may be smaller than ``batch_size``.
    """
    if n <= 0:
        return
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for _ in range(epochs):
        order = rng.permutation(n)
        for lo in range(0, n, batch_size):
            yield order[lo : lo + batch_size]
