"""Classification losses, each returning ``(mean_loss, dlogits)``.

All gradients already include the ``1/n`` batch-mean factor, so callers can
feed ``dlogits`` straight into ``model.backward``.

Implemented (paper section 2.2 / 7.2):

* :class:`CrossEntropyLoss` — baseline.
* :class:`FocalLoss` — Lin et al. 2017, used for the "FedCM + Focal Loss" rows.
* :class:`PriorCELoss` — logit-adjusted / balanced-softmax loss (Hong et al.
  2021), the paper's "Balance Loss".
* :class:`LDAMLoss` — label-distribution-aware margin (Cao et al. 2019).
* :class:`ClassBalancedLoss` — effective-number reweighted CE (Cui et al. 2019).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import one_hot, softmax

__all__ = [
    "CrossEntropyLoss",
    "FocalLoss",
    "PriorCELoss",
    "LDAMLoss",
    "ClassBalancedLoss",
    "make_loss",
]


class CrossEntropyLoss:
    """Mean softmax cross-entropy."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        n, c = logits.shape
        eps = 1e-12
        if n == 1:
            # single-sample lane (one-sample-per-client populations hit this
            # every batch): scalar indexing replaces the fancy-index
            # machinery.  mean() of one element is that element, log of a
            # 0-d value runs the same ufunc loop, and x / 1 == x, so the
            # returned bits match the general path exactly.
            lab = labels[0]
            if lab < 0:
                raise ValueError(f"labels out of range [0, {c}): min={lab}")
            p = softmax(logits)
            pt = p[0, lab]  # raises on lab >= c like the fancy index does
            loss = float(-np.log(pt + eps))
            p[0, lab] -= 1.0
            return loss, p
        if labels.size and labels.min() < 0:
            raise ValueError(f"labels out of range [0, {c}): min={labels.min()}")
        p = softmax(logits)
        idx = np.arange(n)
        pt = p[idx, labels]  # fancy-indexed copy; raises on labels >= c
        loss = float(-np.log(pt + eps).mean())
        # in-place (p - one_hot) / n without materialising the one-hot:
        # off-label entries are p - 0.0 == p bit for bit, the label entry
        # subtracts the same 1.0, and the division is the same elementwise
        # op — identical to the allocating form, minus two (n, c) temporaries
        p[idx, labels] -= 1.0
        p /= n
        return loss, p


class FocalLoss:
    """Focal loss ``-(1 - p_t)^gamma log p_t`` with exact softmax gradient."""

    def __init__(self, gamma: float = 2.0) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.gamma = gamma

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        n, c = logits.shape
        g = self.gamma
        p = softmax(logits)
        idx = np.arange(n)
        pt = np.clip(p[idx, labels], 1e-12, 1.0)
        log_pt = np.log(pt)
        loss = float(np.mean(-((1.0 - pt) ** g) * log_pt))
        # dL/dz_j = (1-pt)^(g-1) * (g*pt*log(pt) - (1-pt)) * (1[j==y] - p_j)
        coef = ((1.0 - pt) ** (g - 1.0)) * (g * pt * log_pt - (1.0 - pt))
        y = one_hot(labels, c)
        dlogits = coef[:, None] * (y - p) / n
        return loss, dlogits


class PriorCELoss:
    """Logit-adjusted CE: cross-entropy on ``logits + log(prior)``.

    Adding the log class prior to the logits makes the minimized objective the
    balanced error — the "Balance Loss" of the paper's Table 1.
    """

    def __init__(self, class_prior: np.ndarray) -> None:
        prior = np.asarray(class_prior, dtype=np.float64)
        if prior.ndim != 1 or np.any(prior < 0):
            raise ValueError("class_prior must be a nonnegative 1-D vector")
        total = prior.sum()
        if total <= 0:
            raise ValueError("class_prior must have positive mass")
        self.log_prior = np.log(prior / total + 1e-12)
        self._ce = CrossEntropyLoss()

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        return self._ce(logits + self.log_prior, labels)


class LDAMLoss:
    """Label-distribution-aware margin loss.

    Enforces per-class margins ``Delta_c = max_margin / n_c^{1/4}`` (normalised
    so the largest margin equals ``max_margin``), then applies scaled CE.
    """

    def __init__(
        self, class_counts: np.ndarray, max_margin: float = 0.5, scale: float = 10.0
    ) -> None:
        counts = np.asarray(class_counts, dtype=np.float64)
        if counts.ndim != 1 or np.any(counts < 0):
            raise ValueError("class_counts must be a nonnegative 1-D vector")
        if max_margin <= 0 or scale <= 0:
            raise ValueError("max_margin and scale must be positive")
        margins = 1.0 / np.sqrt(np.sqrt(np.maximum(counts, 1.0)))
        margins = margins * (max_margin / margins.max())
        self.margins = margins
        self.scale = scale
        self._ce = CrossEntropyLoss()

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        n, c = logits.shape
        adjusted = logits.copy()
        adjusted[np.arange(n), labels] -= self.margins[labels]
        loss, dadj = self._ce(self.scale * adjusted, labels)
        return loss, self.scale * dadj


class ClassBalancedLoss:
    """Effective-number class-balanced CE (Cui et al. 2019).

    Weight for class ``c`` is ``(1 - beta) / (1 - beta^{n_c})``, normalised to
    mean 1 across classes present in ``class_counts``.
    """

    def __init__(self, class_counts: np.ndarray, beta: float = 0.999) -> None:
        counts = np.asarray(class_counts, dtype=np.float64)
        if counts.ndim != 1 or np.any(counts < 0):
            raise ValueError("class_counts must be a nonnegative 1-D vector")
        if not 0.0 <= beta < 1.0:
            raise ValueError(f"beta must be in [0, 1), got {beta}")
        eff = 1.0 - np.power(beta, np.maximum(counts, 1.0))
        w = (1.0 - beta) / eff
        self.weights = w * (len(w) / w.sum())

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        n, c = logits.shape
        p = softmax(logits)
        y = one_hot(labels, c)
        w = self.weights[labels]
        eps = 1e-12
        loss = float(np.mean(-w * np.log(p[np.arange(n), labels] + eps)))
        dlogits = w[:, None] * (p - y) / n
        return loss, dlogits


def make_loss(name: str, class_counts: np.ndarray | None = None, **kwargs):
    """Loss factory keyed by the names used in the paper's tables.

    Args:
        name: one of ``ce``, ``focal``, ``prior_ce`` (a.k.a. balance loss),
            ``ldam``, ``class_balanced``.
        class_counts: global per-class sample counts; required by the
            distribution-aware losses.
    """
    name = name.lower().replace("-", "_")
    if name == "ce":
        return CrossEntropyLoss()
    if name == "focal":
        return FocalLoss(**kwargs)
    if class_counts is None:
        raise ValueError(f"loss {name!r} requires class_counts")
    counts = np.asarray(class_counts, dtype=np.float64)
    if name in ("prior_ce", "balance", "balance_loss"):
        return PriorCELoss(counts / counts.sum(), **kwargs)
    if name == "ldam":
        return LDAMLoss(counts, **kwargs)
    if name == "class_balanced":
        return ClassBalancedLoss(counts, **kwargs)
    raise KeyError(f"unknown loss {name!r}")
