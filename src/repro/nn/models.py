"""Model zoo mirroring the paper's backbones at laptop scale.

Paper setup -> our substitute:

* Fashion-MNIST: 3-layer MLP           -> :func:`make_mlp`
* SVHN / CIFAR-10: ResNet-18           -> :func:`make_resnet_lite` (depth="18")
* CIFAR-100 / ImageNet: ResNet-34      -> :func:`make_resnet_lite` (depth="34")

The "lite" ResNets keep the residual/stage structure of ResNet-18/34 but with
narrow channels so a full federated run finishes in seconds on a CPU.  The
momentum phenomena the paper studies (client drift, direction distortion,
minority collapse) are driven by the loss geometry of the long-tailed data,
not by model width — see DESIGN.md section 1.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.container import BasicBlock, Sequential
from repro.nn.conv import Conv2d, GlobalAvgPool2d
from repro.nn.layers import Dense, ReLU
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d, GroupNorm
from repro.utils.rng import as_generator

__all__ = ["make_mlp", "make_resnet_lite", "make_linear", "build_model", "MODEL_REGISTRY"]


def make_mlp(
    input_dim: int,
    num_classes: int,
    hidden: tuple[int, ...] = (64, 32),
    seed: int | np.random.Generator = 0,
) -> Sequential:
    """3-layer MLP used for Fashion-MNIST in the paper (scaled)."""
    rng = as_generator(seed)
    layers: list[Module] = []
    d = input_dim
    for h in hidden:
        layers.append(Dense(d, h, rng))
        layers.append(ReLU())
        d = h
    layers.append(Dense(d, num_classes, rng))
    return Sequential(*layers)


def make_linear(
    input_dim: int, num_classes: int, seed: int | np.random.Generator = 0
) -> Sequential:
    """Single linear layer — the convex testbed for theory checks."""
    rng = as_generator(seed)
    return Sequential(Dense(input_dim, num_classes, rng))


def make_resnet_lite(
    in_channels: int,
    image_size: int,
    num_classes: int,
    depth: str = "18",
    width: int = 8,
    seed: int | np.random.Generator = 0,
    norm: str = "group",
) -> Sequential:
    """Narrow ResNet with the 18/34 stage pattern over small images.

    Args:
        in_channels: input channels (3 for the image-like datasets).
        image_size: spatial side; must be divisible by 4 (two stride-2 stages).
        num_classes: classifier width.
        depth: "18" (2 blocks/stage), "34" (3 blocks/stage) or "micro"
            (1 block/stage — the speed option for parameter sweeps).
        width: base channel count (ResNet-18 uses 64; we default to 8).
        seed: init seed.
        norm: "group" (library default, deterministic under FL) or "batch"
            (the paper's actual ResNet normalisation; running statistics are
            averaged across clients by the simulation engine).
    """
    if depth not in ("18", "34", "micro"):
        raise ValueError(f"depth must be '18', '34' or 'micro', got {depth!r}")
    if image_size % 4:
        raise ValueError(f"image_size must be divisible by 4, got {image_size}")
    if norm not in ("group", "batch"):
        raise ValueError(f"norm must be 'group' or 'batch', got {norm!r}")
    rng = as_generator(seed)
    blocks_per_stage = {"micro": 1, "18": 2, "34": 3}[depth]
    c = width
    g = min(4, c)
    stem_norm = GroupNorm(g, c) if norm == "group" else BatchNorm2d(c)
    layers: list[Module] = [
        Conv2d(in_channels, c, 3, rng, stride=1, padding=1, bias=False),
        stem_norm,
        ReLU(),
    ]
    channels = [c, 2 * c, 4 * c]
    in_c = c
    for stage, out_c in enumerate(channels):
        for b in range(blocks_per_stage):
            stride = 2 if (stage > 0 and b == 0) else 1
            layers.append(BasicBlock(in_c, out_c, rng, stride=stride, norm=norm))
            in_c = out_c
    layers += [GlobalAvgPool2d(), Dense(in_c, num_classes, rng)]
    return Sequential(*layers)


MODEL_REGISTRY: dict[str, Callable[..., Sequential]] = {
    "mlp": make_mlp,
    "linear": make_linear,
    "resnet-lite-18": lambda **kw: make_resnet_lite(depth="18", **kw),
    "resnet-lite-34": lambda **kw: make_resnet_lite(depth="34", **kw),
}


def build_model(name: str, **kwargs) -> Sequential:
    """Build a model from the registry by name."""
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}"
        ) from None
    return factory(**kwargs)
