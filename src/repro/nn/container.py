"""Composite modules: Sequential chains and residual blocks."""

from __future__ import annotations

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.layers import ReLU
from repro.nn.module import Module, adopt_child
from repro.nn.norm import BatchNorm2d, GroupNorm

__all__ = ["Sequential", "BasicBlock"]


class Sequential(Module):
    """Chain of modules applied in order.

    Child parameters are namespaced ``"<index>.<name>"`` and alias the child
    arrays, so in-place updates through the parent propagate to the children
    used in forward/backward.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.children_ = list(modules)
        for i, m in enumerate(self.children_):
            adopt_child(self, str(i), m)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for m in self.children_:
            x = m.forward(x, train=train)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for m in reversed(self.children_):
            dout = m.backward(dout)
        return dout

    def zero_grad(self) -> None:
        for m in self.children_:
            m.zero_grad()

    def __len__(self) -> int:
        return len(self.children_)

    def __getitem__(self, i: int) -> Module:
        return self.children_[i]


class BasicBlock(Module):
    """ResNet basic residual block: conv-norm-relu-conv-norm + skip.

    Uses GroupNorm by default (see :mod:`repro.nn.norm`).  When the input and
    output shapes differ (stride > 1 or channel change), a 1x1 convolution
    projects the skip path, as in He et al. (2016).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
        groups: int = 4,
        norm: str = "group",
    ) -> None:
        super().__init__()
        if norm not in ("group", "batch"):
            raise ValueError(f"norm must be 'group' or 'batch', got {norm!r}")
        g = min(groups, out_channels)
        while out_channels % g:
            g -= 1

        def make_norm():
            return GroupNorm(g, out_channels) if norm == "group" else BatchNorm2d(out_channels)

        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, stride=stride, padding=1, bias=False)
        self.norm1 = make_norm()
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, stride=1, padding=1, bias=False)
        self.norm2 = make_norm()
        self.relu2 = ReLU()
        self.project: Conv2d | None = None
        if stride != 1 or in_channels != out_channels:
            self.project = Conv2d(
                in_channels, out_channels, 1, rng, stride=stride, padding=0, bias=False
            )
        for name, child in self._named_children():
            adopt_child(self, name, child)
        self._skip: np.ndarray | None = None

    def _named_children(self) -> list[tuple[str, Module]]:
        out = [
            ("conv1", self.conv1),
            ("norm1", self.norm1),
            ("conv2", self.conv2),
            ("norm2", self.norm2),
        ]
        if self.project is not None:
            out.append(("project", self.project))
        return out

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        skip = x if self.project is None else self.project.forward(x, train=train)
        h = self.conv1.forward(x, train=train)
        h = self.norm1.forward(h, train=train)
        h = self.relu1.forward(h, train=train)
        h = self.conv2.forward(h, train=train)
        h = self.norm2.forward(h, train=train)
        return self.relu2.forward(h + skip, train=train)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        d = self.relu2.backward(dout)
        dskip = d
        d = self.norm2.backward(d)
        d = self.conv2.backward(d)
        d = self.relu1.backward(d)
        d = self.norm1.backward(d)
        dx = self.conv1.backward(d)
        if self.project is not None:
            dx = dx + self.project.backward(dskip)
        else:
            dx = dx + dskip
        return dx

    def zero_grad(self) -> None:
        for _, child in self._named_children():
            child.zero_grad()
