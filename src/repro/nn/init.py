"""Weight initializers.

He (Kaiming) initialization is the default everywhere since all models use
ReLU nonlinearities, matching the paper's ResNet/MLP setups.
"""

from __future__ import annotations

import numpy as np

__all__ = ["he_normal", "glorot_uniform", "zeros", "ones"]


def he_normal(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    """He-normal initialization: N(0, sqrt(2 / fan_in))."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def glorot_uniform(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError(f"fan_in/fan_out must be positive, got {fan_in}/{fan_out}")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
