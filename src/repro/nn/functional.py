"""Stateless numerical primitives for the NN engine.

Everything here is vectorized over the batch dimension and allocates as little
as possible; these functions sit inside the innermost training loop of every
federated algorithm in the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "relu",
    "relu_grad",
    "accuracy",
    "per_class_accuracy",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    np.exp(z, out=z)
    z /= z.sum(axis=axis, keepdims=True)
    return z


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable log-softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into shape ``(n, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels out of range [0, {num_classes}): min={labels.min()} max={labels.max()}"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, dout: np.ndarray) -> np.ndarray:
    """Gradient of ReLU evaluated at pre-activation ``x``."""
    return dout * (x > 0)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of ``logits`` (n, C) against integer ``labels`` (n,)."""
    if logits.shape[0] == 0:
        return 0.0
    return float(np.mean(logits.argmax(axis=1) == labels))


def per_class_accuracy(
    logits: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Per-class top-1 accuracy; classes absent from ``labels`` get NaN."""
    pred = logits.argmax(axis=1)
    out = np.full(num_classes, np.nan, dtype=np.float64)
    for c in range(num_classes):
        mask = labels == c
        if mask.any():
            out[c] = float(np.mean(pred[mask] == c))
    return out
