"""Normalization layers.

GroupNorm is the library default: it has no cross-client state, so federated
aggregation of parameters is exact and runs are seed-deterministic.
BatchNorm2d is provided for fidelity with the paper's ResNet-18/34 backbones;
its running statistics live in ``buffers`` and never enter the flattened
parameter vector (hence never the momentum algebra).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module

__all__ = ["GroupNorm", "BatchNorm2d", "LayerNorm"]

_EPS = 1e-5


class GroupNorm(Module):
    """Group normalization over NCHW inputs.

    Args:
        num_groups: number of channel groups; must divide ``num_channels``.
        num_channels: channel count of the input.
    """

    def __init__(self, num_groups: int, num_channels: int) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels {num_channels} not divisible by num_groups {num_groups}"
            )
        self.g = num_groups
        self.c = num_channels
        self.params["gamma"] = np.ones(num_channels, dtype=np.float64)
        self.params["beta"] = np.zeros(num_channels, dtype=np.float64)
        self.init_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.c:
            raise ValueError(f"GroupNorm expected (n, {self.c}, h, w), got {x.shape}")
        n, c, h, w = x.shape
        xg = x.reshape(n, self.g, -1)
        mu = xg.mean(axis=2, keepdims=True)
        var = xg.var(axis=2, keepdims=True)
        xhat = ((xg - mu) / np.sqrt(var + _EPS)).reshape(n, c, h, w)
        out = xhat * self.params["gamma"][None, :, None, None]
        out += self.params["beta"][None, :, None, None]
        if train:
            self._cache = (xhat, var, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        xhat, var, x_shape = self._cache
        n, c, h, w = x_shape
        self.grads["gamma"] += (dout * xhat).sum(axis=(0, 2, 3))
        self.grads["beta"] += dout.sum(axis=(0, 2, 3))
        dxhat = dout * self.params["gamma"][None, :, None, None]
        dxg = dxhat.reshape(n, self.g, -1)
        xg = xhat.reshape(n, self.g, -1)
        m = dxg.shape[2]
        istd = 1.0 / np.sqrt(var + _EPS)
        dx = istd * (
            dxg - dxg.mean(axis=2, keepdims=True) - xg * (dxg * xg).mean(axis=2, keepdims=True)
        )
        return dx.reshape(x_shape)


class BatchNorm2d(Module):
    """Batch normalization over NCHW inputs with running statistics."""

    def __init__(self, num_channels: int, momentum: float = 0.1) -> None:
        super().__init__()
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.c = num_channels
        self.momentum = momentum
        self.params["gamma"] = np.ones(num_channels, dtype=np.float64)
        self.params["beta"] = np.zeros(num_channels, dtype=np.float64)
        self.buffers["running_mean"] = np.zeros(num_channels, dtype=np.float64)
        self.buffers["running_var"] = np.ones(num_channels, dtype=np.float64)
        self.init_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.c:
            raise ValueError(f"BatchNorm2d expected (n, {self.c}, h, w), got {x.shape}")
        if train:
            mu = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self.buffers["running_mean"] *= 1 - m
            self.buffers["running_mean"] += m * mu
            self.buffers["running_var"] *= 1 - m
            self.buffers["running_var"] += m * var
        else:
            mu = self.buffers["running_mean"]
            var = self.buffers["running_var"]
        xhat = (x - mu[None, :, None, None]) / np.sqrt(var + _EPS)[None, :, None, None]
        out = xhat * self.params["gamma"][None, :, None, None]
        out += self.params["beta"][None, :, None, None]
        if train:
            self._cache = (xhat, var, x.shape)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        xhat, var, x_shape = self._cache
        n, c, h, w = x_shape
        m = n * h * w
        self.grads["gamma"] += (dout * xhat).sum(axis=(0, 2, 3))
        self.grads["beta"] += dout.sum(axis=(0, 2, 3))
        dxhat = dout * self.params["gamma"][None, :, None, None]
        istd = (1.0 / np.sqrt(var + _EPS))[None, :, None, None]
        mean_dxhat = dxhat.mean(axis=(0, 2, 3), keepdims=True)
        mean_dxhat_xhat = (dxhat * xhat).mean(axis=(0, 2, 3), keepdims=True)
        return istd * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat)


class LayerNorm(Module):
    """Layer normalization over the last axis of (n, d) inputs."""

    def __init__(self, dim: int) -> None:
        super().__init__()
        self.dim = dim
        self.params["gamma"] = np.ones(dim, dtype=np.float64)
        self.params["beta"] = np.zeros(dim, dtype=np.float64)
        self.init_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"LayerNorm expected (n, {self.dim}), got {x.shape}")
        mu = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        xhat = (x - mu) / np.sqrt(var + _EPS)
        if train:
            self._cache = (xhat, var)
        return xhat * self.params["gamma"] + self.params["beta"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(train=True)")
        xhat, var = self._cache
        self.grads["gamma"] += (dout * xhat).sum(axis=0)
        self.grads["beta"] += dout.sum(axis=0)
        dxhat = dout * self.params["gamma"]
        istd = 1.0 / np.sqrt(var + _EPS)
        return istd * (
            dxhat
            - dxhat.mean(axis=1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=1, keepdims=True)
        )
