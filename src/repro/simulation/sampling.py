"""Client-sampling strategies.

The paper's related work highlights client-selection approaches for
long-tailed FL ([15, 58]); this module makes the engine's cohort selection
pluggable:

* :class:`UniformSampler` — the default (paper setting): uniform without
  replacement.
* :class:`ScoreBiasedSampler` — oversamples scarce-data clients with
  probability ``softmax(s_k / T)``; combines with any algorithm.
* :class:`RoundRobinSampler` — deterministic full coverage (useful in
  debugging and fairness studies).

Install via ``FederatedSimulation(..., client_sampler=...)``; the engine
falls back to the context's built-in uniform sampling when None.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import client_scores
from repro.core.weighting import softmax_weights

__all__ = ["UniformSampler", "ScoreBiasedSampler", "RoundRobinSampler"]


class UniformSampler:
    """Uniform-without-replacement cohort sampling (the paper's default)."""

    def __call__(self, ctx, round_idx: int) -> np.ndarray:
        return ctx.sample_clients(round_idx)


class ScoreBiasedSampler:
    """Cohort sampling biased toward clients with globally scarce data.

    Sampling probabilities are ``softmax(s_k / temperature)`` over all
    clients, drawn without replacement.  With a large temperature this
    degrades gracefully to uniform sampling.
    """

    def __init__(self, temperature: float = 0.05, score_mode: str = "signed") -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature
        self.score_mode = score_mode
        self._probs: np.ndarray | None = None

    def _ensure_probs(self, ctx) -> np.ndarray:
        if self._probs is None:
            scores = client_scores(
                ctx.dataset.client_counts.astype(np.float64), mode=self.score_mode
            )
            self._probs = softmax_weights(scores, self.temperature)
        return self._probs

    def __call__(self, ctx, round_idx: int) -> np.ndarray:
        p = self._ensure_probs(ctx)
        k = ctx.num_clients
        m = max(1, int(round(ctx.config.participation * k)))
        rng = ctx.round_rng(round_idx)
        return np.sort(rng.choice(k, size=min(m, k), replace=False, p=p))


class RoundRobinSampler:
    """Deterministic rotation through all clients."""

    def __call__(self, ctx, round_idx: int) -> np.ndarray:
        k = ctx.num_clients
        m = max(1, int(round(ctx.config.participation * k)))
        start = (round_idx * m) % k
        idx = (start + np.arange(m)) % k
        return np.sort(np.unique(idx))
