"""Federated simulation engine: configs, context, round loop, history."""

from repro.simulation.config import FLConfig
from repro.simulation.context import SimulationContext
from repro.simulation.engine import FederatedSimulation, History, RoundRecord, TimedRoundRecord
from repro.simulation.sampling import UniformSampler, ScoreBiasedSampler, RoundRobinSampler
from repro.simulation.communication import CommunicationModel, CostBreakdown, comm_profile
from repro.simulation.serialization import (
    save_checkpoint,
    load_checkpoint,
    save_history,
    load_history,
    history_to_dict,
    history_from_dict,
    round_record_to_dict,
    round_record_from_dict,
)

__all__ = [
    "FLConfig",
    "SimulationContext",
    "FederatedSimulation",
    "History",
    "RoundRecord",
    "TimedRoundRecord",
    "UniformSampler",
    "ScoreBiasedSampler",
    "RoundRobinSampler",
    "CommunicationModel",
    "comm_profile",
    "CostBreakdown",
    "save_checkpoint",
    "load_checkpoint",
    "save_history",
    "load_history",
    "history_to_dict",
    "history_from_dict",
    "round_record_to_dict",
    "round_record_from_dict",
]
