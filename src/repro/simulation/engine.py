"""The federated round loop.

``FederatedSimulation`` owns the outer loop: sample a cohort, run each
client's local update through the algorithm, aggregate, evaluate, log.
Algorithms implement the :class:`FederatedAlgorithm` protocol
(:mod:`repro.algorithms.base`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.registry import FederatedDataset
from repro.nn.functional import per_class_accuracy
from repro.nn.module import Module
from repro.nn.train import evaluate
from repro.simulation.config import FLConfig
from repro.simulation.context import SimulationContext

__all__ = [
    "RoundRecord",
    "TimedRoundRecord",
    "History",
    "FederatedSimulation",
    "evaluate_into_record",
    "BufferAverager",
    "attach_train_loss",
]


def attach_train_loss(algorithm, update) -> "object":
    """Copy the algorithm's last mean local training loss into ``update.extras``.

    Engines (and pool workers) call this right after ``client_update`` so the
    loss reaches loss-aware samplers
    (:class:`repro.runtime.scheduling.UtilitySampler`) without every algorithm
    having to thread it through by hand.  ``LocalSGDMixin._local_sgd`` records
    the loss as ``algorithm.last_train_loss``; a no-op for algorithms whose
    local loop never evaluates the plain loss (e.g. the SAM family's
    perturbed-gradient path).
    """
    loss = getattr(algorithm, "last_train_loss", None)
    if loss is not None and "train_loss" not in update.extras:
        update.extras["train_loss"] = float(loss)
    return update


class BufferAverager:
    """Per-round FedAvg-with-BN treatment of model buffers.

    BatchNorm-style running statistics: each client starts from the server's
    buffers; the server averages the post-training buffers afterwards.  A
    no-op for buffer-free models.  Shared by the synchronous and semi-sync
    engines so the treatment can't drift between them.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.active = bool(model.buffers)
        self.n = 0
        if self.active:
            self.buf0 = model.get_buffers(copy=True)
            self.acc = {k: np.zeros_like(v) for k, v in self.buf0.items()}

    def before_client(self) -> None:
        if self.active:
            self.model.set_buffers(self.buf0)

    def after_client(self) -> None:
        self.n += 1
        if self.active:
            for name, v in self.model.buffers.items():
                self.acc[name] += v

    def commit(self) -> None:
        if self.active:
            inv = 1.0 / max(self.n, 1)
            self.model.set_buffers({k: v * inv for k, v in self.acc.items()})

MetricHook = Callable[[SimulationContext, int, np.ndarray, dict], None]


@dataclass
class RoundRecord:
    """Metrics of one communication round."""

    round: int
    test_accuracy: float = float("nan")
    test_loss: float = float("nan")
    per_class_accuracy: np.ndarray | None = None
    selected: np.ndarray | None = None
    wall_time: float = 0.0
    extras: dict = field(default_factory=dict)


@dataclass
class TimedRoundRecord(RoundRecord):
    """A :class:`RoundRecord` stamped with simulated wall-clock metadata.

    Produced by the event-driven runtimes (:mod:`repro.runtime`); ``round``
    counts evaluation windows rather than synchronous rounds.

    Attributes:
        virtual_time: simulated seconds elapsed when the record closed.
        staleness: mean staleness (server versions) of the window's updates;
            for semi-sync runs, the number of deadline-missing clients.
        concurrency: mean number of clients in flight during the window.
        updates_applied: cumulative server updates at record time.
    """

    virtual_time: float = 0.0
    staleness: float = 0.0
    concurrency: float = 0.0
    updates_applied: int = 0


@dataclass
class History:
    """Full trajectory of a federated run."""

    algorithm: str
    records: list[RoundRecord] = field(default_factory=list)

    @property
    def accuracy(self) -> np.ndarray:
        """Test accuracy series (NaN for non-evaluated rounds)."""
        return np.array([r.test_accuracy for r in self.records])

    @property
    def final_accuracy(self) -> float:
        vals = self.accuracy
        vals = vals[~np.isnan(vals)]
        return float(vals[-1]) if vals.size else float("nan")

    @property
    def best_accuracy(self) -> float:
        vals = self.accuracy
        vals = vals[~np.isnan(vals)]
        return float(vals.max()) if vals.size else float("nan")

    def rounds_to_accuracy(self, threshold: float) -> int | None:
        """First round index whose test accuracy reaches ``threshold``."""
        for r in self.records:
            if not np.isnan(r.test_accuracy) and r.test_accuracy >= threshold:
                return r.round
        return None

    def time_to_accuracy(self, threshold: float) -> float | None:
        """Virtual seconds until test accuracy first reaches ``threshold``.

        Only meaningful for histories of :class:`TimedRoundRecord`s (the
        event-driven runtimes); returns None when never reached or untimed.
        """
        for r in self.records:
            vt = getattr(r, "virtual_time", None)
            if vt is None:
                continue
            if not np.isnan(r.test_accuracy) and r.test_accuracy >= threshold:
                return float(vt)
        return None

    def tail_accuracy(self, k: int = 5) -> float:
        """Mean of the last ``k`` evaluated accuracies (stability-robust)."""
        vals = self.accuracy
        vals = vals[~np.isnan(vals)]
        if vals.size == 0:
            return float("nan")
        return float(vals[-k:].mean())


class FederatedSimulation:
    """Run a federated algorithm over a dataset.

    Args:
        algorithm: object implementing the FederatedAlgorithm protocol.
        model: the global model instance (its initial parameters seed x^0).
        dataset: a :class:`repro.data.FederatedDataset`.
        config: run hyper-parameters.
        loss_builder / sampler_builder: optional per-client factories (see
            :class:`SimulationContext`).
        backend / workers / model_builder / algo_builder: execution backend
            for the round's client updates (:mod:`repro.parallel.backend`)
            — a backend instance, a registry name (``"serial"`` /
            ``"process"`` / ``"thread"``), or None to derive from
            ``workers``.  Non-serial backends need a ``model_builder`` for
            worker replicas; the job contract ships packed client state,
            buffers and broadcast state, so results stay bit-identical to
            serial execution.
        metric_hooks: callables invoked after each evaluation with
            ``(ctx, round_idx, x_flat, extras_dict)`` — used by the analysis
            benches to record e.g. neuron concentration.
    """

    def __init__(
        self,
        algorithm,
        model: Module,
        dataset: FederatedDataset,
        config: FLConfig,
        loss_builder=None,
        sampler_builder=None,
        backend=None,
        workers: int | None = None,
        model_builder=None,
        algo_builder=None,
        metric_hooks: Sequence[MetricHook] = (),
        client_sampler=None,
    ) -> None:
        # imported lazily — repro.parallel builds on this module's helpers,
        # not the other way around
        from repro.parallel.backend import prepare_engine_backend

        self.algorithm = algorithm
        self.ctx = SimulationContext(
            model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
        )
        self.metric_hooks = list(metric_hooks)
        self.client_sampler = client_sampler  # see repro.simulation.sampling
        self._workers = workers
        self.backend_name, self._backend, self._algo_builder = prepare_engine_backend(
            backend, workers, algorithm, model_builder, algo_builder
        )
        self._model_builder = model_builder
        self._loss_builder = loss_builder
        self._sampler_builder = sampler_builder

    def run(
        self,
        verbose: bool = False,
        recorder=None,
        resume: dict | None = None,
        stop_after_rounds: int | None = None,
        profiler=None,
    ) -> History:
        # the round loop lives in the shared event core: synchronous rounds
        # are the barrier policy (zero-latency dispatches, a barrier tick
        # closing each round).  Imported lazily — repro.runtime builds on
        # this module's records, not the other way around.
        from repro.parallel.backend import make_backend
        from repro.runtime.events import BarrierPolicy, EventCore

        owned = self._backend is None
        backend = (
            make_backend(self.backend_name, workers=self._workers)
            if owned
            else self._backend
        )
        core = EventCore(
            self.ctx,
            self.algorithm,
            BarrierPolicy(),
            metric_hooks=self.metric_hooks,
            client_sampler=self.client_sampler,
            backend=backend,
        )
        # bind inside the guard: a failed bind (or run) must still reap an
        # owned backend's workers instead of leaking the fork pool
        try:
            backend.bind(
                self.ctx,
                self.algorithm,
                model_builder=self._model_builder,
                algo_builder=self._algo_builder,
                loss_builder=self._loss_builder,
                sampler_builder=self._sampler_builder,
            )
            history = core.run(
                verbose=verbose, recorder=recorder, resume=resume,
                stop_after_rounds=stop_after_rounds, profiler=profiler,
            )
        finally:
            # engine_owned instances (the facade's RemoteBackend) carry
            # run-scoped resources — a listener and its worker fleet — and
            # are reaped here too, unlike plain caller-owned instances
            if owned or getattr(backend, "engine_owned", False):
                backend.close()
        self.final_params = core.x
        return history


def evaluate_into_record(
    ctx: SimulationContext,
    rec: RoundRecord,
    round_idx: int,
    x: np.ndarray,
    metric_hooks: Sequence[MetricHook] = (),
) -> None:
    """Evaluate the global model ``x`` and fill ``rec`` in place.

    Shared by the synchronous, semi-synchronous and asynchronous engines so
    evaluation bookkeeping (per-class accuracy, metric hooks) stays in one
    place.
    """
    ctx.load_params(x)
    res = evaluate(ctx.model, ctx.dataset.x_test, ctx.dataset.y_test)
    rec.test_accuracy = res["accuracy"]
    if ctx.config.eval_per_class:
        logits = _batched_logits(ctx.model, ctx.dataset.x_test)
        rec.per_class_accuracy = per_class_accuracy(logits, ctx.dataset.y_test, ctx.num_classes)
    for hook in metric_hooks:
        hook(ctx, round_idx, x, rec.extras)


def _batched_logits(model: Module, x: np.ndarray, batch: int = 256) -> np.ndarray:
    outs = [model.forward(x[lo : lo + batch], train=False) for lo in range(0, len(x), batch)]
    return np.concatenate(outs, axis=0)
