"""Experiment configuration for federated simulations.

Defaults mirror the paper's section 7.1 (batch 50, local lr 0.1, global lr 1,
local epochs 5, participation 10%), with round counts left to each benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.utils.validation import check_fraction, check_positive

__all__ = ["FLConfig", "resolve_lr_schedule"]


def resolve_lr_schedule(
    schedule: "Callable[[int], float] | dict | None", rounds: int
) -> "Callable[[int], float] | None":
    """Materialize a config's ``lr_schedule`` into a callable.

    Accepts the three forms :class:`FLConfig` allows: None (constant lr), a
    bare callable (used as-is), or the serializable named form
    ``{"name": "cosine", ...}`` resolved through
    :func:`repro.nn.schedules.make_schedule` — extra keys forward to the
    schedule constructor and ``total_rounds`` defaults to the run's round
    count, so specs survive the JSON round-trip without hand-attaching
    callables.
    """
    if schedule is None or callable(schedule):
        return schedule
    from repro.nn.schedules import make_schedule

    kwargs = dict(schedule)
    name = kwargs.pop("name")
    total = kwargs.pop("total_rounds", rounds)
    return make_schedule(name, total, **kwargs)


@dataclass
class FLConfig:
    """Hyper-parameters of one federated run.

    Attributes:
        rounds: communication rounds R.
        batch_size: local minibatch size.
        local_epochs: passes over each client's data per round.
        lr_local: client learning rate eta_l.
        lr_global: server learning rate eta_g.
        participation: fraction of clients sampled each round.
        eval_every: evaluate the global model every this many rounds.
        eval_per_class: also record per-class test accuracy.
        seed: master seed for client sampling and local shuffling.
        max_batches_per_round: optional hard cap on local batches (speed knob
            for tests; None = no cap).
        lr_schedule: optional multiplier on ``lr_local`` per round — either a
            callable ``round_idx -> multiplier`` (in-process only) or the
            serializable named form ``{"name": "cosine", ...}`` resolved from
            :mod:`repro.nn.schedules` (extra keys forward to the schedule;
            ``total_rounds`` defaults to ``rounds``); None = constant.
    """

    rounds: int = 50
    batch_size: int = 50
    local_epochs: int = 5
    lr_local: float = 0.1
    lr_global: float = 1.0
    participation: float = 0.1
    eval_every: int = 1
    eval_per_class: bool = False
    seed: int = 0
    max_batches_per_round: int | None = None
    lr_schedule: Callable[[int], float] | dict | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1, got {self.local_epochs}")
        check_positive(self.lr_local, "lr_local")
        check_positive(self.lr_global, "lr_global")
        check_fraction(self.participation, "participation")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.max_batches_per_round is not None and self.max_batches_per_round < 1:
            raise ValueError("max_batches_per_round must be >= 1 or None")
        if isinstance(self.lr_schedule, dict):
            from repro.nn.schedules import SCHEDULE_NAMES

            name = self.lr_schedule.get("name")
            if name not in SCHEDULE_NAMES:
                raise ValueError(
                    "named lr_schedule needs a 'name' key from "
                    f"{SCHEDULE_NAMES}, got {self.lr_schedule!r}"
                )
        elif self.lr_schedule is not None and not callable(self.lr_schedule):
            raise TypeError(
                "lr_schedule must be a callable round_idx -> multiplier, a "
                "{'name': ...} schedule spec, or None, "
                f"got {type(self.lr_schedule).__name__}"
            )
