"""Communication-cost accounting.

FL papers report accuracy *per communication round*; a library should also
expose the bytes behind each round.  The model estimates per-round traffic
from first principles:

* downlink: broadcast parameters (+ the momentum vector for FedCM/FedWCM);
* uplink: one displacement per sampled client (+ algorithm extras such as
  SCAFFOLD's control-variate delta, CReFF's feature statistics);
* one-time: FedWCM's (optionally encrypted) distribution gathering.

All sizes assume float64 parameters (this library's dtype); pass
``bytes_per_param=4`` for a float32 deployment estimate.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["CommunicationModel", "CostBreakdown", "comm_profile"]

# per-algorithm multipliers: (downlink vectors, uplink vectors per client)
_PROFILES: dict[str, tuple[float, float]] = {
    "fedavg": (1.0, 1.0),
    "fedasync": (1.0, 1.0),  # per-update broadcast + upload, no extra state
    "fedbuff": (1.0, 1.0),
    "fedprox": (1.0, 1.0),
    "fedavgm": (1.0, 1.0),
    "fednova": (1.0, 1.0),
    "fedadam": (1.0, 1.0),
    "fedyogi": (1.0, 1.0),
    "fedsam": (1.0, 1.0),
    "feddyn": (1.0, 1.0),  # dual h_i lives client-side, no extra traffic
    "fedspeed": (1.0, 1.0),
    "fedlesam": (1.0, 1.0),  # reuses the two latest broadcasts, no extras
    "fedsmoo": (2.0, 1.0),  # params + shared ascent estimate mu down
    "balancefl": (1.0, 1.0),
    "fedgrab": (1.0, 1.0),
    "creff": (1.0, 1.0),  # + feature stats, added separately
    "scaffold": (2.0, 2.0),  # server c + client delta-c_i
    "fedcm": (2.0, 1.0),  # params + Delta down; displacement up
    "mofedsam": (2.0, 1.0),
    "fedwcm": (2.0, 1.0),
    "fedwcm-x": (2.0, 1.0),
    "fedwcm-he": (2.0, 1.0),
}


def _normalize(method: str) -> str:
    key = method.lower()
    if key.startswith("fedcm+"):
        key = "fedcm"
    return key


def comm_profile(method: str) -> tuple[float, float]:
    """(downlink, uplink) parameter-vector multipliers for ``method``.

    The multipliers count how many parameter-sized vectors each sampled
    client moves per round (e.g. SCAFFOLD ships the control variate both
    ways: ``(2.0, 2.0)``).  Raises ``KeyError`` for unknown methods so
    callers can fall back to a generic one-down/one-up estimate.
    """
    key = _normalize(method)
    if key not in _PROFILES:
        raise KeyError(f"unknown method {method!r}; available: {sorted(_PROFILES)}")
    return _PROFILES[key]


@dataclass(frozen=True)
class CostBreakdown:
    """Bytes moved by one federated run."""

    downlink_per_round: int
    uplink_per_round: int
    one_time: int
    rounds: int

    @property
    def per_round(self) -> int:
        return self.downlink_per_round + self.uplink_per_round

    @property
    def total(self) -> int:
        return self.per_round * self.rounds + self.one_time

    def as_dict(self) -> dict[str, int]:
        return {
            "downlink_per_round": self.downlink_per_round,
            "uplink_per_round": self.uplink_per_round,
            "one_time": self.one_time,
            "per_round": self.per_round,
            "total": self.total,
            "rounds": self.rounds,
        }


class CommunicationModel:
    """Estimate traffic for a method on a given problem size.

    Args:
        num_params: model parameter count.
        clients_per_round: sampled cohort size.
        bytes_per_param: 8 for float64 (library default), 4 for float32.
    """

    def __init__(
        self, num_params: int, clients_per_round: int, bytes_per_param: int = 8
    ) -> None:
        if num_params < 1 or clients_per_round < 1 or bytes_per_param < 1:
            raise ValueError("num_params, clients_per_round, bytes_per_param must be >= 1")
        self.p = num_params
        self.m = clients_per_round
        self.bpp = bytes_per_param

    def estimate(
        self,
        method: str,
        rounds: int,
        num_classes: int = 10,
        feature_dim: int = 0,
        he_ciphertext_bytes: int = 0,
        total_clients: int | None = None,
    ) -> CostBreakdown:
        """Cost breakdown for ``method`` over ``rounds`` rounds.

        Args:
            num_classes: for distribution vectors / feature statistics.
            feature_dim: penultimate width (CReFF feature stats).
            he_ciphertext_bytes: ciphertext size when the method gathers the
                distribution under encryption (``fedwcm-he``).
            total_clients: federation size (for one-time gathering).
        """
        key = _normalize(method)
        down_mult, up_mult = comm_profile(key)
        vec = self.p * self.bpp
        downlink = int(down_mult * vec * self.m)
        uplink = int(up_mult * vec * self.m)

        if key == "creff" and feature_dim > 0:
            # per class: mean + variance + count
            stats = num_classes * (2 * feature_dim + 1) * self.bpp
            uplink += stats * self.m

        one_time = 0
        k_total = total_clients or self.m
        if key in ("fedwcm", "fedwcm-x"):
            # plaintext count vectors up, global distribution down
            one_time = (k_total + k_total) * num_classes * 8
        elif key == "fedwcm-he":
            ct = he_ciphertext_bytes or 0
            one_time = k_total * ct + k_total * num_classes * 8
        return CostBreakdown(
            downlink_per_round=downlink,
            uplink_per_round=uplink,
            one_time=one_time,
            rounds=rounds,
        )

    def client_payload_bytes(self, method: str) -> int:
        """Bytes one client moves (down + up) for a single update of ``method``.

        This is the quantity :class:`repro.runtime.clock.LatencyModel` divides
        by link bandwidth to price communication in simulated seconds, so
        per-algorithm payload multipliers (FedCM's extra downlink vector,
        SCAFFOLD's two-way control variates) show up in virtual time.
        """
        down_mult, up_mult = comm_profile(method)
        return int((down_mult + up_mult) * self.p * self.bpp)

    def compare(self, methods: list[str], rounds: int, **kwargs) -> dict[str, dict[str, int]]:
        """Tabulate cost breakdowns for several methods."""
        return {m: self.estimate(m, rounds, **kwargs).as_dict() for m in methods}
