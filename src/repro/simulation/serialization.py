"""Checkpointing and result persistence.

* :func:`save_checkpoint` / :func:`load_checkpoint` — flat parameter vector
  plus layout metadata (round-trips across sessions; the layout is verified
  on load so a checkpoint can never be silently written into a mismatched
  model).
* :func:`save_history` / :func:`load_history` — JSON round records, the
  exchange format the benchmark harness and examples use for regenerated
  table rows.  Files carry a ``schema`` version: v2 (current) round-trips
  ``RoundRecord.extras`` losslessly (NaN/inf floats and ndarrays are tagged)
  and preserves the event-driven runtimes' :class:`TimedRoundRecord` timing
  fields; v1 files (no ``schema`` key, pre-runtime) still load.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.simulation.engine import History, RoundRecord, TimedRoundRecord
from repro.utils.pytree import ParamSpec

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_history",
    "load_history",
    "history_to_dict",
    "history_from_dict",
    "round_record_to_dict",
    "round_record_from_dict",
    "HISTORY_SCHEMA_VERSION",
]

HISTORY_SCHEMA_VERSION = 2

# TimedRoundRecord-only fields, persisted when present (schema >= 2)
_TIMED_FIELDS = ("virtual_time", "staleness", "concurrency", "updates_applied")


def save_checkpoint(
    path: str,
    x_flat: np.ndarray,
    spec: ParamSpec,
    round_idx: int | None = None,
    extras: dict | None = None,
) -> None:
    """Persist a flattened model state with its layout metadata (.npz)."""
    if x_flat.shape != (spec.size,):
        raise ValueError(f"x_flat shape {x_flat.shape} != spec size ({spec.size},)")
    meta = {
        "names": list(spec.names),
        "shapes": [list(s) for s in spec.shapes],
        "round": round_idx,
        "extras": extras or {},
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, x=x_flat, meta=json.dumps(meta))


def load_checkpoint(path: str, spec: ParamSpec | None = None) -> tuple[np.ndarray, dict]:
    """Load a checkpoint; verifies layout when ``spec`` is given.

    Returns:
        ``(x_flat, meta)``.
    """
    with np.load(path, allow_pickle=False) as data:
        x = np.asarray(data["x"], dtype=np.float64)
        meta = json.loads(str(data["meta"]))
    if spec is not None:
        if list(spec.names) != meta["names"] or [list(s) for s in spec.shapes] != meta["shapes"]:
            raise ValueError(
                f"checkpoint layout does not match the target model: "
                f"{path} holds {len(meta['names'])} params"
            )
        if x.shape != (spec.size,):
            raise ValueError(f"checkpoint vector size {x.shape} != ({spec.size},)")
    return x, meta


def round_record_to_dict(r: RoundRecord) -> dict:
    """One record's strict-JSON form (the unit :func:`save_history` writes).

    Shared with the run journal (:mod:`repro.observe`) and sweep dumps so
    every persisted record speaks the same schema.
    """
    rec = {
        "round": r.round,
        "test_accuracy": _jsonable(r.test_accuracy),
        "test_loss": _jsonable(r.test_loss),
        "wall_time": r.wall_time,
        "selected": r.selected.tolist() if r.selected is not None else None,
        "per_class_accuracy": (
            _nan_list(r.per_class_accuracy) if r.per_class_accuracy is not None else None
        ),
        "extras": {k: _encode_extra(v) for k, v in r.extras.items()},
    }
    if isinstance(r, TimedRoundRecord):
        rec["kind"] = "timed"
        for name in _TIMED_FIELDS:
            rec[name] = getattr(r, name)
    return rec


def round_record_from_dict(rec: dict, schema: int = HISTORY_SCHEMA_VERSION) -> RoundRecord:
    """Rebuild one record from :func:`round_record_to_dict` output."""
    fields = dict(
        round=rec["round"],
        test_accuracy=_denan(rec["test_accuracy"]),
        test_loss=_denan(rec["test_loss"]),
        wall_time=rec.get("wall_time", 0.0),
        selected=(
            np.asarray(rec["selected"]) if rec.get("selected") is not None else None
        ),
        per_class_accuracy=(
            np.array([_denan(v) for v in rec["per_class_accuracy"]])
            if rec.get("per_class_accuracy") is not None
            else None
        ),
        extras=(
            {k: _decode_extra(v) for k, v in rec.get("extras", {}).items()}
            if schema >= 2
            else rec.get("extras", {})
        ),
    )
    if rec.get("kind") == "timed":
        for name in _TIMED_FIELDS:
            fields[name] = rec.get(name, 0)
        return TimedRoundRecord(**fields)
    return RoundRecord(**fields)


def history_to_dict(history: History) -> dict:
    """Schema-v2 JSON-safe form of a whole history."""
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "algorithm": history.algorithm,
        "records": [round_record_to_dict(r) for r in history.records],
    }


def history_from_dict(payload: dict) -> History:
    """Rebuild a history from :func:`history_to_dict` output (v1 or v2)."""
    schema = payload.get("schema", 1)
    h = History(algorithm=payload["algorithm"])
    h.records.extend(
        round_record_from_dict(rec, schema=schema) for rec in payload["records"]
    )
    return h


def save_history(path: str, history: History) -> None:
    """Persist a run history as schema-v2 JSON (arrays are tagged lists)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as f:
        json.dump(history_to_dict(history), f, indent=1)


def load_history(path: str) -> History:
    """Load a JSON history saved by :func:`save_history` (schema v1 or v2)."""
    with open(path) as f:
        return history_from_dict(json.load(f))


def _encode_extra(v):
    """Strict-JSON encoding of extras values that survives a round trip."""
    if isinstance(v, np.ndarray):
        return {
            "__ndarray__": True,
            "dtype": str(v.dtype),
            "shape": list(v.shape),
            "data": [_encode_extra(s) for s in v.ravel().tolist()],
        }
    if isinstance(v, (np.floating, float)):
        v = float(v)
        if np.isnan(v):
            return {"__float__": "nan"}
        if np.isinf(v):
            return {"__float__": "inf" if v > 0 else "-inf"}
        return v
    if isinstance(v, (np.integer, int)) and not isinstance(v, bool):
        return int(v)
    if isinstance(v, np.bool_):
        return bool(v)
    if isinstance(v, dict):
        return {str(k): _encode_extra(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_encode_extra(x) for x in v]
    return v


def _decode_extra(v):
    if isinstance(v, dict):
        if v.get("__ndarray__"):
            flat = np.array([_decode_extra(s) for s in v["data"]], dtype=v["dtype"])
            return flat.reshape(v["shape"])
        if "__float__" in v and len(v) == 1:
            return float(v["__float__"])
        return {k: _decode_extra(x) for k, x in v.items()}
    if isinstance(v, list):
        return [_decode_extra(x) for x in v]
    return v


def _jsonable(v):
    if isinstance(v, np.ndarray):
        return _nan_list(v)
    if isinstance(v, (np.floating, float)):
        v = float(v)
        return None if np.isnan(v) else v
    if isinstance(v, np.integer):
        return int(v)
    return v


def _nan_list(arr: np.ndarray) -> list:
    return [None if (isinstance(v, float) and np.isnan(v)) else float(v) for v in arr.tolist()]


def _denan(v):
    return float("nan") if v is None else float(v)
