"""Checkpointing and result persistence.

* :func:`save_checkpoint` / :func:`load_checkpoint` — flat parameter vector
  plus layout metadata (round-trips across sessions; the layout is verified
  on load so a checkpoint can never be silently written into a mismatched
  model).
* :func:`save_history` / :func:`load_history` — JSON round records, the
  exchange format the benchmark harness and examples use for regenerated
  table rows.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import numpy as np

from repro.simulation.engine import History, RoundRecord
from repro.utils.pytree import ParamSpec

__all__ = ["save_checkpoint", "load_checkpoint", "save_history", "load_history"]


def save_checkpoint(
    path: str,
    x_flat: np.ndarray,
    spec: ParamSpec,
    round_idx: int | None = None,
    extras: dict | None = None,
) -> None:
    """Persist a flattened model state with its layout metadata (.npz)."""
    if x_flat.shape != (spec.size,):
        raise ValueError(f"x_flat shape {x_flat.shape} != spec size ({spec.size},)")
    meta = {
        "names": list(spec.names),
        "shapes": [list(s) for s in spec.shapes],
        "round": round_idx,
        "extras": extras or {},
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(path, x=x_flat, meta=json.dumps(meta))


def load_checkpoint(path: str, spec: ParamSpec | None = None) -> tuple[np.ndarray, dict]:
    """Load a checkpoint; verifies layout when ``spec`` is given.

    Returns:
        ``(x_flat, meta)``.
    """
    with np.load(path, allow_pickle=False) as data:
        x = np.asarray(data["x"], dtype=np.float64)
        meta = json.loads(str(data["meta"]))
    if spec is not None:
        if list(spec.names) != meta["names"] or [list(s) for s in spec.shapes] != meta["shapes"]:
            raise ValueError(
                f"checkpoint layout does not match the target model: "
                f"{path} holds {len(meta['names'])} params"
            )
        if x.shape != (spec.size,):
            raise ValueError(f"checkpoint vector size {x.shape} != ({spec.size},)")
    return x, meta


def save_history(path: str, history: History) -> None:
    """Persist a run history as JSON (arrays are converted to lists)."""
    payload = {"algorithm": history.algorithm, "records": []}
    for r in history.records:
        rec = {
            "round": r.round,
            "test_accuracy": _jsonable(r.test_accuracy),
            "test_loss": _jsonable(r.test_loss),
            "wall_time": r.wall_time,
            "selected": r.selected.tolist() if r.selected is not None else None,
            "per_class_accuracy": (
                _nan_list(r.per_class_accuracy) if r.per_class_accuracy is not None else None
            ),
            "extras": {k: _jsonable(v) for k, v in r.extras.items()},
        }
        payload["records"].append(rec)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as f:
        json.dump(payload, f, indent=1)


def load_history(path: str) -> History:
    """Load a JSON history saved by :func:`save_history`."""
    with open(path) as f:
        payload = json.load(f)
    h = History(algorithm=payload["algorithm"])
    for rec in payload["records"]:
        h.records.append(
            RoundRecord(
                round=rec["round"],
                test_accuracy=_denan(rec["test_accuracy"]),
                test_loss=_denan(rec["test_loss"]),
                wall_time=rec.get("wall_time", 0.0),
                selected=(
                    np.asarray(rec["selected"]) if rec.get("selected") is not None else None
                ),
                per_class_accuracy=(
                    np.array([_denan(v) for v in rec["per_class_accuracy"]])
                    if rec.get("per_class_accuracy") is not None
                    else None
                ),
                extras=rec.get("extras", {}),
            )
        )
    return h


def _jsonable(v):
    if isinstance(v, np.ndarray):
        return _nan_list(v)
    if isinstance(v, (np.floating, float)):
        v = float(v)
        return None if np.isnan(v) else v
    if isinstance(v, np.integer):
        return int(v)
    return v


def _nan_list(arr: np.ndarray) -> list:
    return [None if (isinstance(v, float) and np.isnan(v)) else float(v) for v in arr.tolist()]


def _denan(v):
    return float("nan") if v is None else float(v)
