"""Shared state handed to algorithms during a simulation.

The context owns the single model instance (reused across clients — the
engine serialises client execution; :mod:`repro.parallel` provides the
process-pool variant), the flattened parameter layout, per-client data and
deterministic per-(round, client) RNG streams.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.registry import FederatedDataset
from repro.data.sampler import UniformBatchSampler
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.simulation.config import FLConfig, resolve_lr_schedule
from repro.utils.pytree import ParamSpec, flatten_params, write_into_tree
from repro.utils.rng import keyed_rng

__all__ = ["SimulationContext"]

LossBuilder = Callable[["SimulationContext", int], object]
SamplerBuilder = Callable[[np.ndarray, int], object]


def _default_loss_builder(ctx: "SimulationContext", client_id: int) -> object:
    return CrossEntropyLoss()


def _default_sampler_builder(labels: np.ndarray, batch_size: int) -> object:
    return UniformBatchSampler(labels, batch_size)


class SimulationContext:
    """Everything an algorithm needs to run client updates and aggregation."""

    def __init__(
        self,
        model: Module,
        dataset: FederatedDataset,
        config: FLConfig,
        loss_builder: LossBuilder | None = None,
        sampler_builder: SamplerBuilder | None = None,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config
        self.loss_builder = loss_builder or _default_loss_builder
        self.sampler_builder = sampler_builder or _default_sampler_builder
        # named {"name": ...} schedules materialize once here, so lr_at stays
        # a cheap per-round call and specs can carry schedules through JSON
        self._lr_schedule = resolve_lr_schedule(config.lr_schedule, config.rounds)

        flat, spec = flatten_params(model.params)
        self.spec: ParamSpec = spec
        self.x0: np.ndarray = flat  # initial parameters (copy retained)
        self.dim: int = spec.size

        self._client_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._loss_cache: dict[int, object] = {}
        self._sampler_cache: dict[int, object] = {}
        self._grad_buf = np.empty(self.dim, dtype=np.float64)

    # -- data access ---------------------------------------------------------
    @property
    def num_clients(self) -> int:
        return self.dataset.num_clients

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes

    def client_xy(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached (features, labels) of client ``k``."""
        if k not in self._client_cache:
            self._client_cache[k] = self.dataset.client_data(k)
        return self._client_cache[k]

    def client_sizes(self) -> np.ndarray:
        return np.array([len(p) for p in self.dataset.partitions], dtype=np.int64)

    def loss_for(self, k: int) -> object:
        if k not in self._loss_cache:
            self._loss_cache[k] = self.loss_builder(self, k)
        return self._loss_cache[k]

    def sampler_for(self, k: int) -> object:
        if k not in self._sampler_cache:
            _, y = self.client_xy(k)
            self._sampler_cache[k] = self.sampler_builder(y, self.config.batch_size)
        return self._sampler_cache[k]

    # -- model parameter plumbing ---------------------------------------------
    def load_params(self, flat: np.ndarray) -> None:
        """Write a flat vector into the live model (copies into the arrays).

        ``spec`` was derived from this model's own param tree, so the
        key-match/shape validation ``set_params`` would redo per batch is
        settled at construction; copy straight into the arrays.
        """
        write_into_tree(flat, self.spec, self.model.params)

    def flat_gradient(self) -> np.ndarray:
        """Flatten the model's current gradients into the reusable buffer."""
        flatten_params(self.model.grads, spec=self.spec, out=self._grad_buf)
        return self._grad_buf

    def lr_at(self, round_idx: int) -> float:
        """Local learning rate for a round (base lr x optional schedule)."""
        lr = self.config.lr_local
        if self._lr_schedule is not None:
            lr *= float(self._lr_schedule(round_idx))
        return lr

    # -- determinism ------------------------------------------------------------
    def round_rng(self, round_idx: int) -> np.random.Generator:
        """Server-side stream for round ``round_idx`` (client sampling etc.)."""
        return keyed_rng(self.config.seed, 0xA5, round_idx)

    def client_rng(self, round_idx: int, client_id: int) -> np.random.Generator:
        """Client-local stream, independent of execution order."""
        return keyed_rng(self.config.seed, 0xC1, round_idx, client_id)

    # -- client sampling --------------------------------------------------------
    def sample_clients(self, round_idx: int) -> np.ndarray:
        """Sample the round's cohort: ceil(participation * K) distinct clients."""
        k = self.num_clients
        m = max(1, int(round(self.config.participation * k)))
        rng = self.round_rng(round_idx)
        return np.sort(rng.choice(k, size=min(m, k), replace=False))

    def nominal_batches(self) -> int:
        """B̂: local batches per round under a perfectly even data split."""
        n_avg = max(1, len(self.dataset.y_train) // max(1, self.num_clients))
        per_epoch = max(1, int(np.ceil(n_avg / self.config.batch_size)))
        return per_epoch * self.config.local_epochs
