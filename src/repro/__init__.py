"""FedWCM reproduction: momentum-based federated learning for long-tailed
non-IID data.

Public API tour:

* :mod:`repro.data` - synthetic long-tailed datasets and client partitions.
* :mod:`repro.nn` - the pure-NumPy NN engine (models, losses, training).
* :mod:`repro.core` - FedWCM's scoring / weighting / adaptive momentum.
* :mod:`repro.algorithms` - FedWCM, FedWCM-X and every baseline.
* :mod:`repro.simulation` - the federated round loop.
* :mod:`repro.runtime` - event-driven async runtime (virtual clock, latency
  models, FedAsync/FedBuff, deadline-based semi-sync rounds).
* :mod:`repro.experiments` - declarative, serializable ExperimentSpecs and
  the one ``run(spec)`` facade over every engine.
* :mod:`repro.observe` - JSONL run journal, metrics tailer (``repro
  watch``), resumable snapshots (``repro run --resume``).
* :mod:`repro.he` - homomorphic encryption for private distribution sharing.
* :mod:`repro.analysis` - neuron concentration / collapse diagnostics.
* :mod:`repro.theory` - convergence bounds and the quadratic testbed.

Quickstart::

    from repro.data import load_federated_dataset
    from repro.nn import make_mlp
    from repro.simulation import FLConfig, FederatedSimulation
    from repro.algorithms import make_method

    ds = load_federated_dataset("fashion-mnist-lite", imbalance_factor=0.1, beta=0.6)
    bundle = make_method("fedwcm")
    sim = FederatedSimulation(
        bundle.algorithm, make_mlp(32, 10), ds, FLConfig(rounds=50)
    )
    history = sim.run()
    print(history.final_accuracy)
"""

__version__ = "1.0.0"

from repro import (
    algorithms,
    analysis,
    core,
    data,
    experiments,
    he,
    nn,
    parallel,
    runtime,
    simulation,
    theory,
    utils,
)

__all__ = [
    "algorithms",
    "analysis",
    "core",
    "data",
    "experiments",
    "he",
    "nn",
    "parallel",
    "runtime",
    "simulation",
    "theory",
    "utils",
    "__version__",
]
