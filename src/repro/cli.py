"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — one federated run (method x dataset x hyper-parameters),
                 prints the learning curve and optionally saves history/
                 checkpoint files.
* ``compare``  — race several methods on one problem, ASCII plot + table.
* ``runtime``  — event-driven run under a virtual clock: ``fedasync`` /
                 ``fedbuff`` asynchronous aggregation or ``semisync``
                 deadline-based rounds, with pluggable client latency models.
* ``methods``  — list available algorithms.
* ``datasets`` — list available -lite datasets.

Examples::

    python -m repro run --method fedwcm --dataset cifar10-lite --if 0.1 --rounds 30
    python -m repro compare --methods fedavg,fedcm,fedwcm --if 0.05
    python -m repro runtime --algorithm fedasync --latency lognormal --rounds 30
    python -m repro runtime --algorithm semisync --base-method fedwcm --deadline 2.5
    python -m repro runtime --algorithm semisync --adaptive-deadline 0.3 \\
        --sampler utility --price-comm --base-method scaffold
    python -m repro runtime --algorithm fedasync --staleness-budget 2.0
    python -m repro methods
"""

from __future__ import annotations

import argparse
import sys

from repro.algorithms import METHOD_NAMES, FedAsync, FedBuff, make_method
from repro.data import DATASET_REGISTRY, load_federated_dataset
from repro.nn import build_model, make_mlp
from repro.runtime import (
    AsyncFederatedSimulation,
    ConcurrencyController,
    DeadlineController,
    LATENCY_MODELS,
    SAMPLERS,
    SemiSyncFederatedSimulation,
    make_latency_model,
    make_sampler,
)
from repro.simulation import FederatedSimulation, FLConfig, save_checkpoint, save_history
from repro.viz import ascii_barchart, history_plot

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="fashion-mnist-lite", choices=sorted(DATASET_REGISTRY))
        p.add_argument("--if", dest="imbalance_factor", type=float, default=0.1,
                       help="imbalance factor IF in (0, 1]")
        p.add_argument("--beta", type=float, default=0.1, help="Dirichlet concentration")
        p.add_argument("--clients", type=int, default=20)
        p.add_argument("--rounds", type=int, default=30)
        p.add_argument("--batch-size", type=int, default=10)
        p.add_argument("--participation", type=float, default=0.25)
        p.add_argument("--local-epochs", type=int, default=5)
        p.add_argument("--lr-local", type=float, default=0.1)
        p.add_argument("--lr-global", type=float, default=1.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--model", choices=("mlp", "conv"), default="mlp")
        p.add_argument("--partition", choices=("balanced", "fedgrab"), default="balanced")
        p.add_argument("--eval-every", type=int, default=5)
        p.add_argument("--max-batches", type=int, default=None,
                       help="cap on local batches per round (speed knob)")

    run_p = sub.add_parser("run", help="run one federated experiment")
    run_p.add_argument("--method", default="fedwcm", choices=METHOD_NAMES)
    add_common(run_p)
    run_p.add_argument("--save-history", metavar="PATH", default=None)
    run_p.add_argument("--save-checkpoint", metavar="PATH", default=None)

    cmp_p = sub.add_parser("compare", help="race several methods")
    cmp_p.add_argument("--methods", default="fedavg,fedcm,fedwcm",
                       help="comma-separated method names")
    add_common(cmp_p)

    rt_p = sub.add_parser("runtime", help="event-driven run under a virtual clock")
    rt_p.add_argument("--algorithm", default="fedasync",
                      choices=("fedasync", "fedbuff", "semisync"))
    add_common(rt_p)
    rt_p.add_argument("--latency", default="lognormal", choices=sorted(LATENCY_MODELS))
    rt_p.add_argument("--latency-scale", type=float, default=1.0,
                      help="global multiplier on priced latencies")
    rt_p.add_argument("--concurrency", type=int, default=None,
                      help="clients in flight (default: sync cohort size)")
    rt_p.add_argument("--max-updates", type=int, default=None,
                      help="client updates to process (default: rounds * cohort)")
    rt_p.add_argument("--mixing", type=float, default=0.6, help="fedasync mixing rate")
    rt_p.add_argument("--buffer-size", type=int, default=5, help="fedbuff buffer K")
    rt_p.add_argument("--staleness-exponent", type=float, default=0.5,
                      help="polynomial staleness discount exponent")
    rt_p.add_argument("--base-method", default="fedavg", choices=METHOD_NAMES,
                      help="wrapped algorithm for --algorithm semisync")
    rt_p.add_argument("--deadline", type=float, default=None,
                      help="semisync round deadline in virtual seconds (None = wait for all)")
    rt_p.add_argument("--adaptive-deadline", type=float, default=None, metavar="DROP_RATE",
                      help="tune the semisync deadline toward this drop-rate budget "
                           "(--deadline, if given, seeds the controller)")
    rt_p.add_argument("--late-weight", type=float, default=0.0,
                      help="semisync weight for deadline-missing clients (0 = drop)")
    rt_p.add_argument("--staleness-budget", type=float, default=None,
                      help="AIMD-tune async concurrency toward this mean staleness "
                           "(--concurrency seeds the initial limit)")
    rt_p.add_argument("--sampler", default="uniform", choices=sorted(SAMPLERS),
                      help="semisync cohort sampler (time-aware: fast, long-idle, utility)")
    rt_p.add_argument("--price-comm", action="store_true",
                      help="price the algorithm's CommunicationModel payload into "
                           "latency (FedCM/SCAFFOLD multipliers reach virtual time)")
    rt_p.add_argument("--workers", type=int, default=None,
                      help="process-pool workers for batched client training")
    rt_p.add_argument("--target-accuracy", type=float, default=None,
                      help="report virtual time to reach this test accuracy")
    rt_p.add_argument("--save-history", metavar="PATH", default=None)
    rt_p.add_argument("--save-checkpoint", metavar="PATH", default=None)

    sub.add_parser("methods", help="list available algorithms")
    sub.add_parser("datasets", help="list available datasets")
    return parser


def _build_problem(args):
    ds = load_federated_dataset(
        args.dataset,
        imbalance_factor=args.imbalance_factor,
        beta=args.beta,
        num_clients=args.clients,
        seed=args.seed,
        partition=args.partition,
    )
    if args.model == "mlp":
        ds = ds.flat_view()
        dim, classes, seed = ds.x_train.shape[1], ds.num_classes, args.seed

        def model_builder():
            return make_mlp(dim, classes, seed=seed)
    else:
        shape, classes, seed = ds.info.shape, ds.num_classes, args.seed

        def model_builder():
            return build_model(
                "resnet-lite-18",
                in_channels=shape[0],
                image_size=shape[1],
                num_classes=classes,
                width=4,
                seed=seed,
            )
    cfg = FLConfig(
        rounds=args.rounds,
        batch_size=args.batch_size,
        local_epochs=args.local_epochs,
        lr_local=args.lr_local,
        lr_global=args.lr_global,
        participation=args.participation,
        eval_every=args.eval_every,
        seed=args.seed,
        max_batches_per_round=args.max_batches,
    )
    return ds, model_builder, cfg


def _run_one(method: str, args, verbose: bool = True):
    ds, model_builder, cfg = _build_problem(args)
    bundle = make_method(method)
    sim = FederatedSimulation(
        bundle.algorithm, model_builder(), ds, cfg,
        loss_builder=bundle.loss_builder, sampler_builder=bundle.sampler_builder,
    )
    history = sim.run(verbose=verbose)
    return sim, history


def cmd_run(args) -> int:
    sim, history = _run_one(args.method, args)
    print(f"\nfinal accuracy: {history.final_accuracy:.4f}")
    print(f"best accuracy:  {history.best_accuracy:.4f}")
    if args.save_history:
        save_history(args.save_history, history)
        print(f"history -> {args.save_history}")
    if args.save_checkpoint:
        save_checkpoint(args.save_checkpoint, sim.final_params, sim.ctx.spec,
                        round_idx=args.rounds - 1)
        print(f"checkpoint -> {args.save_checkpoint}")
    return 0


def cmd_compare(args) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in METHOD_NAMES]
    if unknown:
        print(f"unknown methods: {unknown}; see `python -m repro methods`", file=sys.stderr)
        return 2
    histories = {}
    for m in methods:
        _, histories[m] = _run_one(m, args, verbose=False)
        print(f"{m:24s} final={histories[m].final_accuracy:.4f}")
    print()
    print(history_plot(histories, title=(
        f"{args.dataset}  IF={args.imbalance_factor}  beta={args.beta}"
    )))
    print()
    print(ascii_barchart(
        {m: h.final_accuracy for m, h in histories.items()}, title="final accuracy"
    ))
    return 0


def _warn_unused_runtime_flags(args) -> None:
    """Flag options the chosen --algorithm silently ignores."""
    # read defaults off the parser itself so they can't drift from argparse
    defaults, _ = build_parser().parse_known_args(["runtime"])
    defaults = vars(defaults)
    unused_by_algo = {
        "semisync": ("workers", "concurrency", "max_updates", "mixing",
                     "buffer_size", "staleness_exponent", "staleness_budget"),
        "fedasync": ("deadline", "late_weight", "base_method", "buffer_size",
                     "adaptive_deadline", "sampler"),
        "fedbuff": ("deadline", "late_weight", "base_method", "mixing",
                    "adaptive_deadline", "sampler"),
    }
    for name in unused_by_algo[args.algorithm]:
        if getattr(args, name) != defaults[name]:
            print(
                f"note: --{name.replace('_', '-')} has no effect with "
                f"--algorithm {args.algorithm}",
                file=sys.stderr,
            )


def cmd_runtime(args) -> int:
    ds, model_builder, cfg = _build_problem(args)
    latency = make_latency_model(
        args.latency, scale=args.latency_scale,
        comm_method="auto" if args.price_comm else None,
    )
    _warn_unused_runtime_flags(args)

    if args.algorithm == "semisync":
        bundle = make_method(args.base_method)
        deadline = args.deadline
        if args.adaptive_deadline is not None:
            deadline = DeadlineController(
                target_drop_rate=args.adaptive_deadline, initial=args.deadline
            )
        sampler = None if args.sampler == "uniform" else make_sampler(args.sampler)
        sim = SemiSyncFederatedSimulation(
            bundle.algorithm, model_builder(), ds, cfg,
            latency_model=latency, deadline=deadline, late_weight=args.late_weight,
            loss_builder=bundle.loss_builder, sampler_builder=bundle.sampler_builder,
            client_sampler=sampler,
        )
    else:
        if args.algorithm == "fedasync":
            def algo_builder():
                return FedAsync(mixing=args.mixing, staleness_exponent=args.staleness_exponent)
        else:
            def algo_builder():
                return FedBuff(
                    buffer_size=args.buffer_size, staleness_exponent=args.staleness_exponent
                )
        controller = None
        if args.staleness_budget is not None:
            controller = ConcurrencyController(staleness_budget=args.staleness_budget)
        sim = AsyncFederatedSimulation(
            algo_builder(), model_builder(), ds, cfg,
            latency_model=latency, concurrency=args.concurrency,
            concurrency_controller=controller,
            max_updates=args.max_updates, workers=args.workers,
            model_builder=model_builder, algo_builder=algo_builder,
        )

    history = sim.run(verbose=True)
    print(f"\nfinal accuracy:     {history.final_accuracy:.4f}")
    print(f"best accuracy:      {history.best_accuracy:.4f}")
    print(f"total virtual time: {sim.total_virtual_time:.2f}s")
    if args.target_accuracy is not None:
        tta = history.time_to_accuracy(args.target_accuracy)
        reached = f"{tta:.2f}s" if tta is not None else "never reached"
        print(f"time to {args.target_accuracy:.2f} accuracy: {reached}")
    if args.save_history:
        save_history(args.save_history, history)
        print(f"history -> {args.save_history}")
    if args.save_checkpoint:
        save_checkpoint(args.save_checkpoint, sim.final_params, sim.ctx.spec,
                        round_idx=len(history.records) - 1,
                        extras={"virtual_time": sim.total_virtual_time})
        print(f"checkpoint -> {args.save_checkpoint}")
    return 0


def cmd_methods(_args) -> int:
    for name in METHOD_NAMES:
        print(name)
    return 0


def cmd_datasets(_args) -> int:
    for name, info in sorted(DATASET_REGISTRY.items()):
        print(f"{name:20s} classes={info.num_classes:<4d} shape={info.shape} "
              f"({info.paper_counterpart})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return {
            "run": cmd_run,
            "compare": cmd_compare,
            "runtime": cmd_runtime,
            "methods": cmd_methods,
            "datasets": cmd_datasets,
        }[args.command](args)
    except BrokenPipeError:  # e.g. `repro methods | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
