"""Command-line interface: ``python -m repro <command>``.

Every command is a thin shim over the declarative experiment API
(:mod:`repro.experiments`): flags assemble an
:class:`~repro.experiments.ExperimentSpec`, ``--config`` loads one from
JSON, ``--set key.path=value`` applies dotted-path overrides, and a single
``run(spec)`` facade drives whichever engine the spec names.

Commands:

* ``run``      — one federated experiment (any engine kind via ``--config``);
                 ``--record DIR`` journals it, ``--resume DIR`` continues a
                 stopped recorded run from its last snapshot.
* ``runtime``  — event-driven run under a virtual clock: ``fedasync`` /
                 ``fedbuff`` asynchronous aggregation or ``semisync``
                 deadline-based rounds, with pluggable client latency models.
* ``serve``    — federation aggregator: the same event-driven run as
                 ``runtime``, but client jobs execute on remote worker
                 processes over TCP (``runtime.backend="remote"``).
* ``worker``   — join a ``serve`` aggregator as a compute worker.
* ``watch``    — tail a recorded run's journal: rolling aggregates
                 (``--summary``) or live follow mode (``-f``).
* ``compare``  — race several methods on one problem (a spec sweep over
                 ``method.name``), ASCII plot + table.
* ``sweep``    — run a grid of dotted-path overrides (optionally across an
                 execution backend), report mean/std over ``config.seed``;
                 ``--out`` dumps the full result losslessly.
* ``spec``     — ``dump`` a spec as JSON, or ``validate`` spec files.
* ``methods``  — list available algorithms.
* ``datasets`` — list available -lite datasets.

Examples::

    python -m repro run --method fedwcm --dataset cifar10-lite --if 0.1 --rounds 30
    python -m repro run --config examples/specs/semisync_utility.json --set config.rounds=10
    python -m repro run --config spec.json --record runs/exp1 --stop-after-rounds 20
    python -m repro run --resume runs/exp1
    python -m repro watch runs/exp1 --summary
    python -m repro watch runs/exp1 -f
    python -m repro compare --methods fedavg,fedcm,fedwcm --if 0.05
    python -m repro runtime --algorithm semisync --adaptive-deadline 0.3 \\
        --sampler utility --price-comm --base-method scaffold
    python -m repro runtime --algorithm semisync --deadline 2.5 --late-policy trickle
    python -m repro runtime --algorithm fedbuff --base-method scaffold \\
        --backend process --workers 4
    python -m repro serve --address 0.0.0.0:7700 --workers 2 \\
        --algorithm fedbuff --base-method scaffold
    python -m repro worker --connect aggregator-host:7700
    python -m repro sweep --grid method.name=fedavg,fedcm \\
        --grid config.seed=0,1,2 --backend process --workers 4 --out sweep.json
    python -m repro spec dump --algorithm fedbuff --latency pareto > my_spec.json
    python -m repro spec validate examples/specs/*.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import fields as dataclass_fields

from repro.algorithms import METHOD_NAMES
from repro.data import DATASET_REGISTRY
from repro.experiments import (
    KIND_FORBIDDEN_KNOBS,
    MODEL_ALIASES,
    DataSpec,
    ExperimentSpec,
    expand,
    resolve_model_alias,
    run_sweep,
)
from repro.experiments import run as run_spec
from repro.nn.models import MODEL_REGISTRY
from repro.parallel import BACKENDS
from repro.runtime import LATENCY_MODELS, SAMPLERS
from repro.simulation import FLConfig, save_checkpoint, save_history
from repro.viz import ascii_barchart, history_plot

__all__ = ["main", "build_parser", "spec_from_args"]

_SUPPRESS = argparse.SUPPRESS

# ``--model conv`` stays as a convenience alias for the conv backbone the
# benchmarks use; full registry names are accepted too
_MODEL_CHOICES = sorted(set(MODEL_REGISTRY) | set(MODEL_ALIASES))

# argparse defaults are *derived from the dataclasses* (shown in help text,
# applied by simply never overriding the spec), so they cannot drift from
# FLConfig / DataSpec again
_SPEC_DEFAULTS = {
    f"{section}.{f.name}": f.default
    for section, cls in (("data", DataSpec), ("config", FLConfig))
    for f in dataclass_fields(cls)
}


def _hd(text: str, path: str) -> str:
    """Help text carrying the dataclass-derived default."""
    return f"{text} (default: {_SPEC_DEFAULTS[path]})"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_spec_io(p: argparse.ArgumentParser) -> None:
        p.add_argument("--config", metavar="PATH", default=None,
                       help="load a JSON ExperimentSpec; explicit flags override it")
        p.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="KEY.PATH=VALUE",
                       help="dotted-path spec override (repeatable), "
                            "e.g. --set runtime.sampler=utility")

    def add_common(p: argparse.ArgumentParser) -> None:
        add_spec_io(p)
        p.add_argument("--dataset", default=_SUPPRESS, choices=sorted(DATASET_REGISTRY),
                       help=_hd("dataset registry name", "data.dataset"))
        p.add_argument("--if", dest="imbalance_factor", type=float, default=_SUPPRESS,
                       help=_hd("imbalance factor IF in (0, 1]", "data.imbalance_factor"))
        p.add_argument("--beta", type=float, default=_SUPPRESS,
                       help=_hd("Dirichlet concentration", "data.beta"))
        p.add_argument("--clients", type=int, default=_SUPPRESS,
                       help=_hd("number of clients", "data.clients"))
        p.add_argument("--partition", choices=("balanced", "fedgrab"), default=_SUPPRESS,
                       help=_hd("client partition scheme", "data.partition"))
        p.add_argument("--scale", type=float, default=_SUPPRESS,
                       help=_hd("dataset volume multiplier", "data.scale"))
        p.add_argument("--model", choices=_MODEL_CHOICES, default=_SUPPRESS,
                       help="model architecture (default: mlp; 'conv' = resnet-lite-18)")
        p.add_argument("--rounds", type=int, default=_SUPPRESS,
                       help=_hd("communication rounds", "config.rounds"))
        p.add_argument("--batch-size", type=int, default=_SUPPRESS,
                       help=_hd("local minibatch size", "config.batch_size"))
        p.add_argument("--participation", type=float, default=_SUPPRESS,
                       help=_hd("fraction of clients per round", "config.participation"))
        p.add_argument("--local-epochs", type=int, default=_SUPPRESS,
                       help=_hd("local passes per round", "config.local_epochs"))
        p.add_argument("--lr-local", type=float, default=_SUPPRESS,
                       help=_hd("client learning rate", "config.lr_local"))
        p.add_argument("--lr-global", type=float, default=_SUPPRESS,
                       help=_hd("server learning rate", "config.lr_global"))
        p.add_argument("--seed", type=int, default=_SUPPRESS,
                       help=_hd("master seed", "config.seed"))
        p.add_argument("--eval-every", type=int, default=_SUPPRESS,
                       help=_hd("evaluation period in rounds", "config.eval_every"))
        p.add_argument("--max-batches", type=int, default=_SUPPRESS,
                       help="cap on local batches per round (speed knob; default: none)")

    def add_runtime_flags(
        p: argparse.ArgumentParser, kinds: tuple[str, ...], default_kind: str
    ) -> None:
        p.add_argument("--algorithm", default=_SUPPRESS, choices=kinds,
                       help=f"engine kind (default: {default_kind})")
        p.add_argument("--latency", default=_SUPPRESS, choices=sorted(LATENCY_MODELS),
                       help="client latency model (default: lognormal)")
        p.add_argument("--latency-scale", type=float, default=_SUPPRESS,
                       help="global multiplier on priced latencies")
        p.add_argument("--concurrency", type=int, default=_SUPPRESS,
                       help="clients in flight (default: sync cohort size)")
        p.add_argument("--max-updates", type=int, default=_SUPPRESS,
                       help="client updates to process (default: rounds * cohort)")
        p.add_argument("--mixing", type=float, default=_SUPPRESS,
                       help="fedasync mixing rate")
        p.add_argument("--buffer-size", type=int, default=_SUPPRESS,
                       help="fedbuff buffer K")
        p.add_argument("--staleness-exponent", type=float, default=_SUPPRESS,
                       help="polynomial staleness discount exponent")
        p.add_argument("--base-method", default=_SUPPRESS, choices=METHOD_NAMES,
                       help="wrapped algorithm: the method semisync rounds drive, or "
                            "the local rule an async engine runs through an "
                            "AsyncAdapter (default: fedavg / the kind's own rule)")
        p.add_argument("--deadline", type=float, default=_SUPPRESS,
                       help="semisync round deadline in virtual seconds "
                            "(default: wait for all)")
        p.add_argument("--adaptive-deadline", type=float, default=_SUPPRESS,
                       metavar="DROP_RATE",
                       help="tune the semisync deadline toward this drop-rate budget "
                            "(--deadline, if given, seeds the controller)")
        p.add_argument("--late-weight", type=float, default=_SUPPRESS,
                       help="semisync weight for deadline-missing clients (0 = drop)")
        p.add_argument("--late-policy", default=_SUPPRESS,
                       choices=("downweight", "trickle"),
                       help="semisync late-client handling: downweight merges late "
                            "updates same-round (scaled by --late-weight), trickle "
                            "merges each into the round open at its actual arrival")
        p.add_argument("--staleness-budget", type=float, default=_SUPPRESS,
                       help="AIMD-tune async concurrency toward this mean staleness "
                            "(--concurrency seeds the initial limit)")
        p.add_argument("--sampler", default=_SUPPRESS, choices=sorted(SAMPLERS),
                       help="cohort sampler: per-round for semisync, per-dispatch "
                            "for the async engines (time-aware: fast, long-idle, "
                            "utility)")
        p.add_argument("--price-comm", action="store_true", default=_SUPPRESS,
                       help="price the algorithm's CommunicationModel payload into "
                            "latency (FedCM/SCAFFOLD multipliers reach virtual time)")
        p.add_argument("--backend", default=_SUPPRESS, choices=sorted(BACKENDS),
                       help="execution backend for client compute (default: auto "
                            "— REPRO_BACKEND, or process when --workers > 1)")
        p.add_argument("--workers", type=int, default=_SUPPRESS,
                       help="worker count for the process/thread backends")
        p.add_argument("--job-batch", type=int, default=_SUPPRESS,
                       help="jobs per pool task / wire frame for the "
                            "process and remote backends (default: "
                            "REPRO_JOB_BATCH, else per-job dispatch); "
                            "histories are bit-identical at any value")
        p.add_argument("--shared-memory", action=argparse.BooleanOptionalAction,
                       default=_SUPPRESS,
                       help="process backend: ship the broadcast vector via "
                            "POSIX shared memory once per version instead of "
                            "pickling it into every job (default: "
                            "REPRO_SHARED_MEMORY, else off)")
        p.add_argument("--buffer-ema", default=_SUPPRESS,
                       choices=("fixed", "staleness"),
                       help="async BatchNorm-buffer EMA: fixed 1/window blend, or "
                            "staleness-discounted 1/(window*(1+tau))")
        p.add_argument("--streaming", action=argparse.BooleanOptionalAction,
                       default=_SUPPRESS,
                       help="async dispatch scheduling: submit each job to the "
                            "backend eagerly (default; overlaps compute with "
                            "event processing) or --no-streaming for lazy "
                            "batches — histories are bit-identical either way")
        p.add_argument("--fast-path", action=argparse.BooleanOptionalAction,
                       default=_SUPPRESS,
                       help="async dispatch planning: vectorized control plane "
                            "(default; incremental idle tracking, batched "
                            "latency draws and heap inserts) or "
                            "--no-fast-path for the scalar per-dispatch loop "
                            "— histories are bit-identical either way")

    def add_outputs(p: argparse.ArgumentParser, timed: bool) -> None:
        if timed:
            p.add_argument("--target-accuracy", type=float, default=None,
                           help="report virtual time to reach this test accuracy")
        p.add_argument("--save-history", metavar="PATH", default=None)
        p.add_argument("--save-checkpoint", metavar="PATH", default=None)

    def add_observe(p: argparse.ArgumentParser) -> None:
        p.add_argument("--record", metavar="RUN_DIR", default=None,
                       help="journal the run under this directory "
                            "(journal.jsonl + resumable snapshots + spec.json)")
        p.add_argument("--stop-after-rounds", type=int, default=None, metavar="N",
                       help="checkpoint and stop once N rounds closed "
                            "(resume with `repro run --resume RUN_DIR`)")

    run_p = sub.add_parser("run", help="run one federated experiment")
    run_p.add_argument("--method", default=_SUPPRESS, choices=METHOD_NAMES,
                       help="algorithm registry name (default: fedwcm)")
    run_p.add_argument("--resume", metavar="RUN_DIR", default=None,
                       help="continue a recorded run from its latest snapshot "
                            "(the spec is read from RUN_DIR/spec.json; other "
                            "spec flags are rejected)")
    add_common(run_p)
    add_outputs(run_p, timed=False)
    add_observe(run_p)

    cmp_p = sub.add_parser("compare", help="race several methods (a spec sweep)")
    cmp_p.add_argument("--methods", default="fedavg,fedcm,fedwcm",
                       help="comma-separated method names")
    add_common(cmp_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a grid of spec overrides, aggregate over seeds"
    )
    sweep_p.add_argument("--method", default=_SUPPRESS, choices=METHOD_NAMES,
                         help="algorithm registry name for the base spec")
    add_common(sweep_p)
    sweep_p.add_argument("--grid", action="append", required=True,
                         metavar="KEY.PATH=V1,V2,...",
                         help="grid axis (repeatable): dotted spec path = "
                              "comma-separated or JSON-list values, e.g. "
                              "--grid config.seed=0,1,2")
    # distinct dests: these drive sweep *dispatch*, not the per-run
    # runtime.backend knob (set that via --set runtime.backend=...)
    sweep_p.add_argument("--backend", dest="sweep_backend", default=None,
                         choices=sorted(BACKENDS),
                         help="where grid points execute (default: serial, or "
                              "REPRO_BACKEND / process when --workers > 1)")
    sweep_p.add_argument("--workers", dest="sweep_workers", type=int, default=None,
                         help="worker count for parallel sweep execution")
    sweep_p.add_argument("--out", metavar="PATH", default=None,
                         help="dump the full sweep result (specs + histories) "
                              "as lossless JSON")

    rt_p = sub.add_parser("runtime", help="event-driven run under a virtual clock")
    add_common(rt_p)
    add_runtime_flags(rt_p, kinds=("fedasync", "fedbuff", "semisync"),
                      default_kind="fedasync")
    add_outputs(rt_p, timed=True)
    add_observe(rt_p)

    serve_p = sub.add_parser(
        "serve", help="federation aggregator: event-driven run on remote workers"
    )
    serve_p.add_argument("--address", required=True, metavar="HOST:PORT",
                         help="address to listen on (port 0 = ephemeral); "
                              "workers join with `repro worker --connect`")
    serve_p.add_argument("--heartbeat-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="worker heartbeat period (default: 1.0)")
    serve_p.add_argument("--heartbeat-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="silence after which a worker is declared dead and "
                              "its in-flight jobs requeued (default: 5.0)")
    serve_p.add_argument("--worker-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="how long to wait for the first --workers "
                              "registrations before failing (default: 60)")
    add_common(serve_p)
    add_runtime_flags(serve_p, kinds=("fedasync", "fedbuff", "semisync"),
                      default_kind="fedbuff")
    add_outputs(serve_p, timed=True)
    add_observe(serve_p)

    worker_p = sub.add_parser(
        "worker", help="join a `repro serve` aggregator as a compute worker"
    )
    worker_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="the aggregator's address")
    worker_p.add_argument("--retry", type=float, default=30.0, metavar="SECONDS",
                          help="keep retrying the initial connect this long "
                               "while the aggregator is not up yet (default: 30)")

    watch_p = sub.add_parser(
        "watch", help="tail a recorded run's journal (metrics + progress)"
    )
    watch_p.add_argument("run_dir", metavar="RUN_DIR",
                         help="directory a recorded run journals into")
    watch_p.add_argument("--summary", action="store_true",
                         help="print rolling aggregates once and exit (default)")
    watch_p.add_argument("-f", "--follow", action="store_true",
                         help="follow the live journal, printing rounds and "
                              "warnings as they land; summary on end/Ctrl-C")
    watch_p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                         help="follow-mode poll interval (default: 0.5)")

    spec_p = sub.add_parser("spec", help="dump or validate experiment specs")
    spec_sub = spec_p.add_subparsers(dest="spec_command", required=True)
    dump_p = spec_sub.add_parser(
        "dump", help="print the spec the given flags assemble, as JSON"
    )
    dump_p.add_argument("--method", default=_SUPPRESS, choices=METHOD_NAMES,
                        help="algorithm registry name (default: fedwcm)")
    add_common(dump_p)
    add_runtime_flags(dump_p, kinds=("sync", "fedasync", "fedbuff", "semisync"),
                      default_kind="sync")
    val_p = spec_sub.add_parser("validate", help="validate JSON spec files")
    val_p.add_argument("paths", nargs="+", metavar="SPEC.json")

    sub.add_parser("methods", help="list available algorithms")
    sub.add_parser("datasets", help="list available datasets")
    return parser


# straight flag -> spec-path maps (flags are SUPPRESSed when absent, so only
# explicitly set ones reach the spec; everything else keeps dataclass defaults)
_COMMON_MAP = (
    ("dataset", "data.dataset"),
    ("imbalance_factor", "data.imbalance_factor"),
    ("beta", "data.beta"),
    ("clients", "data.clients"),
    ("partition", "data.partition"),
    ("scale", "data.scale"),
    ("rounds", "config.rounds"),
    ("batch_size", "config.batch_size"),
    ("participation", "config.participation"),
    ("local_epochs", "config.local_epochs"),
    ("lr_local", "config.lr_local"),
    ("lr_global", "config.lr_global"),
    ("seed", "config.seed"),
    ("eval_every", "config.eval_every"),
    ("max_batches", "config.max_batches_per_round"),
)
_SEMISYNC_MAP = (
    ("deadline", "runtime.deadline"),
    ("adaptive_deadline", "runtime.adaptive_deadline"),
    ("late_weight", "runtime.late_weight"),
    ("late_policy", "runtime.late_policy"),
    ("sampler", "runtime.sampler"),
    ("backend", "runtime.backend"),
    ("workers", "runtime.workers"),
    ("job_batch", "runtime.job_batch"),
    ("shared_memory", "runtime.shared_memory"),
)
_ASYNC_MAP = (
    ("concurrency", "runtime.concurrency"),
    ("max_updates", "runtime.max_updates"),
    ("staleness_budget", "runtime.staleness_budget"),
    ("backend", "runtime.backend"),
    ("workers", "runtime.workers"),
    ("job_batch", "runtime.job_batch"),
    ("shared_memory", "runtime.shared_memory"),
    ("buffer_ema", "runtime.buffer_ema"),
    ("streaming", "runtime.streaming"),
    ("fast_path", "runtime.fast_path"),
    ("sampler", "runtime.sampler"),
)


def _resolve_kind(args, base: ExperimentSpec) -> str:
    """Effective engine kind: explicit flag > config file > command default."""
    kind = getattr(args, "algorithm", None)
    if kind is None:
        if args.config is not None:
            return base.runtime.kind
        kind = {"runtime": "fedasync", "serve": "fedbuff"}.get(args.command, "sync")
    return kind


def spec_from_args(args) -> ExperimentSpec:
    """Assemble the :class:`ExperimentSpec` a parsed namespace describes.

    Precedence: dataclass defaults < ``--config`` file < explicit flags <
    ``--set`` overrides.
    """
    base = ExperimentSpec.load(args.config) if args.config else ExperimentSpec()
    kind = _resolve_kind(args, base)
    items: list[tuple[str, object]] = []
    if kind != base.runtime.kind:
        items.append(("runtime.kind", kind))

    for attr, path in _COMMON_MAP:
        if hasattr(args, attr):
            items.append((path, getattr(args, attr)))

    model = getattr(args, "model", None)
    if model is not None:
        arch, kwargs = resolve_model_alias(model)
        items.append(("model.arch", arch))
        items.append(("model.kwargs", kwargs))

    # which algorithm trains: --method (run), --base-method (semisync and the
    # async engines' wrapped local rule), or the engine kind itself
    if kind in ("fedasync", "fedbuff"):
        bm = getattr(args, "base_method", None)
        m = getattr(args, "method", None)
        if bm is not None and m is not None and bm != m:
            raise ValueError(
                f"--base-method {bm} and --method {m} disagree; "
                "set just one for an async run"
            )
        explicit = bm if bm is not None else m
        if explicit is not None:
            # the kind's own name runs it plain; anything else wraps that
            # method's local rule in an AsyncAdapter under the kind's rule
            items.append(("method.name", explicit))
        elif args.config is None:
            items.append(("method.name", kind))
        for attr, key in (("mixing", "mixing"), ("buffer_size", "buffer_size"),
                          ("staleness_exponent", "staleness_exponent")):
            if hasattr(args, attr) and _kwarg_applies(kind, attr):
                items.append((f"method.kwargs.{key}", getattr(args, attr)))
    elif kind == "semisync":
        # --base-method (runtime) or --method (run with a semisync config)
        bm = getattr(args, "base_method", None)
        m = getattr(args, "method", None)
        if bm is not None and m is not None and bm != m:
            raise ValueError(
                f"--base-method {bm} and --method {m} disagree; "
                "set just one for a semisync run"
            )
        explicit = bm if bm is not None else m
        if explicit is not None:
            items.append(("method.name", explicit))
        elif args.config is None:
            items.append(("method.name", "fedavg"))
    else:  # sync
        if hasattr(args, "method"):
            items.append(("method.name", args.method))
        elif args.config is None:
            items.append(("method.name", "fedwcm"))

    if kind == "sync":
        # the one runtime flag the synchronous engine does consume
        if hasattr(args, "sampler"):
            items.append(("runtime.sampler", args.sampler))
    else:
        if hasattr(args, "latency"):
            items.append(("runtime.latency", args.latency))
        elif args.config is None and args.command in ("runtime", "serve", "spec"):
            # `spec dump` must assemble the same spec `runtime` would run
            items.append(("runtime.latency", "lognormal"))
        if hasattr(args, "latency_scale"):
            items.append(("runtime.latency_kwargs.scale", args.latency_scale))
        if hasattr(args, "price_comm"):
            items.append(("runtime.price_comm", True))
        per_kind = _SEMISYNC_MAP if kind == "semisync" else _ASYNC_MAP
        for attr, path in per_kind:
            if hasattr(args, attr):
                items.append((path, getattr(args, attr)))

    if getattr(args, "record", None):
        items.append(("runtime.record", True))
        items.append(("runtime.run_dir", args.record))

    spec = base.override_many(items)
    return spec.apply_overrides(args.overrides)


def _kwarg_applies(kind: str, attr: str) -> bool:
    return {
        "mixing": kind == "fedasync",
        "buffer_size": kind == "fedbuff",
        "staleness_exponent": True,
    }[attr]


# spec-level knob -> the CLI flags that feed it (knobs with no flag map to
# nothing; "latency" also covers the scale shorthand)
_KNOB_FLAGS = {
    "latency": ("latency", "latency_scale"),
    "latency_kwargs": (),
    "sampler_kwargs": (),
}
# method-level flags (not runtime knobs) each kind cannot consume
_METHOD_FLAGS_UNUSED = {
    "sync": ("mixing", "buffer_size", "staleness_exponent", "base_method"),
    "semisync": ("mixing", "buffer_size", "staleness_exponent"),
    "fedasync": ("buffer_size",),
    "fedbuff": ("mixing",),
}


def _warn_unused_runtime_flags(args, kind: str) -> None:
    """Flag explicitly set options the chosen engine kind silently ignores.

    The runtime-knob list derives from the spec's own
    :data:`~repro.experiments.KIND_FORBIDDEN_KNOBS` table, so the warning
    and the spec validation cannot drift apart.
    """
    unused = [
        flag
        for knob in KIND_FORBIDDEN_KNOBS[kind]
        for flag in _KNOB_FLAGS.get(knob, (knob,))
    ]
    unused.extend(_METHOD_FLAGS_UNUSED[kind])
    for name in unused:
        if hasattr(args, name):
            print(
                f"note: --{name.replace('_', '-')} has no effect with "
                f"--algorithm {kind}",
                file=sys.stderr,
            )


def _assemble(args) -> ExperimentSpec | None:
    """Build the spec, reporting assembly problems as a clean CLI error.

    Only spec construction is guarded — errors raised later, while the
    experiment runs, keep their tracebacks (they indicate bugs, not bad
    flags).
    """
    try:
        return spec_from_args(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _execute(args, spec: ExperimentSpec, verbose: bool = True) -> int:
    """Shared body of ``run`` and ``runtime``: spec -> facade -> reports."""
    result = run_spec(
        spec, verbose=verbose,
        stop_after_rounds=getattr(args, "stop_after_rounds", None),
    )
    return _report(args, result)


def _report(args, result) -> int:
    """Post-run reporting shared by fresh, recorded and resumed runs."""
    spec, history = result.spec, result.history
    timed = spec.runtime.kind != "sync"
    if spec.runtime.record and spec.runtime.run_dir:
        stop_n = getattr(args, "stop_after_rounds", None)
        hint = (
            f"  (stopped; resume with `repro run --resume {spec.runtime.run_dir}`)"
            if stop_n is not None and len(history.records) == stop_n
            else ""
        )
        print(f"\nrecorded -> {spec.runtime.run_dir}{hint}")
    if timed:
        print(f"\nfinal accuracy:     {history.final_accuracy:.4f}")
        print(f"best accuracy:      {history.best_accuracy:.4f}")
        print(f"total virtual time: {result.total_virtual_time:.2f}s")
    else:
        print(f"\nfinal accuracy: {history.final_accuracy:.4f}")
        print(f"best accuracy:  {history.best_accuracy:.4f}")
    if getattr(args, "target_accuracy", None) is not None:
        tta = history.time_to_accuracy(args.target_accuracy)
        reached = f"{tta:.2f}s" if tta is not None else "never reached"
        print(f"time to {args.target_accuracy:.2f} accuracy: {reached}")
    if args.save_history:
        save_history(args.save_history, history)
        print(f"history -> {args.save_history}")
    if args.save_checkpoint:
        extras = {"virtual_time": result.total_virtual_time} if timed else None
        save_checkpoint(args.save_checkpoint, result.final_params,
                        result.engine.ctx.spec,
                        round_idx=len(history.records) - 1, extras=extras)
        print(f"checkpoint -> {args.save_checkpoint}")
    return 0


def cmd_run(args) -> int:
    if args.resume:
        if args.config or args.overrides or args.record:
            print(
                "error: --resume reads the spec from RUN_DIR/spec.json; "
                "it cannot combine with --config/--set/--record",
                file=sys.stderr,
            )
            return 2
        from repro.experiments import resume_run

        try:
            result = resume_run(
                args.resume, verbose=True,
                stop_after_rounds=args.stop_after_rounds,
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return _report(args, result)
    spec = _assemble(args)
    if spec is None:
        return 2
    return _execute(args, spec, verbose=True)


def cmd_runtime(args) -> int:
    spec = _assemble(args)
    if spec is None:
        return 2
    _warn_unused_runtime_flags(args, spec.runtime.kind)
    return _execute(args, spec, verbose=True)


def cmd_serve(args) -> int:
    backend = getattr(args, "backend", None)
    if backend not in (None, "auto", "remote"):
        print(
            f"error: repro serve always runs on the remote backend; "
            f"drop --backend {backend}",
            file=sys.stderr,
        )
        return 2
    spec = _assemble(args)
    if spec is None:
        return 2
    try:
        spec = spec.override_many([
            ("runtime.backend", "remote"),
            ("runtime.backend_address", args.address),
        ])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # deployment knobs travel to the service via its env defaults
    for flag, env in (
        ("heartbeat_interval", "REPRO_NET_HEARTBEAT"),
        ("heartbeat_timeout", "REPRO_NET_HEARTBEAT_TIMEOUT"),
        ("worker_timeout", "REPRO_NET_WORKER_TIMEOUT"),
    ):
        value = getattr(args, flag)
        if value is not None:
            os.environ[env] = str(value)
    _warn_unused_runtime_flags(args, spec.runtime.kind)
    return _execute(args, spec, verbose=True)


def cmd_worker(args) -> int:
    from repro.net import run_worker
    from repro.net.framing import parse_address

    try:
        parse_address(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_worker(args.connect, connect_timeout=args.retry)


def cmd_compare(args) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in methods if m not in METHOD_NAMES]
    if unknown:
        print(f"unknown methods: {unknown}; see `python -m repro methods`", file=sys.stderr)
        return 2
    base = _assemble(args)
    if base is None:
        return 2
    try:
        specs = expand(base, {"method.name": methods})
    except ValueError as exc:  # e.g. an async-kind --config can't race methods
        print(f"error: {exc}", file=sys.stderr)
        return 2
    histories = {}
    for s in specs:
        m = s.method.name
        histories[m] = run_spec(s, verbose=False).history
        print(f"{m:24s} final={histories[m].final_accuracy:.4f}")
    print()
    spec_data = base.data
    print(history_plot(histories, title=(
        f"{spec_data.dataset}  IF={spec_data.imbalance_factor}  beta={spec_data.beta}"
    )))
    print()
    print(ascii_barchart(
        {m: h.final_accuracy for m, h in histories.items()}, title="final accuracy"
    ))
    return 0


def parse_grid_axis(text: str) -> tuple[str, list]:
    """Split one ``--grid dotted.path=v1,v2,...`` axis.

    The value side parses as a JSON list, a single JSON scalar (wrapped into
    a one-value axis), or a comma-separated sequence whose elements each
    parse as JSON with a bare-string fallback — so both
    ``--grid config.seed=0,1,2`` and ``--grid method.name=fedavg,fedcm``
    read naturally.
    """
    if "=" not in text:
        raise ValueError(f"grid axis {text!r} must look like key.path=v1,v2,...")
    path, raw = text.split("=", 1)
    path = path.strip()
    if not path:
        raise ValueError(f"grid axis {text!r} has an empty key path")
    raw = raw.strip()
    try:
        value = json.loads(raw)
        return path, value if isinstance(value, list) else [value]
    except json.JSONDecodeError:
        pass
    values = []
    for part in raw.split(","):
        part = part.strip()
        try:
            values.append(json.loads(part))
        except json.JSONDecodeError:
            values.append(part)  # bare string
    return path, values


def cmd_sweep(args) -> int:
    base = _assemble(args)
    if base is None:
        return 2
    try:
        grid: dict[str, list] = {}
        for text in args.grid:
            path, values = parse_grid_axis(text)
            if path in grid:
                raise ValueError(
                    f"grid axis {path!r} given twice; merge the values into "
                    "one --grid flag"
                )
            grid[path] = values
        result = run_sweep(
            base, grid, backend=args.sweep_backend, workers=args.sweep_workers
        )
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        result.save(args.out)
        print(f"sweep result -> {args.out}")
    for assignment, point in zip(result.assignments, result.results):
        label = "  ".join(f"{k}={v}" for k, v in assignment.items()) or "(base)"
        print(f"{label:60s} final={point.final_accuracy:.4f} "
              f"best={point.best_accuracy:.4f}")
    rows = result.aggregate()
    print()
    header = [*result.group_axes, "n", "final", "best"]
    lines = [
        [
            *(str(row[a]) for a in result.group_axes),
            str(row["n"]),
            f"{row['final_mean']:.4f}±{row['final_std']:.4f}",
            f"{row['best_mean']:.4f}±{row['best_std']:.4f}",
        ]
        for row in rows
    ]
    widths = [
        max(len(header[j]), max((len(r[j]) for r in lines), default=0))
        for j in range(len(header))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for r in lines:
        print("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return 0


def cmd_spec(args) -> int:
    if args.spec_command == "dump":
        spec = _assemble(args)
        if spec is None:
            return 2
        _warn_unused_runtime_flags(args, spec.runtime.kind)
        print(spec.to_json())
        return 0
    # validate
    failed = 0
    for path in args.paths:
        try:
            ExperimentSpec.load(path)
        except (ValueError, OSError, KeyError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            failed += 1
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


def _watch_line(rec: dict) -> str | None:
    """One follow-mode console line per journal record (None = silent)."""
    t = rec.get("type")
    if t == "meta":
        return (f"run: {rec.get('algorithm')} / {rec.get('policy')} / "
                f"backend={rec.get('backend')}  "
                f"clients={rec.get('num_clients')}  seed={rec.get('seed')}")
    if t == "resume":
        return f"resumed at round {rec.get('round')}  t={rec.get('t', 0.0):.2f}s"
    if t == "round":
        acc = rec.get("test_accuracy")
        acc_s = f"acc={acc:.4f}" if acc is not None else "acc=n/a"
        return (f"round {rec.get('round'):4d}  t={rec.get('t', 0.0):9.2f}s  "
                f"{acc_s}  clients={len(rec.get('selected') or [])}")
    if t == "warning":
        return f"WARNING [{rec.get('logger')}] {rec.get('message')}"
    if t == "stop":
        return f"stopped at round {rec.get('round')} (checkpointed)"
    if t == "end":
        acc = rec.get("final_accuracy")
        return "run finished" + (f"  final acc={acc:.4f}" if acc is not None else "")
    return None


def cmd_watch(args) -> int:
    from repro.observe import JournalTailer, MetricsStore, journal_path

    path = journal_path(args.run_dir)
    if not args.follow:
        if not os.path.exists(path):
            print(f"error: no journal at {path}", file=sys.stderr)
            return 2
        print(MetricsStore.from_journal(path).summary())
        return 0
    import time as _time

    tailer = JournalTailer(path)
    store = MetricsStore()
    try:
        while True:
            batch = tailer.poll()
            for rec in batch:
                store.ingest(rec)
                line = _watch_line(rec)
                if line:
                    print(line, flush=True)
            if store.ended or store.stopped:
                break
            _time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    print()
    print(store.summary())
    return 0


def cmd_methods(_args) -> int:
    for name in METHOD_NAMES:
        print(name)
    return 0


def cmd_datasets(_args) -> int:
    for name, info in sorted(DATASET_REGISTRY.items()):
        print(f"{name:20s} classes={info.num_classes:<4d} shape={info.shape} "
              f"({info.paper_counterpart})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return {
            "run": cmd_run,
            "compare": cmd_compare,
            "sweep": cmd_sweep,
            "runtime": cmd_runtime,
            "serve": cmd_serve,
            "worker": cmd_worker,
            "watch": cmd_watch,
            "spec": cmd_spec,
            "methods": cmd_methods,
            "datasets": cmd_datasets,
        }[args.command](args)
    except BrokenPipeError:  # e.g. `repro methods | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
