"""Convergence-rate bounds of Theorem 6.1.

FedWCM inherits FedAvg-M's rate:

    (1/R) sum_r E ||grad f(x_r)||^2  <~  sqrt(L*Delta*sigma^2 / (N*K*R)) + L*Delta / R

with the adaptive momentum coefficient constrained by
``beta <= sqrt(N*K*L*Delta / (sigma^2 * R))`` and the step-size conditions of
the theorem.  These helpers evaluate the bound, the admissible coefficient
range and the learning-rate conditions so experiments (and property tests)
can check hyper-parameters against the theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RateConstants", "convergence_rate_bound", "beta_upper_bound", "lr_condition"]


@dataclass(frozen=True)
class RateConstants:
    """Problem constants entering Theorem 6.1.

    Attributes:
        L: smoothness constant of the local objectives.
        delta: initial optimality gap f(x0) - f*.
        sigma: stochastic-gradient noise level.
        n_clients: N, participating clients per round.
        k_steps: K, local steps per round.
        g0: mean squared client gradient norm at x0 (enters the lr condition).
    """

    L: float
    delta: float
    sigma: float
    n_clients: int
    k_steps: int
    g0: float = 1.0

    def __post_init__(self) -> None:
        if min(self.L, self.delta) < 0 or self.sigma < 0:
            raise ValueError("L, delta must be >= 0 and sigma >= 0")
        if self.n_clients < 1 or self.k_steps < 1:
            raise ValueError("n_clients and k_steps must be >= 1")


def convergence_rate_bound(c: RateConstants, rounds: int) -> float:
    """Right-hand side of Eq. (10) (up to the absorbed constant)."""
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    term1 = math.sqrt(c.L * c.delta * c.sigma**2 / (c.n_clients * c.k_steps * rounds))
    term2 = c.L * c.delta / rounds
    return term1 + term2


def beta_upper_bound(c: RateConstants, rounds: int) -> float:
    """Maximum admissible momentum coefficient sqrt(N*K*L*Delta / (sigma^2*R)).

    Returns ``inf`` when sigma == 0 (no stochastic noise restriction).
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if c.sigma == 0:
        return float("inf")
    return math.sqrt(c.n_clients * c.k_steps * c.L * c.delta / (c.sigma**2 * rounds))


def lr_condition(
    c: RateConstants, rounds: int, eta: float, beta: float, gamma: float | None = None
) -> dict[str, float | bool]:
    """Evaluate the theorem's step-size conditions for (eta, beta).

    Returns a dict with each bound, the binding minimum and whether
    ``eta * K * L`` satisfies it (up to the theorem's absorbed constants —
    callers compare against ``min_bound`` directly).
    """
    if eta <= 0 or not 0 < beta < 1:
        raise ValueError("require eta > 0 and beta in (0, 1)")
    if gamma is None:
        gamma = min(1.0 / (24.0 * c.L), beta / (6.0 * c.L)) if c.L > 0 else float("inf")
    bounds = {
        "one": 1.0,
        "momentum": 1.0 / (beta * gamma * c.L * rounds) if c.L > 0 else float("inf"),
        "g0": math.sqrt(c.L * c.delta / (c.g0 * beta**3 * rounds)) if c.g0 > 0 else float("inf"),
        "noise_n": 1.0 / math.sqrt(beta * c.n_clients),
        "noise_nk": 1.0 / (beta**3 * c.n_clients * c.k_steps) ** 0.25,
    }
    min_bound = min(bounds.values())
    value = eta * c.k_steps * c.L
    return {**bounds, "min_bound": min_bound, "eta_k_l": value, "satisfied": value <= min_bound}
