"""Distributed quadratic testbed with known constants.

This is the controlled environment where the paper's qualitative claims can
be demonstrated *exactly*:

* each client's objective is ``f_i(x) = 0.5 * (x - b_i)^T A (x - b_i)`` with
  a shared curvature spectrum (so ``L`` is known);
* long-tailed heterogeneity is modelled by placing most clients' minimisers
  ``b_i`` near a shared "head" anchor and a few at distinct "tail" anchors —
  the cohort-average gradient then carries a persistent head-ward bias,
  exactly the distortion the paper attributes to long-tailed data;
* stochastic gradients add Gaussian noise with known ``sigma``.

On quadratics, FedCM's client-momentum recursion has a closed-form round map
whose eigenvalues have modulus ``~sqrt(1 - alpha)``; with alpha = 0.1 the
dynamics are near-marginally stable, so cohort-bias excitation produces the
large, slowly-decaying oscillations the paper reports as non-convergence.
Raising alpha (FedWCM's response to imbalance) restores damping — see
``benchmarks/bench_theorem61_rate.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["QuadraticProblem", "make_longtail_quadratic", "run_quadratic_fl"]


@dataclass
class QuadraticProblem:
    """N-client quadratic federated problem.

    Attributes:
        curvature: per-coordinate eigenvalues of A (shared across clients).
        minimizers: (N, d) per-client minimisers b_i.
        sigma: stochastic gradient noise standard deviation.
        weights: client weights in the global objective (uniform if None).
    """

    curvature: np.ndarray
    minimizers: np.ndarray
    sigma: float = 0.0
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.curvature = np.asarray(self.curvature, dtype=np.float64)
        self.minimizers = np.asarray(self.minimizers, dtype=np.float64)
        if self.curvature.ndim != 1 or np.any(self.curvature <= 0):
            raise ValueError("curvature must be a positive 1-D vector")
        if self.minimizers.ndim != 2 or self.minimizers.shape[1] != self.curvature.size:
            raise ValueError("minimizers must be (N, d) matching curvature dim")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        n = self.minimizers.shape[0]
        if self.weights is None:
            self.weights = np.full(n, 1.0 / n)
        else:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != (n,) or not np.isclose(self.weights.sum(), 1.0):
                raise ValueError("weights must be length-N and sum to 1")

    @property
    def num_clients(self) -> int:
        return self.minimizers.shape[0]

    @property
    def dim(self) -> int:
        return self.curvature.size

    @property
    def L(self) -> float:
        """Smoothness constant (largest curvature eigenvalue)."""
        return float(self.curvature.max())

    @property
    def x_star(self) -> np.ndarray:
        """Global minimiser: the weight-averaged client minimiser."""
        return self.weights @ self.minimizers

    def grad(self, i: int, x: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """(Stochastic) gradient of client ``i`` at ``x``."""
        g = self.curvature * (x - self.minimizers[i])
        if self.sigma > 0 and rng is not None:
            g = g + rng.normal(0.0, self.sigma, size=g.shape)
        return g

    def global_grad(self, x: np.ndarray) -> np.ndarray:
        return self.curvature * (x - self.x_star)

    def global_loss(self, x: np.ndarray) -> float:
        diffs = x[None, :] - self.minimizers
        per = 0.5 * (diffs**2 * self.curvature[None, :]).sum(axis=1)
        return float(self.weights @ per)


def make_longtail_quadratic(
    num_clients: int = 50,
    dim: int = 20,
    head_fraction: float = 0.8,
    bias_strength: float = 3.0,
    sigma: float = 0.5,
    curvature_range: tuple[float, float] = (0.5, 2.0),
    seed: int | np.random.Generator = 0,
) -> QuadraticProblem:
    """Quadratic problem with a long-tail-style head-ward gradient bias.

    ``head_fraction`` of the clients share (noisy copies of) a head anchor at
    distance ``bias_strength`` from the origin along a fixed direction; the
    rest have independent tail anchors.  The cohort-average gradient is then
    persistently biased toward the head anchor — the quadratic analogue of
    majority-class gradient domination.
    """
    rng = as_generator(seed)
    if not 0.0 < head_fraction < 1.0:
        raise ValueError("head_fraction must lie in (0, 1)")
    lo, hi = curvature_range
    curv = rng.uniform(lo, hi, size=dim)
    head_dir = rng.normal(size=dim)
    head_dir /= np.linalg.norm(head_dir)
    n_head = max(1, int(round(head_fraction * num_clients)))
    b = np.empty((num_clients, dim))
    b[:n_head] = bias_strength * head_dir + 0.2 * rng.normal(size=(n_head, dim))
    n_tail = num_clients - n_head
    b[n_head:] = -bias_strength * head_dir + 1.5 * rng.normal(size=(n_tail, dim))
    return QuadraticProblem(curvature=curv, minimizers=b, sigma=sigma)


def run_quadratic_fl(
    problem: QuadraticProblem,
    method: str = "fedavg",
    rounds: int = 200,
    local_steps: int = 10,
    lr_local: float = 0.05,
    lr_global: float = 1.0,
    participation: float = 0.2,
    alpha: float = 0.1,
    adaptive_alpha_fn=None,
    seed: int | np.random.Generator = 0,
    x0: np.ndarray | None = None,
) -> dict[str, np.ndarray]:
    """Run FedAvg / FedCM / FedWCM-style dynamics on a quadratic problem.

    Args:
        method: ``"fedavg"``, ``"fedcm"`` or ``"fedwcm"`` (``fedwcm`` uses
            ``adaptive_alpha_fn(round_idx, selected) -> alpha`` when given,
            else a fixed damped alpha of 0.5).
        rounds / local_steps / lr_local / lr_global / participation: FL knobs.
        alpha: momentum mixing coefficient for fedcm.
        seed: RNG seed.
        x0: starting point (zeros by default).

    Returns:
        dict with per-round ``grad_norm_sq``, ``loss`` and ``distance``
        (to the global minimiser) arrays.
    """
    if method not in ("fedavg", "fedcm", "fedwcm"):
        raise ValueError(f"unknown method {method!r}")
    rng = as_generator(seed)
    n, d = problem.num_clients, problem.dim
    m = max(1, int(round(participation * n)))
    x = np.zeros(d) if x0 is None else x0.astype(np.float64).copy()
    delta = np.zeros(d)
    a = alpha if method != "fedavg" else 1.0

    grad_norms = np.empty(rounds)
    losses = np.empty(rounds)
    dists = np.empty(rounds)
    xstar = problem.x_star

    for r in range(rounds):
        if method == "fedwcm":
            if adaptive_alpha_fn is not None:
                a = float(adaptive_alpha_fn(r, None))
            else:
                a = 0.5
        selected = rng.choice(n, size=m, replace=False)
        disps = np.empty((m, d))
        for j, i in enumerate(selected):
            xi = x.copy()
            for _ in range(local_steps):
                g = problem.grad(int(i), xi, rng)
                v = g if method == "fedavg" else a * g + (1.0 - a) * delta
                xi -= lr_local * v
            disps[j] = x - xi
        avg_disp = disps.mean(axis=0)
        if method != "fedavg":
            delta = avg_disp / (lr_local * local_steps)
        x = x - lr_global * avg_disp

        grad_norms[r] = float(np.sum(problem.global_grad(x) ** 2))
        losses[r] = problem.global_loss(x)
        dists[r] = float(np.linalg.norm(x - xstar))

    return {"grad_norm_sq": grad_norms, "loss": losses, "distance": dists}
