"""Linear stability analysis of the FedCM round map.

On a quadratic objective with curvature eigenvalue ``lam``, one FedCM round
(client momentum ``v = alpha*g + (1-alpha)*Delta``, displacement-averaged
server step with effective step size ``s = lr_local * local_steps``) acts on
the state ``(error e, momentum Delta)`` as the 2x2 map

    e'     = e - s * (alpha * lam * e + (1 - alpha) * Delta)
    Delta' = alpha * lam * e + (1 - alpha) * Delta

    M(lam) = [[1 - s*alpha*lam,  -s*(1 - alpha)],
              [alpha*lam,         1 - alpha   ]]

Its eigenvalues determine convergence: ``det M = (1 - alpha)`` independently
of ``lam``, so with FedCM's alpha = 0.1 the product of the eigenvalues has
modulus 0.9 — the dynamics are *near-marginally damped*, and any persistent
excitation (the long-tail cohort bias of section 4) produces large,
slowly-decaying oscillations.  Raising alpha (FedWCM's Eq. 5 response to
imbalance) shrinks ``det M`` and restores damping.  This module computes the
spectral radius, damping margins and the steady-state noise amplification so
that the mechanism can be quantified exactly (see
``benchmarks/bench_stability_analysis.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "round_map",
    "spectral_radius",
    "stability_margin",
    "noise_amplification",
    "critical_alpha",
]


def round_map(lam: float, alpha: float, step: float) -> np.ndarray:
    """The 2x2 FedCM round map for curvature eigenvalue ``lam``."""
    if lam <= 0 or step <= 0:
        raise ValueError("lam and step must be positive")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must lie in (0, 1], got {alpha}")
    return np.array(
        [
            [1.0 - step * alpha * lam, -step * (1.0 - alpha)],
            [alpha * lam, 1.0 - alpha],
        ]
    )


def spectral_radius(lam: float, alpha: float, step: float) -> float:
    """Modulus of the dominant eigenvalue of the round map."""
    eig = np.linalg.eigvals(round_map(lam, alpha, step))
    return float(np.abs(eig).max())


def stability_margin(lam: float, alpha: float, step: float) -> float:
    """``1 - spectral_radius``; positive means asymptotically stable."""
    return 1.0 - spectral_radius(lam, alpha, step)


def noise_amplification(lam: float, alpha: float, step: float, horizon: int = 2000) -> float:
    """Steady-state variance gain of the round map under unit white noise.

    Sums ``||M^t B||_F^2`` where ``B`` injects gradient noise into both the
    error and momentum coordinates — the discrete Lyapunov series, truncated
    at ``horizon`` (or until the spectral radius guarantees convergence).
    Larger values mean cohort-composition noise is amplified more strongly
    in steady state.
    """
    m = round_map(lam, alpha, step)
    rho = float(np.abs(np.linalg.eigvals(m)).max())
    if rho >= 1.0:
        return float("inf")
    b = np.array([[-step * alpha], [alpha]])  # unit gradient-noise injection
    total = 0.0
    cur = b.copy()
    for _ in range(horizon):
        total += float((cur**2).sum())
        cur = m @ cur
        if (cur**2).sum() < 1e-18:
            break
    return total


def bias_forgetting_time(lam: float, alpha: float, step: float) -> float:
    """Rounds needed to forget a stale bias direction: ``1 / (1 - rho)``.

    A persistent head-class bias that *changes* (e.g. when a tail-rich
    cohort is finally sampled) keeps influencing the updates for about this
    many rounds.  FedCM's alpha = 0.1 gives ~20 rounds of stale-direction
    memory; FedWCM's raised alpha under imbalance cuts it to a few rounds.
    """
    rho = spectral_radius(lam, alpha, step)
    if rho >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - rho)


def critical_alpha(lam: float, step: float, target_margin: float = 0.05) -> float:
    """Smallest alpha in (0, 1] whose stability margin reaches the target.

    Bisection over alpha; returns 1.0 if even alpha = 1 (no momentum) misses
    the target margin (i.e. the step size itself is too large).
    """
    if stability_margin(lam, 1.0, step) < target_margin:
        return 1.0
    lo, hi = 1e-4, 1.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if stability_margin(lam, mid, step) >= target_margin:
            hi = mid
        else:
            lo = mid
    return float(hi)
