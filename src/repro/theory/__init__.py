"""Theory substrate: Theorem 6.1 rate bounds and the quadratic testbed."""

from repro.theory.bounds import (
    RateConstants,
    convergence_rate_bound,
    beta_upper_bound,
    lr_condition,
)
from repro.theory.quadratic import (
    QuadraticProblem,
    make_longtail_quadratic,
    run_quadratic_fl,
)
from repro.theory.stability import (
    round_map,
    spectral_radius,
    stability_margin,
    noise_amplification,
    critical_alpha,
    bias_forgetting_time,
)

__all__ = [
    "RateConstants",
    "convergence_rate_bound",
    "beta_upper_bound",
    "lr_condition",
    "QuadraticProblem",
    "make_longtail_quadratic",
    "run_quadratic_fl",
    "round_map",
    "spectral_radius",
    "stability_margin",
    "noise_amplification",
    "critical_alpha",
    "bias_forgetting_time",
]
