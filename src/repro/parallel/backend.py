"""Pluggable execution backends: one job contract for every engine kind.

Before this module the compute path was forked: the asynchronous policy had
a serial branch (live algorithm, live model — the only branch that could
carry packed client state and BatchNorm buffers) and a worker-pool branch
(stateless jobs only), and parameter sweeps ran grid points one at a time.
This module closes the fork with a task-runner/executor split (the same
architecture OpenFL uses): engines describe client work as
:class:`ClientJob` values and an :class:`ExecutionBackend` decides *where*
the jobs run.

The contract makes every job a pure function of its inputs::

    ClientJob(round_idx, client_id, x_ref,
              client_state, buffers, broadcast_state)
        -> ClientResult(update, new_state, buffers, train_loss)

* ``client_state`` — the client's persistent algorithm state (SCAFFOLD
  control variates, FedDyn duals) packed through the
  :class:`~repro.algorithms.base.FederatedAlgorithm` pack/unpack contract;
  ``None`` for stateless methods (and for engines whose live algorithm
  already holds the state, i.e. the serial backend under synchronous
  rounds).
* ``buffers`` — the server's current BatchNorm-style buffer estimate the
  client starts training from; the post-training buffers come back in the
  result.
* ``broadcast_state`` — server-side state the method's ``client_update``
  reads (SCAFFOLD's ``c``, FedCM's ``Delta``), declared per method via
  ``broadcast_attrs``; ``None`` when the executing algorithm instance is
  the live one.

Because jobs are pure, the three implementations are interchangeable and
bit-identical (``tests/test_backends.py`` pins this across all four engine
kinds):

* :class:`SerialBackend` — in-process against the engine's live context and
  algorithm; the default, and the reference semantics.
* :class:`ProcessPoolBackend` — a fork-based process pool whose workers
  accept and return packed state and buffer dicts (the rework of the old
  ``ParallelClientRunner.run_jobs`` path, which could ship neither).
* :class:`ThreadBackend` — per-thread replicas; no fork, cheap to spin up —
  meant for smoke/CI runs and platforms without ``fork``.

Backends double as coarse-grained parallel mappers (:meth:`ExecutionBackend.map`)
so :func:`repro.experiments.run_sweep` can dispatch whole grid points
through the same abstraction.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.parallel.pool import parallel_map, resolve_workers
from repro.simulation.context import SimulationContext
from repro.simulation.engine import attach_train_loss

__all__ = [
    "ClientJob",
    "ClientResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadBackend",
    "BACKENDS",
    "make_backend",
    "resolve_backend",
    "prepare_engine_backend",
    "execute_job",
    "warn_on_replica_config_mismatch",
]


@dataclass(frozen=True)
class ClientJob:
    """One unit of client work, self-contained and order-independent.

    Attributes:
        round_idx: RNG round key for ``client_update`` (the round for
            barrier/deadline engines, the dispatch sequence for async).
        client_id: which client trains.
        x_ref: the broadcast parameter vector trained from.
        client_state: packed per-client algorithm state to train from, or
            None when the executing algorithm already holds it (stateless
            methods, or the serial backend under synchronous rounds).
        buffers: model buffers (BatchNorm running stats) to start from, or
            None for buffer-free models.
        broadcast_state: server-side method state ``client_update`` reads
            (see ``FederatedAlgorithm.broadcast_attrs``), or None when the
            executing instance is the live one.
        collect_timing: stamp the result with queue-wait/compute timing
            (set by a recording :class:`~repro.runtime.events.EventCore`;
            the flag rides in the job because pool workers fork at bind
            time, before any recorder exists).
        submitted_at: ``time.monotonic()`` at submission, the queue-wait
            anchor (monotonic is cross-process comparable on Linux).
    """

    round_idx: int
    client_id: int
    x_ref: np.ndarray = field(repr=False)
    client_state: dict | None = field(default=None, repr=False)
    buffers: dict | None = field(default=None, repr=False)
    broadcast_state: dict | None = field(default=None, repr=False)
    collect_timing: bool = field(default=False, repr=False, compare=False)
    submitted_at: float | None = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class ClientResult:
    """What one :class:`ClientJob` produced.

    Attributes:
        update: the algorithm's ``ClientUpdate`` (displacement + extras).
        new_state: packed post-training client state (None if the job
            carried no ``client_state``).
        buffers: post-training model buffers (None if the job carried no
            ``buffers``).
        train_loss: mean local training loss, when the method reports one.
        timing: per-job timing dict (``queue_wait_s``, ``compute_s``, and —
            under the process pool — ``pickle_bytes``), present only when
            the job asked for it via ``collect_timing``.
    """

    update: object = field(repr=False)
    new_state: dict | None = field(default=None, repr=False)
    buffers: dict | None = field(default=None, repr=False)
    train_loss: float | None = None
    timing: dict | None = field(default=None, repr=False, compare=False)


def execute_job(ctx: SimulationContext, algorithm, job: ClientJob) -> ClientResult:
    """Run one job against ``(ctx, algorithm)`` — the single job semantics.

    Every backend funnels through here, which is what makes them
    interchangeable: restore buffers, broadcast state and client state from
    the job, run ``client_update``, pack what changed back into the result.
    """
    if job.buffers is not None:
        ctx.model.set_buffers(job.buffers)
    if job.broadcast_state is not None:
        algorithm.unpack_broadcast_state(job.broadcast_state)
    if job.client_state is not None:
        algorithm.unpack_client_state(job.client_id, job.client_state)
    update = algorithm.client_update(ctx, job.round_idx, job.client_id, job.x_ref)
    update = attach_train_loss(algorithm, update)
    new_state = (
        algorithm.pack_client_state(job.client_id)
        if job.client_state is not None
        else None
    )
    buffers = ctx.model.get_buffers(copy=True) if job.buffers is not None else None
    loss = update.extras.get("train_loss")
    return ClientResult(
        update=update,
        new_state=new_state,
        buffers=buffers,
        train_loss=float(loss) if loss is not None else None,
    )


def _run_job_timed(
    ctx: SimulationContext, algorithm, job: ClientJob, measure_pickle: bool = False
) -> ClientResult:
    """:func:`execute_job`, stamping timing when the job asks for it.

    All three backends funnel through here so every execution path reports
    the same fields: ``queue_wait_s`` (submission to compute start),
    ``compute_s`` (client_update wall time) and — where the job actually
    crossed a process boundary — ``pickle_bytes`` (serialized job size).
    """
    if not job.collect_timing:
        return execute_job(ctx, algorithm, job)
    start = time.monotonic()
    result = execute_job(ctx, algorithm, job)
    timing = {
        "queue_wait_s": (
            start - job.submitted_at if job.submitted_at is not None else 0.0
        ),
        "compute_s": time.monotonic() - start,
    }
    if measure_pickle:
        timing["pickle_bytes"] = len(pickle.dumps(job, pickle.HIGHEST_PROTOCOL))
    return ClientResult(
        update=result.update,
        new_state=result.new_state,
        buffers=result.buffers,
        train_loss=result.train_loss,
        timing=timing,
    )


def warn_on_replica_config_mismatch(algorithm) -> None:
    """Default worker replicas are ``type(algorithm)()`` — flag silently
    diverging hyperparameters.

    Workers only run ``client_update``, so a replica built with default
    constructor arguments is correct as long as every non-default
    hyperparameter is server-side.  Algorithms declare such knobs via a
    ``replica_safe_hyperparams`` class attribute (FedAsync/FedBuff whitelist
    all of theirs); anything else that differs from the default-constructed
    probe draws a warning instead of silently breaking the parallel ==
    serial bit-identity guarantee.
    """
    try:
        probe = type(algorithm)()
    except TypeError:
        warnings.warn(
            f"{type(algorithm).__name__} cannot be rebuilt with no arguments "
            "for worker replicas; pass algo_builder to the engine",
            stacklevel=3,
        )
        return
    # private attributes are runtime state (buffers, last-alpha traces), not
    # constructor config, and declared server-side knobs cannot affect
    # client_update — only the remaining public knobs are compared
    safe = getattr(algorithm, "replica_safe_hyperparams", frozenset())

    def config_of(obj) -> dict:
        return {
            k: v for k, v in vars(obj).items()
            if not k.startswith("_") and k not in safe
        }

    a, b = config_of(algorithm), config_of(probe)
    mismatched = set(a) ^ set(b)
    for key in set(a) & set(b):
        try:
            if not bool(np.all(a[key] == b[key])):
                mismatched.add(key)
        except (TypeError, ValueError):
            mismatched.add(key)
    if mismatched:
        warnings.warn(
            f"worker replicas of {type(algorithm).__name__} are built with "
            f"default hyperparameters but the main instance differs in "
            f"{sorted(mismatched)}; pass algo_builder if any of these affect "
            "client_update, or results will differ from the serial backend",
            stacklevel=3,
        )


class ExecutionBackend:
    """Where client jobs (and sweep grid points) execute.

    Life cycle: construct (cheap, picks a worker count), :meth:`bind` to a
    problem (the engine's context plus replica builders — this is where
    pools spin up), :meth:`run_jobs` any number of times, :meth:`close`.
    :meth:`map` needs no binding and is usable stand-alone for sweeps.

    Attributes:
        shares_state: True when jobs run against the engine's *live*
            algorithm and model, so engine-side state is visible to jobs
            without being shipped through the job contract.  Engines use
            this to skip packing client/broadcast state for the serial
            backend.
    """

    name = "base"
    shares_state = False

    def bind(
        self,
        ctx: SimulationContext,
        algorithm,
        model_builder: Callable | None = None,
        algo_builder: Callable | None = None,
        loss_builder=None,
        sampler_builder=None,
    ) -> "ExecutionBackend":
        raise NotImplementedError

    def run_jobs(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        raise NotImplementedError

    def map(self, fn: Callable, items: list) -> list:
        """Order-preserving parallel map over coarse-grained items."""
        raise NotImplementedError

    def close(self) -> None:
        pass

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution against the live context — the reference
    semantics every other backend must reproduce bit-for-bit."""

    name = "serial"
    shares_state = True

    def __init__(self, workers: int | None = None) -> None:
        # accepts (and ignores) a worker count so make_backend is uniform
        self._ctx: SimulationContext | None = None
        self._algo = None

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "SerialBackend":
        self._ctx = ctx
        self._algo = algorithm
        return self

    def run_jobs(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        return [_run_job_timed(self._ctx, self._algo, job) for job in jobs]

    def map(self, fn: Callable, items: list) -> list:
        return [fn(item) for item in items]


# -- process pool ------------------------------------------------------------
# worker-global replica: (context, algorithm) built once per process
_WORKER: dict = {}


def _pool_worker_init(model_builder, dataset, config, loss_builder,
                      sampler_builder, algo_builder) -> None:
    ctx = SimulationContext(
        model_builder(), dataset, config,
        loss_builder=loss_builder, sampler_builder=sampler_builder,
    )
    algo = algo_builder()
    algo.setup(ctx)
    _WORKER["ctx"] = ctx
    _WORKER["algo"] = algo


def _pool_worker_run(job: ClientJob) -> ClientResult:
    return _run_job_timed(_WORKER["ctx"], _WORKER["algo"], job, measure_pickle=True)


class ProcessPoolBackend(ExecutionBackend):
    """Fork-based process pool speaking the full job contract.

    The rework of the old ``ParallelClientRunner.run_jobs`` path: workers
    now accept and return packed client state and buffer dicts, so stateful
    methods (SCAFFOLD, FedDyn) and BatchNorm buffer tracking run under the
    pool with results bit-identical to the serial backend.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._pool = None

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "ProcessPoolBackend":
        if model_builder is None:
            raise ValueError(
                f"backend {self.name!r} needs a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
            algo_builder = type(algorithm)
        self.close()
        self._pool = mp.get_context("fork").Pool(
            processes=self.workers,
            initializer=_pool_worker_init,
            initargs=(model_builder, ctx.dataset, ctx.config,
                      loss_builder, sampler_builder, algo_builder),
        )
        return self

    def run_jobs(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        if self._pool is None:
            raise RuntimeError("ProcessPoolBackend.run_jobs before bind()")
        return self._pool.map(_pool_worker_run, list(jobs))

    def map(self, fn: Callable, items: list) -> list:
        # coarse-grained sweep map: a transient pool, independent of bind()
        return parallel_map(fn, items, workers=self.workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


class ThreadBackend(ExecutionBackend):
    """Thread pool with per-thread replicas — no fork, cheap start-up.

    Each worker thread lazily builds its own context and algorithm from the
    bound builders (models are mutable and must not be shared), then runs
    jobs through the same :func:`execute_job` semantics.  Meant for
    smoke/CI runs and platforms without ``fork``; NumPy holds the GIL for
    most of a job, so speed-ups are modest.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._local = threading.local()
        self._builders = None
        self._executor: ThreadPoolExecutor | None = None

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "ThreadBackend":
        if model_builder is None:
            raise ValueError(
                f"backend {self.name!r} needs a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
            algo_builder = type(algorithm)
        self.close()
        self._builders = (model_builder, ctx.dataset, ctx.config,
                          loss_builder, sampler_builder, algo_builder)
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self

    def _replica(self):
        if not hasattr(self._local, "ctx"):
            model_builder, dataset, config, loss_b, sampler_b, algo_b = self._builders
            ctx = SimulationContext(
                model_builder(), dataset, config,
                loss_builder=loss_b, sampler_builder=sampler_b,
            )
            algo = algo_b()
            algo.setup(ctx)
            self._local.ctx, self._local.algo = ctx, algo
        return self._local.ctx, self._local.algo

    def _run_one(self, job: ClientJob) -> ClientResult:
        ctx, algo = self._replica()
        return _run_job_timed(ctx, algo, job)

    def run_jobs(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        if self._executor is None:
            raise RuntimeError("ThreadBackend.run_jobs before bind()")
        return list(self._executor.map(self._run_one, jobs))

    def map(self, fn: Callable, items: list) -> list:
        # usable unbound (sweeps): a transient executor preserves order
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as ex:
            return list(ex.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


BACKENDS: dict[str, type] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "thread": ThreadBackend,
}


def make_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    try:
        cls = BACKENDS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
    return cls(workers=workers)


def prepare_engine_backend(
    backend: "ExecutionBackend | str | None",
    workers: int | None,
    algorithm,
    model_builder: Callable | None,
    algo_builder: Callable | None,
) -> tuple[str, "ExecutionBackend | None", Callable]:
    """Shared engine-constructor plumbing for the ``backend`` argument.

    Returns ``(backend_name, instance_or_None, algo_builder)``: an instance
    only when the caller passed one (the engine then must not close it);
    otherwise the engine builds a fresh backend per run from the name.
    Validates the model-builder requirement and emits the replica-config
    warning at construction time, before any compute is spent.
    """
    if isinstance(backend, ExecutionBackend):
        name: str = backend.name
        instance: ExecutionBackend | None = backend
    else:
        name, instance = resolve_backend(backend, workers), None
    if name != "serial":
        if not getattr(algorithm, "parallel_safe", True):
            raise ValueError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)} keeps "
                "client-visible state outside the pack/unpack and "
                "broadcast_attrs contracts; worker replicas would silently "
                "diverge — run it on the serial backend"
            )
        if model_builder is None:
            raise ValueError(
                f"backend {name!r} requires a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
    return name, instance, algo_builder or type(algorithm)


def resolve_backend(
    name: str | None = None,
    workers: int | None = None,
    env: bool = False,
) -> str:
    """Resolve a backend name.

    Precedence: explicit ``name`` (anything but None/"auto") > the
    ``REPRO_BACKEND`` environment variable (only when ``env=True`` — the
    spec facade and sweeps opt in; direct engine construction does not, so
    tests and libraries keep explicit control) > ``"process"`` when
    ``workers`` asks for more than one > ``"serial"``.

    Inside a daemonic pool worker the implicit choices collapse to
    ``"serial"``: nested process pools cannot fork.
    """
    if name is not None and name != "auto":
        if name.lower() not in BACKENDS:
            raise ValueError(
                f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
            )
        return name.lower()
    daemon = mp.current_process().daemon
    if env:
        env_name = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if env_name:
            if env_name not in BACKENDS:
                raise ValueError(
                    f"REPRO_BACKEND must be one of {sorted(BACKENDS)}, "
                    f"got {env_name!r}"
                )
            return "serial" if (daemon and env_name == "process") else env_name
    if workers is not None and workers > 1:
        return "serial" if daemon else "process"
    return "serial"
