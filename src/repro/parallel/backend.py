"""Pluggable execution backends: one job contract for every engine kind.

Before this module the compute path was forked: the asynchronous policy had
a serial branch (live algorithm, live model — the only branch that could
carry packed client state and BatchNorm buffers) and a worker-pool branch
(stateless jobs only), and parameter sweeps ran grid points one at a time.
This module closes the fork with a task-runner/executor split (the same
architecture OpenFL uses): engines describe client work as
:class:`ClientJob` values and an :class:`ExecutionBackend` decides *where*
the jobs run.

The contract makes every job a pure function of its inputs::

    ClientJob(round_idx, client_id, x_ref,
              client_state, buffers, broadcast_state)
        -> ClientResult(update, new_state, buffers, train_loss)

* ``client_state`` — the client's persistent algorithm state (SCAFFOLD
  control variates, FedDyn duals) packed through the
  :class:`~repro.algorithms.base.FederatedAlgorithm` pack/unpack contract;
  ``None`` for stateless methods (and for engines whose live algorithm
  already holds the state, i.e. the serial backend under synchronous
  rounds).
* ``buffers`` — the server's current BatchNorm-style buffer estimate the
  client starts training from; the post-training buffers come back in the
  result.
* ``broadcast_state`` — server-side state the method's ``client_update``
  reads (SCAFFOLD's ``c``, FedCM's ``Delta``), declared per method via
  ``broadcast_attrs``; ``None`` when the executing algorithm instance is
  the live one.

The execution interface is *streaming*: work is handed over one job at a
time and results are picked up as they finish, so an engine can overlap
worker compute with its own event processing::

    handle = backend.submit(job)              # returns immediately
    pairs  = backend.collect([handle, ...],   # [(handle, result), ...]
                             block=True)      # block=False: only the ready ones

:meth:`ExecutionBackend.run_jobs` remains as a batch compatibility shim on
the base class (submit everything, collect in submit order).  Third-party
backends that only override ``run_jobs`` keep working through a base-class
fallback — submits queue up and the first blocking collect runs them as one
batch — but draw a :class:`DeprecationWarning`: implement ``submit`` /
``collect`` instead.

Because jobs are pure, the three implementations are interchangeable and
bit-identical (``tests/test_backends.py`` pins this across all four engine
kinds, batch and streaming):

* :class:`SerialBackend` — in-process against the engine's live context and
  algorithm; the default, and the reference semantics.  ``submit`` executes
  eagerly (there is nothing to overlap with in one process).
* :class:`ProcessPoolBackend` — a fork-based process pool whose workers
  accept and return packed state and buffer dicts; ``submit`` is a true
  asynchronous hand-off (``Pool.apply_async``).
* :class:`ThreadBackend` — per-thread replicas; no fork, cheap to spin up —
  meant for smoke/CI runs and platforms without ``fork``; ``submit`` returns
  a live future.

Backends have an explicit lifecycle — ``bind`` → submit/collect →
``close()`` — and double as context managers, so a run that raises
mid-stream still reaps its worker pool.  They also double as coarse-grained
parallel mappers (:meth:`ExecutionBackend.map`) so
:func:`repro.experiments.run_sweep` can dispatch whole grid points through
the same abstraction.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from repro.parallel.pool import parallel_map, resolve_workers
from repro.parallel.shm import BroadcastStore, resolve_job_refs
from repro.simulation.context import SimulationContext
from repro.simulation.engine import attach_train_loss

__all__ = [
    "ClientJob",
    "ClientResult",
    "JobHandle",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadBackend",
    "BACKENDS",
    "make_backend",
    "resolve_backend",
    "resolve_streaming",
    "resolve_job_batch",
    "resolve_shared_memory",
    "prepare_engine_backend",
    "execute_job",
    "execute_client_job",
    "build_job_runtime",
    "warn_on_replica_config_mismatch",
]


@dataclass(frozen=True)
class ClientJob:
    """One unit of client work, self-contained and order-independent.

    Attributes:
        round_idx: RNG round key for ``client_update`` (the round for
            barrier/deadline engines, the dispatch sequence for async).
        client_id: which client trains.
        x_ref: the broadcast parameter vector trained from.  In transit a
            transport may substitute a descriptor (a shared-memory
            :class:`~repro.parallel.shm.ArrayRef`, a wire token) that the
            executing side resolves back to the real array before compute.
        client_state: packed per-client algorithm state to train from, or
            None when the executing algorithm already holds it (stateless
            methods, or the serial backend under synchronous rounds).
        buffers: model buffers (BatchNorm running stats) to start from, or
            None for buffer-free models.
        broadcast_state: server-side method state ``client_update`` reads
            (see ``FederatedAlgorithm.broadcast_attrs``), or None when the
            executing instance is the live one.
        collect_timing: stamp the result with queue-wait/compute timing
            (set by a recording :class:`~repro.runtime.events.EventCore`;
            the flag rides in the job because pool workers fork at bind
            time, before any recorder exists).
        submitted_at: ``time.monotonic()`` at submission, the queue-wait
            anchor (monotonic is cross-process comparable on Linux).
    """

    round_idx: int
    client_id: int
    x_ref: np.ndarray = field(repr=False)
    client_state: dict | None = field(default=None, repr=False)
    buffers: dict | None = field(default=None, repr=False)
    broadcast_state: dict | None = field(default=None, repr=False)
    collect_timing: bool = field(default=False, repr=False, compare=False)
    submitted_at: float | None = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class ClientResult:
    """What one :class:`ClientJob` produced.

    Attributes:
        update: the algorithm's ``ClientUpdate`` (displacement + extras).
        new_state: packed post-training client state (None if the job
            carried no ``client_state``).
        buffers: post-training model buffers (None if the job carried no
            ``buffers``).
        train_loss: mean local training loss, when the method reports one.
        timing: per-job timing dict (``queue_wait_s``, ``compute_s``, and —
            under the process pool — ``pickle_bytes``), present only when
            the job asked for it via ``collect_timing``.
    """

    update: object = field(repr=False)
    new_state: dict | None = field(default=None, repr=False)
    buffers: dict | None = field(default=None, repr=False)
    train_loss: float | None = None
    timing: dict | None = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class JobHandle:
    """Ticket for one submitted :class:`ClientJob`.

    Identity (hash/equality) is the backend-local submission sequence
    number, so handles work as dictionary keys on both sides of the
    contract; the job rides along (as actually submitted, timing stamps
    included) for journaling at collect time.  Handles are plain data —
    the backend keeps the future/async-result internally — so policies can
    hold them across checkpoints without dragging live resources into
    pickles.
    """

    seq: int
    job: ClientJob = field(repr=False, compare=False)


def execute_job(ctx: SimulationContext, algorithm, job: ClientJob) -> ClientResult:
    """Run one job against ``(ctx, algorithm)`` — the single job semantics.

    Every backend funnels through here, which is what makes them
    interchangeable: restore buffers, broadcast state and client state from
    the job, run ``client_update``, pack what changed back into the result.
    """
    if job.buffers is not None:
        ctx.model.set_buffers(job.buffers)
    if job.broadcast_state is not None:
        algorithm.unpack_broadcast_state(job.broadcast_state)
    if job.client_state is not None:
        algorithm.unpack_client_state(job.client_id, job.client_state)
    update = algorithm.client_update(ctx, job.round_idx, job.client_id, job.x_ref)
    update = attach_train_loss(algorithm, update)
    new_state = (
        algorithm.pack_client_state(job.client_id)
        if job.client_state is not None
        else None
    )
    buffers = ctx.model.get_buffers(copy=True) if job.buffers is not None else None
    loss = update.extras.get("train_loss")
    return ClientResult(
        update=update,
        new_state=new_state,
        buffers=buffers,
        train_loss=float(loss) if loss is not None else None,
    )


def execute_client_job(
    ctx: SimulationContext, algorithm, job: ClientJob, job_bytes: int | None = None
) -> ClientResult:
    """:func:`execute_job`, stamping timing when the job asks for it.

    This is *the* worker-side compute path, shared by every executor that
    runs jobs against a replica — the serial backend, pool workers, thread
    replicas, and :mod:`repro.net`'s remote worker processes — so every
    execution path reports the same fields: ``queue_wait_s`` (submission to
    compute start; ``time.monotonic`` is cross-process comparable on one
    machine), ``compute_s`` (client_update wall time) and — where the job
    actually crossed a process boundary — ``pickle_bytes``, the serialized
    job size the *transport* already measured (``job_bytes``: the pool's
    chunk payload share, the net worker's frame share).  Executors never
    re-pickle a job just to weigh it.  Remote transports additionally stamp
    ``send_bytes`` / ``recv_bytes`` on the service side, where the framed
    sizes are known.
    """
    if not job.collect_timing:
        return execute_job(ctx, algorithm, job)
    start = time.monotonic()
    result = execute_job(ctx, algorithm, job)
    timing = {
        "queue_wait_s": (
            start - job.submitted_at if job.submitted_at is not None else 0.0
        ),
        "compute_s": time.monotonic() - start,
    }
    if job_bytes is not None:
        timing["pickle_bytes"] = int(job_bytes)
    return ClientResult(
        update=result.update,
        new_state=result.new_state,
        buffers=result.buffers,
        train_loss=result.train_loss,
        timing=timing,
    )


def warn_on_replica_config_mismatch(algorithm) -> None:
    """Default worker replicas are ``type(algorithm)()`` — flag silently
    diverging hyperparameters.

    Workers only run ``client_update``, so a replica built with default
    constructor arguments is correct as long as every non-default
    hyperparameter is server-side.  Algorithms declare such knobs via a
    ``replica_safe_hyperparams`` class attribute (FedAsync/FedBuff whitelist
    all of theirs); anything else that differs from the default-constructed
    probe draws a warning instead of silently breaking the parallel ==
    serial bit-identity guarantee.
    """
    try:
        probe = type(algorithm)()
    except TypeError:
        warnings.warn(
            f"{type(algorithm).__name__} cannot be rebuilt with no arguments "
            "for worker replicas; pass algo_builder to the engine",
            stacklevel=3,
        )
        return
    # private attributes are runtime state (buffers, last-alpha traces), not
    # constructor config, and declared server-side knobs cannot affect
    # client_update — only the remaining public knobs are compared
    safe = getattr(algorithm, "replica_safe_hyperparams", frozenset())

    def config_of(obj) -> dict:
        return {
            k: v for k, v in vars(obj).items()
            if not k.startswith("_") and k not in safe
        }

    a, b = config_of(algorithm), config_of(probe)
    mismatched = set(a) ^ set(b)
    for key in set(a) & set(b):
        try:
            if not bool(np.all(a[key] == b[key])):
                mismatched.add(key)
        except (TypeError, ValueError):
            mismatched.add(key)
    if mismatched:
        warnings.warn(
            f"worker replicas of {type(algorithm).__name__} are built with "
            f"default hyperparameters but the main instance differs in "
            f"{sorted(mismatched)}; pass algo_builder if any of these affect "
            "client_update, or results will differ from the serial backend",
            stacklevel=3,
        )


class ExecutionBackend:
    """Where client jobs (and sweep grid points) execute.

    Life cycle: construct (cheap, picks a worker count), :meth:`bind` to a
    problem (the engine's context plus replica builders — this is where
    pools spin up), :meth:`submit` / :meth:`collect` any number of times,
    :meth:`close` (or use the backend as a context manager).  :meth:`map`
    needs no binding and is usable stand-alone for sweeps.

    Subclasses implement :meth:`submit` and :meth:`collect`;
    :meth:`run_jobs` is a batch compatibility shim over them.  Legacy
    subclasses that only override ``run_jobs`` keep working — the base
    ``submit`` queues jobs and the first blocking ``collect`` runs them as
    one batch — but draw a :class:`DeprecationWarning`.

    Attributes:
        shares_state: True when jobs run against the engine's *live*
            algorithm and model, so engine-side state is visible to jobs
            without being shipped through the job contract.  Engines use
            this to skip packing client/broadcast state for the serial
            backend, and to keep lazy-batch dispatch (there is nothing to
            overlap with when compute runs in the engine's own process).
    """

    name = "base"
    shares_state = False
    #: True when an engine must close this backend even though it received
    #: it as a pre-built instance (the facade hands engines a configured
    #: :class:`~repro.net.service.RemoteBackend` whose listener lifetime is
    #: the run's; plain instances stay caller-owned as before)
    engine_owned = False
    # class-level defaults so subclasses need not call super().__init__();
    # the first mutation creates the instance attribute
    _handle_seq = 0
    _warned_legacy = False

    def bind(
        self,
        ctx: SimulationContext,
        algorithm,
        model_builder: Callable | None = None,
        algo_builder: Callable | None = None,
        loss_builder=None,
        sampler_builder=None,
    ) -> "ExecutionBackend":
        raise NotImplementedError

    # -- the streaming contract ----------------------------------------------
    def submit(self, job: ClientJob) -> JobHandle:
        """Hand one job to the backend; return immediately with a handle.

        Implementations stamp ``submitted_at`` (via :meth:`_stamp`) the
        moment the job is accepted, so ``queue_wait_s`` measures real
        queueing — unless the caller stamped an earlier anchor already
        (a policy measuring from dispatch time).

        Base-class behavior is the legacy fallback: jobs queue up and the
        first blocking :meth:`collect` pushes them through the subclass's
        ``run_jobs`` as one batch.
        """
        if type(self).run_jobs is ExecutionBackend.run_jobs:
            raise NotImplementedError(
                f"{type(self).__name__} implements neither submit()/collect() "
                "nor run_jobs()"
            )
        if not self._warned_legacy:
            self._warned_legacy = True
            warnings.warn(
                f"{type(self).__name__} only overrides run_jobs(); the batch "
                "API is deprecated — implement submit()/collect() (jobs will "
                "run as one batch at the first blocking collect)",
                DeprecationWarning,
                stacklevel=2,
            )
        handle = self._make_handle(self._stamp(job))
        self._legacy_pending[handle] = handle.job
        return handle

    def submit_many(self, jobs: Sequence[ClientJob]) -> list[JobHandle]:
        """Hand a batch of jobs over in one call; handles in job order.

        Semantically equivalent to ``[self.submit(j) for j in jobs]`` —
        which is exactly the base implementation — but transports that pay
        per-call overhead (pickle + IPC round-trip per pool task, one wire
        frame per remote job) override it to amortize that cost across the
        batch.  Batching is a transport concern only: results still come
        back through :meth:`collect` one handle at a time, and histories
        stay bit-identical to per-job submission because jobs are stamped
        from dispatch-time state before they ever reach the backend.
        """
        return [self.submit(job) for job in jobs]

    def collect(
        self, handles: Sequence[JobHandle] | None = None, block: bool = True
    ) -> list[tuple[JobHandle, ClientResult]]:
        """Completed ``(handle, result)`` pairs for submitted jobs.

        Args:
            handles: which jobs to collect, in the order the pairs should
                come back; None means every outstanding job, in submit
                order.  Each handle is returned at most once across calls.
            block: wait for every requested job (the default); ``False``
                returns only the ones already finished.

        Base-class behavior (legacy fallback): a blocking collect runs all
        queued jobs through ``run_jobs`` first; a non-blocking one returns
        only results computed by an earlier blocking call.  These
        non-blocking semantics are pinned (``tests/test_scaling.py``):
        ``collect(block=False)`` *never* starts work — on a legacy backend
        it returns ``[]`` until a blocking collect has run the batch, and
        it never raises on a handle that is unknown, still queued, or
        already collected (only ``block=True`` raises ``KeyError`` for an
        unknown/already-collected handle).  Batched backends must keep the
        same contract: a non-blocking collect reports finished work only.
        """
        if block and self._legacy_pending:
            pending = self._legacy_pending
            results = self.run_jobs(list(pending.values()))
            self._legacy_done.update(zip(list(pending), results))
            pending.clear()
        return self._take(self._legacy_done, handles, block)

    def run_jobs(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        """Batch compatibility shim: submit every job, collect in order.

        Engines call :meth:`submit` / :meth:`collect` directly; this remains
        for callers that genuinely want batch semantics (round cohorts,
        tests) and for source compatibility with pre-streaming code.
        """
        handles = [self.submit(job) for job in jobs]
        return [res for _, res in self.collect(handles, block=True)]

    # -- helpers shared by implementations -----------------------------------
    def _make_handle(self, job: ClientJob) -> JobHandle:
        seq = self._handle_seq
        self._handle_seq = seq + 1
        return JobHandle(seq, job)

    @staticmethod
    def _stamp(job: ClientJob) -> ClientJob:
        """Anchor ``submitted_at`` now, unless the caller anchored earlier."""
        if job.collect_timing and job.submitted_at is None:
            return replace(job, submitted_at=time.monotonic())
        return job

    @staticmethod
    def _take(
        done: dict, handles: Sequence[JobHandle] | None, block: bool
    ) -> list[tuple[JobHandle, ClientResult]]:
        """Pop completed results for ``handles`` (None: all) out of ``done``."""
        out = []
        for h in list(done) if handles is None else handles:
            if h in done:
                out.append((h, done.pop(h)))
            elif block:
                raise KeyError(f"unknown or already-collected handle {h!r}")
        return out

    @property
    def _legacy_pending(self) -> dict:
        return self.__dict__.setdefault("_legacy_pending_jobs", {})

    @property
    def _legacy_done(self) -> dict:
        return self.__dict__.setdefault("_legacy_done_jobs", {})

    def map(self, fn: Callable, items: list) -> list:
        """Order-preserving parallel map over coarse-grained items."""
        raise NotImplementedError

    def transport_stats(self) -> dict:
        """Cumulative transport counters for observability (may be empty).

        In-process backends have no wire; :class:`repro.net`'s remote
        backend reports worker counts, bytes on the wire, and requeues.
        The recorder folds a non-empty dict into the journal's ``meta`` /
        ``stop`` / ``end`` records.
        """
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution against the live context — the reference
    semantics every other backend must reproduce bit-for-bit.

    ``submit`` executes eagerly: a single process has nothing to overlap
    compute with, and running at submission time preserves the live-state
    mutation order synchronous rounds rely on.
    """

    name = "serial"
    shares_state = True

    def __init__(self, workers: int | None = None) -> None:
        # accepts (and ignores) a worker count so make_backend is uniform
        self._ctx: SimulationContext | None = None
        self._algo = None
        self._done: dict[JobHandle, ClientResult] = {}

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "SerialBackend":
        self._ctx = ctx
        self._algo = algorithm
        self._done = {}
        return self

    def submit(self, job: ClientJob) -> JobHandle:
        if self._ctx is None:
            raise RuntimeError("SerialBackend.submit before bind()")
        handle = self._make_handle(self._stamp(job))
        self._done[handle] = execute_client_job(self._ctx, self._algo, handle.job)
        return handle

    def collect(self, handles=None, block=True):
        # everything completed at submit time; block never has to wait
        return self._take(self._done, handles, block)

    def run_jobs_inline(self, jobs: Sequence[ClientJob]) -> list[ClientResult]:
        """Execute a batch without handle bookkeeping, results in job order.

        Same compute path as ``submit`` (:func:`execute_client_job` against
        the live context), minus the handle/dict churn that only exists to
        serve the streaming contract.  The core's ``run_backend_jobs`` —
        which discards handles anyway — takes this lane on unrecorded runs,
        where nothing (journal, timing stamps) observes the difference.
        """
        if self._ctx is None:
            raise RuntimeError("SerialBackend.run_jobs_inline before bind()")
        ctx, algo = self._ctx, self._algo
        return [execute_client_job(ctx, algo, self._stamp(job)) for job in jobs]

    def close(self) -> None:
        self._done = {}

    def map(self, fn: Callable, items: list) -> list:
        return [fn(item) for item in items]


def build_job_runtime(model_builder, dataset, config, loss_builder=None,
                      sampler_builder=None, algo_builder=None):
    """Build one worker replica: the ``(ctx, algorithm)`` jobs execute against.

    The single construction path for every out-of-process executor — pool
    workers (via fork-shipped builders), thread replicas, and
    :mod:`repro.net` remote workers (via builders rebuilt from the shipped
    :class:`~repro.experiments.ExperimentSpec`) — so a replica is always
    assembled the same way and stays bit-identical to the serial reference.
    """
    ctx = SimulationContext(
        model_builder(), dataset, config,
        loss_builder=loss_builder, sampler_builder=sampler_builder,
    )
    algo = algo_builder()
    algo.setup(ctx)
    return ctx, algo


# -- process pool ------------------------------------------------------------
# worker-global replica: (context, algorithm) built once per process
_WORKER: dict = {}


def _pool_worker_init(model_builder, dataset, config, loss_builder,
                      sampler_builder, algo_builder) -> None:
    _WORKER["ctx"], _WORKER["algo"] = build_job_runtime(
        model_builder, dataset, config,
        loss_builder=loss_builder, sampler_builder=sampler_builder,
        algo_builder=algo_builder,
    )


def _pool_worker_run_payload(payload: bytes) -> list[ClientResult]:
    """Run one pre-pickled chunk of jobs; the pool task granularity.

    The parent pickles the chunk itself (``Pool`` then only re-pickles a
    ``bytes`` object — effectively a memcpy), so the serialized size is
    known on both sides without any extra ``pickle.dumps``: each job's
    ``pickle_bytes`` is its share of the chunk payload.
    """
    jobs = pickle.loads(payload)
    share = len(payload) // max(len(jobs), 1)
    return [
        execute_client_job(
            _WORKER["ctx"], _WORKER["algo"], resolve_job_refs(job),
            job_bytes=share,
        )
        for job in jobs
    ]


class ProcessPoolBackend(ExecutionBackend):
    """Fork-based process pool speaking the full job contract.

    The rework of the old ``ParallelClientRunner.run_jobs`` path: workers
    now accept and return packed state and buffer dicts, so stateful
    methods (SCAFFOLD, FedDyn) and BatchNorm buffer tracking run under the
    pool with results bit-identical to the serial backend.

    Two transport optimizations, both off by default and both identity-
    preserving (jobs are stamped from dispatch-time state before they reach
    the backend, and results are applied in virtual-time order):

    * ``job_batch=k`` — :meth:`submit_many` groups k jobs per pool task,
      amortizing one pickle + one IPC round-trip across the group.
    * ``shared_memory=True`` — broadcast arrays (``x_ref``, round-stable
      ``broadcast_state`` entries) are published once per version into a
      :class:`~repro.parallel.shm.BroadcastStore` and jobs ship tiny
      :class:`~repro.parallel.shm.ArrayRef` descriptors instead; workers
      attach the segments read-only.  Segments are reference-counted per
      in-flight job and the store is unlinked from :meth:`close`, so a run
      that raises mid-stream (the engines close ``engine_owned`` backends
      in a ``finally``) still reaps its shared memory.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        job_batch: int | None = None,
        shared_memory: bool = False,
    ) -> None:
        if job_batch is not None and int(job_batch) < 1:
            raise ValueError(f"job_batch must be >= 1, got {job_batch}")
        self.workers = resolve_workers(workers)
        self.job_batch = int(job_batch) if job_batch is not None else None
        self.shared_memory = bool(shared_memory)
        self._pool = None
        self._store: BroadcastStore | None = None
        # handle -> (chunk AsyncResult, index into the chunk's result list)
        self._inflight: dict[JobHandle, tuple[mp.pool.AsyncResult, int]] = {}
        # shm refs acquired per handle, released at collect
        self._handle_refs: dict[JobHandle, tuple] = {}
        self._jobs_submitted = 0
        self._tasks_submitted = 0

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "ProcessPoolBackend":
        if model_builder is None:
            raise ValueError(
                f"backend {self.name!r} needs a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
            algo_builder = type(algorithm)
        self.close()
        if self.shared_memory:
            self._store = BroadcastStore()
        self._pool = mp.get_context("fork").Pool(
            processes=self.workers,
            initializer=_pool_worker_init,
            initargs=(model_builder, ctx.dataset, ctx.config,
                      loss_builder, sampler_builder, algo_builder),
        )
        return self

    def submit(self, job: ClientJob) -> JobHandle:
        return self.submit_many([job])[0]

    def submit_many(self, jobs: Sequence[ClientJob]) -> list[JobHandle]:
        """Chunk by ``job_batch`` and ship each chunk as one pool task."""
        if self._pool is None:
            raise RuntimeError("ProcessPoolBackend.submit before bind()")
        chunk = self.job_batch or 1
        handles: list[JobHandle] = []
        for start in range(0, len(jobs), chunk):
            group = [self._stamp(j) for j in jobs[start:start + chunk]]
            if self._store is not None:
                packed = [self._store.pack_job(j) for j in group]
                ship = [j for j, _ in packed]
                refs = [r for _, r in packed]
            else:
                ship, refs = group, [()] * len(group)
            payload = pickle.dumps(tuple(ship), pickle.HIGHEST_PROTOCOL)
            async_res = self._pool.apply_async(
                _pool_worker_run_payload, (payload,)
            )
            self._tasks_submitted += 1
            for idx, (job_s, job_refs) in enumerate(zip(group, refs)):
                handle = self._make_handle(job_s)
                self._inflight[handle] = (async_res, idx)
                if job_refs:
                    self._handle_refs[handle] = job_refs
                handles.append(handle)
            self._jobs_submitted += len(group)
        return handles

    def collect(self, handles=None, block=True):
        out = []
        for h in list(self._inflight) if handles is None else handles:
            try:
                async_res, idx = self._inflight[h]
            except KeyError:
                if block:
                    raise KeyError(
                        f"unknown or already-collected handle {h!r}"
                    ) from None
                continue
            if not block and not async_res.ready():
                continue
            # AsyncResult caches its value, so sibling handles of the same
            # chunk each .get() cheaply and index their own slot
            results = async_res.get()  # re-raises a worker exception here
            del self._inflight[h]
            for ref in self._handle_refs.pop(h, ()):
                self._store.release(ref)
            out.append((h, results[idx]))
        return out

    def transport_stats(self) -> dict:
        """Pool transport counters — non-empty only when a transport
        optimization (batching / shared memory) is actually on."""
        if not self.shared_memory and not self.job_batch:
            return {}
        stats = {
            "transport": "pool",
            "jobs": self._jobs_submitted,
            "pool_tasks": self._tasks_submitted,
            "job_batch": self.job_batch or 1,
        }
        if self._store is not None:
            self._last_shm_stats = self._store.stats()
        if getattr(self, "_last_shm_stats", None):
            stats.update(self._last_shm_stats)  # survives the store's close
        return stats

    def map(self, fn: Callable, items: list) -> list:
        # coarse-grained sweep map: a transient pool, independent of bind()
        return parallel_map(fn, items, workers=self.workers)

    def close(self) -> None:
        if self._pool is not None:
            if self._inflight:
                # a run died with work still in flight: terminate instead of
                # draining, so the fork pool is reaped rather than leaked
                self._pool.terminate()
            else:
                self._pool.close()
            self._pool.join()
            self._pool = None
        if self._store is not None:
            # snapshot counters first: the journal's end record reads
            # transport_stats after the engine closed the backend
            self._last_shm_stats = self._store.stats()
            # after the pool is gone: no worker still maps the segments
            self._store.close()
            self._store = None
        self._inflight = {}
        self._handle_refs = {}


class ThreadBackend(ExecutionBackend):
    """Thread pool with per-thread replicas — no fork, cheap start-up.

    Each worker thread lazily builds its own context and algorithm from the
    bound builders (models are mutable and must not be shared), then runs
    jobs through the same :func:`execute_job` semantics.  Meant for
    smoke/CI runs and platforms without ``fork``; NumPy holds the GIL for
    most of a job, so speed-ups are modest.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._local = threading.local()
        self._builders = None
        self._executor: ThreadPoolExecutor | None = None
        self._inflight: dict[JobHandle, object] = {}

    def bind(self, ctx, algorithm, model_builder=None, algo_builder=None,
             loss_builder=None, sampler_builder=None) -> "ThreadBackend":
        if model_builder is None:
            raise ValueError(
                f"backend {self.name!r} needs a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
            algo_builder = type(algorithm)
        self.close()
        self._builders = (model_builder, ctx.dataset, ctx.config,
                          loss_builder, sampler_builder, algo_builder)
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self

    def _replica(self):
        if not hasattr(self._local, "ctx"):
            model_builder, dataset, config, loss_b, sampler_b, algo_b = self._builders
            self._local.ctx, self._local.algo = build_job_runtime(
                model_builder, dataset, config,
                loss_builder=loss_b, sampler_builder=sampler_b,
                algo_builder=algo_b,
            )
        return self._local.ctx, self._local.algo

    def _run_one(self, job: ClientJob) -> ClientResult:
        ctx, algo = self._replica()
        return execute_client_job(ctx, algo, job)

    def submit(self, job: ClientJob) -> JobHandle:
        if self._executor is None:
            raise RuntimeError("ThreadBackend.submit before bind()")
        handle = self._make_handle(self._stamp(job))
        self._inflight[handle] = self._executor.submit(self._run_one, handle.job)
        return handle

    def collect(self, handles=None, block=True):
        out = []
        for h in list(self._inflight) if handles is None else handles:
            try:
                fut = self._inflight[h]
            except KeyError:
                if block:
                    raise KeyError(
                        f"unknown or already-collected handle {h!r}"
                    ) from None
                continue
            if not block and not fut.done():
                continue
            result = fut.result()  # re-raises a worker exception here
            del self._inflight[h]
            out.append((h, result))
        return out

    def map(self, fn: Callable, items: list) -> list:
        # usable unbound (sweeps): a transient executor preserves order
        if self.workers <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=min(self.workers, len(items))) as ex:
            return list(ex.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            # cancel whatever never started so close() after a failed run
            # does not sit draining a queue nobody will collect
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._inflight = {}


# "remote" registers lazily (module path string resolved at first use):
# repro.net imports the job contract from here, so a class reference would
# be a circular import — and the socket layer should not load unless used
BACKENDS: dict[str, "type | str"] = {
    "serial": SerialBackend,
    "process": ProcessPoolBackend,
    "thread": ThreadBackend,
    "remote": "repro.net.service:RemoteBackend",
}


def _resolve_backend_class(name: str) -> type:
    try:
        cls = BACKENDS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
        ) from None
    if isinstance(cls, str):
        import importlib

        mod_name, _, attr = cls.partition(":")
        cls = getattr(importlib.import_module(mod_name), attr)
        BACKENDS[name.lower()] = cls  # cache the resolved class
    return cls


def make_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    return _resolve_backend_class(name)(workers=workers)


def prepare_engine_backend(
    backend: "ExecutionBackend | str | None",
    workers: int | None,
    algorithm,
    model_builder: Callable | None,
    algo_builder: Callable | None,
) -> tuple[str, "ExecutionBackend | None", Callable]:
    """Shared engine-constructor plumbing for the ``backend`` argument.

    Returns ``(backend_name, instance_or_None, algo_builder)``: an instance
    only when the caller passed one (the engine then must not close it);
    otherwise the engine builds a fresh backend per run from the name.
    Validates the model-builder requirement and emits the replica-config
    warning at construction time, before any compute is spent.
    """
    if isinstance(backend, ExecutionBackend):
        name: str = backend.name
        instance: ExecutionBackend | None = backend
    else:
        name, instance = resolve_backend(backend, workers), None
    if name != "serial":
        if not getattr(algorithm, "parallel_safe", True):
            raise ValueError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)} keeps "
                "client-visible state outside the pack/unpack and "
                "broadcast_attrs contracts; worker replicas would silently "
                "diverge — run it on the serial backend"
            )
        if model_builder is None:
            raise ValueError(
                f"backend {name!r} requires a model_builder for worker replicas"
            )
        if algo_builder is None:
            warn_on_replica_config_mismatch(algorithm)
    return name, instance, algo_builder or type(algorithm)


def resolve_backend(
    name: str | None = None,
    workers: int | None = None,
    env: bool = False,
) -> str:
    """Resolve a backend name.

    Precedence: explicit ``name`` (anything but None/"auto") > the
    ``REPRO_BACKEND`` environment variable (only when ``env=True`` — the
    spec facade and sweeps opt in; direct engine construction does not, so
    tests and libraries keep explicit control) > ``"process"`` when
    ``workers`` asks for more than one > ``"serial"``.

    Inside a daemonic pool worker the implicit choices collapse to
    ``"serial"``: nested process pools cannot fork.
    """
    if name is not None and name != "auto":
        if name.lower() not in BACKENDS:
            raise ValueError(
                f"unknown backend {name!r}; available: {sorted(BACKENDS)}"
            )
        return name.lower()
    daemon = mp.current_process().daemon
    if env:
        env_name = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if env_name:
            if env_name not in BACKENDS:
                raise ValueError(
                    f"REPRO_BACKEND must be one of {sorted(BACKENDS)}, "
                    f"got {env_name!r}"
                )
            # a daemonic pool worker can neither fork a nested pool nor sit
            # listening for federation workers — both collapse to serial
            return (
                "serial"
                if (daemon and env_name in ("process", "remote"))
                else env_name
            )
    if workers is not None and workers > 1:
        return "serial" if daemon else "process"
    return "serial"


def resolve_job_batch(value: int | None = None, env: bool = False) -> int | None:
    """Resolve the transport batch size (jobs per pool task / wire frame).

    Precedence: explicit ``value`` > the ``REPRO_JOB_BATCH`` environment
    variable (only when ``env=True`` — the spec facade opts in, mirroring
    ``REPRO_BACKEND``) > None (per-job transport, the pre-batching
    behavior).  Batch size is a transport knob with zero effect on
    histories, so any value is valid for every engine kind.
    """
    if value is not None:
        value = int(value)
        if value < 1:
            raise ValueError(f"job_batch must be >= 1, got {value}")
        return value
    if env:
        raw = os.environ.get("REPRO_JOB_BATCH", "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOB_BATCH must be an integer >= 1, got {raw!r}"
                ) from None
            if value < 1:
                raise ValueError(
                    f"REPRO_JOB_BATCH must be an integer >= 1, got {raw!r}"
                )
            return value
    return None


def resolve_shared_memory(value: bool | None = None, env: bool = False) -> bool:
    """Resolve the zero-copy broadcast flag for the process pool.

    Precedence: explicit ``value`` > the ``REPRO_SHARED_MEMORY``
    environment variable (only when ``env=True``) > off.  Off by default
    because below a few thousand simulated clients (or with tiny models)
    the segment publish + attach overhead can exceed the pickle saved.
    """
    if value is not None:
        return bool(value)
    if env:
        raw = os.environ.get("REPRO_SHARED_MEMORY", "").strip().lower()
        if raw:
            if raw in ("1", "true", "on", "yes"):
                return True
            if raw in ("0", "false", "off", "no"):
                return False
            raise ValueError(
                "REPRO_SHARED_MEMORY must be boolean-like "
                f"(1/0/true/false/on/off), got {raw!r}"
            )
    return False


def resolve_streaming(streaming: bool | None = None, env: bool = False) -> bool:
    """Resolve the async engines' streaming-dispatch flag.

    Precedence: explicit ``streaming`` (True/False) > the
    ``REPRO_STREAMING`` environment variable (only when ``env=True`` — the
    spec facade opts in, mirroring ``REPRO_BACKEND``; direct engine
    construction does not) > on.  Streaming and lazy-batch dispatch produce
    bit-identical histories — every job is stamped from dispatch-time state
    — so the default is the overlap win; the knob exists for apples-to-
    apples wall-clock comparison and as an escape hatch.  Backends that
    share live state (serial) always keep the lazy-batch path regardless.
    """
    if streaming is not None:
        return bool(streaming)
    if env:
        raw = os.environ.get("REPRO_STREAMING", "").strip().lower()
        if raw:
            if raw in ("1", "true", "on", "yes"):
                return True
            if raw in ("0", "false", "off", "no"):
                return False
            raise ValueError(
                f"REPRO_STREAMING must be boolean-like (1/0/true/false/on/off), "
                f"got {raw!r}"
            )
    return True
