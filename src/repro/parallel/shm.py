"""Zero-copy broadcast arrays for the process pool.

Every :class:`~repro.parallel.backend.ClientJob` carries the broadcast
parameter vector ``x_ref`` (and, for stateful methods under worker-replica
backends, the ``broadcast_state`` arrays).  Shipping those through the pool
pickles the same bytes once per job — at 10k+ simulated clients the
transport, not the compute, dominates wall clock.  This module publishes
each distinct broadcast array *once per version* into POSIX shared memory
and ships jobs carrying a tiny :class:`ArrayRef` descriptor instead; pool
workers attach the segment read-only and hand the mapped array straight to
``client_update``.

Parent side — :class:`BroadcastStore`:

* ``pack_job(job)`` swaps ``x_ref`` / ``broadcast_state`` ndarrays for
  :class:`ArrayRef` descriptors, publishing a new segment only when the
  content actually changed (identity fast-path for the common "same object
  every dispatch" case, content digest for round-stable arrays that are
  re-packed into fresh objects each dispatch).
* Segments are reference-counted per in-flight job and unlinked as soon as
  no outstanding job references a superseded version; ``close()`` unlinks
  everything.  The store is created tracked in the parent, so a crashed
  parent still gets segments reaped by the resource tracker.

Worker side — :func:`resolve_job_refs`:

* Attaches each referenced segment once per worker process (a small LRU
  keyed by segment name), maps it as a read-only ndarray, and returns the
  job with real arrays restored.  Attachment is *untracked* (Python 3.13's
  ``track=False`` where available, else an explicit ``resource_tracker``
  unregister) so worker exit does not unlink segments the parent still
  owns.

POSIX semantics make the lifecycle safe: the parent unlinking a segment
only removes its name — existing worker mappings stay valid until the
worker itself closes them, and pool workers run jobs serially, so evicting
cache entries not referenced by the current job can never invalidate an
array mid-``client_update``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "ArrayRef",
    "BroadcastStore",
    "attach_array",
    "resolve_job_refs",
]


@dataclass(frozen=True)
class ArrayRef:
    """Descriptor for one published broadcast array: what a job ships
    instead of the array itself.

    Attributes:
        name: the shared-memory segment name (attachable from any process).
        shape: array shape to map the segment as.
        dtype: dtype string (``str(arr.dtype)``), losslessly round-trippable
            through ``np.dtype``.
        version: store-wide monotonically increasing publish version —
            stable across jobs that reference the same content, which is
            what lets transports de-duplicate shipping per worker.
        nbytes: payload size, the per-job shipping cost the descriptor
            saves (accounted by the store's ``shm_bytes_saved`` counter).
    """

    name: str
    shape: tuple
    dtype: str
    version: int
    nbytes: int


class _Segment:
    __slots__ = ("shm", "ref", "refcount", "digest", "key")

    def __init__(self, shm, ref, digest, key):
        self.shm = shm
        self.ref = ref
        self.refcount = 0
        self.digest = digest
        self.key = key


class BroadcastStore:
    """Version-bumped publisher of broadcast arrays into shared memory.

    One store per :class:`~repro.parallel.backend.ProcessPoolBackend`
    binding; the backend calls :meth:`pack_job` at submit, :meth:`release`
    at collect, and :meth:`close` (unlink-on-close) from its own ``close``.

    Args:
        min_bytes: arrays smaller than this ship inline — below a few KiB
            the descriptor + attach overhead exceeds the pickle saved.
    """

    def __init__(self, min_bytes: int = 0) -> None:
        self.min_bytes = int(min_bytes)
        # by segment name; insertion order == publish order
        self._segments: "OrderedDict[str, _Segment]" = OrderedDict()
        # current anchor per logical key: (array object, its ArrayRef)
        self._current: dict[str, tuple[np.ndarray, ArrayRef]] = {}
        self._next_version = 0
        self._versions_published = 0
        self._bytes_published = 0
        self._bytes_saved = 0
        self._jobs_packed = 0
        self._closed = False

    # -- publishing ----------------------------------------------------------
    def publish(self, key: str, arr) -> ArrayRef | None:
        """Publish ``arr`` under logical ``key``; None when it ships inline.

        Same object as last time → same ref (no hashing).  New object with
        identical bytes (round-stable re-packs) → same ref, anchor updated.
        Changed content → new version in a fresh segment; superseded
        segments are unlinked once no in-flight job references them.
        """
        if self._closed:
            raise RuntimeError("BroadcastStore.publish after close()")
        if (
            not isinstance(arr, np.ndarray)
            or arr.nbytes == 0
            or arr.nbytes < self.min_bytes
        ):
            return None
        cur = self._current.get(key)
        if cur is not None and cur[0] is arr:
            return cur[1]
        data = np.ascontiguousarray(arr)
        digest = hashlib.sha1(data.tobytes()).digest()
        if cur is not None:
            ref = cur[1]
            if (
                ref.shape == tuple(arr.shape)
                and ref.dtype == str(arr.dtype)
                and self._segments[ref.name].digest == digest
            ):
                self._current[key] = (arr, ref)  # re-anchor identity fast path
                return ref
        shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        view[...] = data
        del view  # release the buffer export so close()/unlink() can succeed
        version = self._next_version
        self._next_version += 1
        ref = ArrayRef(shm.name, tuple(arr.shape), str(arr.dtype), version,
                       int(arr.nbytes))
        self._segments[shm.name] = _Segment(shm, ref, digest, key)
        self._current[key] = (arr, ref)
        self._versions_published += 1
        self._bytes_published += int(arr.nbytes)
        self._gc()
        return ref

    def pack_job(self, job):
        """Swap a job's broadcast arrays for refs; returns ``(job, refs)``.

        Every returned ref is acquired (refcount +1); the backend must
        :meth:`release` each once the job's result is collected (or the
        job is abandoned), so superseded segments can be unlinked.
        """
        refs: list[ArrayRef] = []
        updates: dict = {}
        r = self.publish("x", job.x_ref)
        if r is not None:
            self._acquire(r)
            refs.append(r)
            updates["x_ref"] = r
        if job.broadcast_state:
            packed = {}
            changed = False
            for k, v in job.broadcast_state.items():
                rr = self.publish(f"bstate.{k}", v)
                if rr is not None:
                    self._acquire(rr)
                    refs.append(rr)
                    packed[k] = rr
                    changed = True
                else:
                    packed[k] = v
            if changed:
                updates["broadcast_state"] = packed
        if updates:
            job = replace(job, **updates)
            self._jobs_packed += 1
            self._bytes_saved += sum(r.nbytes for r in refs)
        return job, tuple(refs)

    def _acquire(self, ref: ArrayRef) -> None:
        self._segments[ref.name].refcount += 1

    def release(self, ref: ArrayRef) -> None:
        seg = self._segments.get(ref.name)
        if seg is not None:
            seg.refcount -= 1
            self._gc()

    def _gc(self) -> None:
        """Unlink superseded segments no in-flight job references."""
        live = {ref.name for _, ref in self._current.values()}
        for name in [
            n for n, s in self._segments.items()
            if s.refcount <= 0 and n not in live
        ]:
            self._unlink(self._segments.pop(name))

    @staticmethod
    def _unlink(seg: _Segment) -> None:
        seg.shm.close()
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    # -- observability -------------------------------------------------------
    def stats(self) -> dict:
        """Cumulative counters (folded into ``transport_stats``)."""
        return {
            "shm_versions": self._versions_published,
            "shm_segments_live": len(self._segments),
            "shm_bytes_published": self._bytes_published,
            "shm_bytes_saved": self._bytes_saved,
            "shm_jobs_packed": self._jobs_packed,
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Unlink every segment.  Safe to call twice; the store is dead after."""
        for seg in self._segments.values():
            self._unlink(seg)
        self._segments = OrderedDict()
        self._current = {}
        self._closed = True

    def __enter__(self) -> "BroadcastStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- worker side -------------------------------------------------------------
#: per-process attach cache: segment name -> (SharedMemory, read-only array)
_ATTACHED: "OrderedDict[str, tuple[shared_memory.SharedMemory, np.ndarray]]"
_ATTACHED = OrderedDict()
#: how many mapped segments a worker keeps around; broadcast versions are
#: long-lived so a handful covers the steady state
ATTACH_CACHE_SEGMENTS = 16


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach without resource-tracker ownership (the parent owns unlink).

    Python < 3.13 has no ``track=False`` and registers attachments with the
    resource tracker exactly like creations, which is wrong two ways here:
    a worker-local tracker would *unlink* the parent's live segments when
    the worker exits, and a fork-shared tracker would lose the parent's
    registration if the worker unregistered after attaching.  Suppressing
    the register call during attach sidesteps both (the standard pre-3.13
    workaround); pool workers are single-threaded, so the swap is safe.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_array(ref: ArrayRef) -> np.ndarray:
    """Map ``ref``'s segment as a read-only ndarray (cached per process)."""
    entry = _ATTACHED.get(ref.name)
    if entry is None:
        shm = _attach_untracked(ref.name)
        arr = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
        arr.setflags(write=False)
        _ATTACHED[ref.name] = entry = (shm, arr)
    else:
        _ATTACHED.move_to_end(ref.name)
    return entry[1]


def _evict_attached(keep: set) -> None:
    while len(_ATTACHED) > ATTACH_CACHE_SEGMENTS:
        victim = next((n for n in _ATTACHED if n not in keep), None)
        if victim is None:
            break
        shm, arr = _ATTACHED.pop(victim)
        del arr
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a caller kept a view alive
            pass  # mapping lives until process exit; tracking is dropped


def resolve_job_refs(job):
    """Restore a job's :class:`ArrayRef` fields to real (read-only) arrays.

    Called in the pool worker before :func:`~repro.parallel.backend.
    execute_client_job`; a job without refs passes through untouched.
    """
    updates: dict = {}
    keep: set = set()
    if isinstance(job.x_ref, ArrayRef):
        keep.add(job.x_ref.name)
        updates["x_ref"] = job.x_ref
    bstate = job.broadcast_state
    has_bstate_refs = bstate is not None and any(
        isinstance(v, ArrayRef) for v in bstate.values()
    )
    if has_bstate_refs:
        keep.update(v.name for v in bstate.values() if isinstance(v, ArrayRef))
    if not keep:
        return job
    if "x_ref" in updates:
        updates["x_ref"] = attach_array(updates["x_ref"])
    if has_bstate_refs:
        updates["broadcast_state"] = {
            k: attach_array(v) if isinstance(v, ArrayRef) else v
            for k, v in bstate.items()
        }
    _evict_attached(keep)
    return replace(job, **updates)
