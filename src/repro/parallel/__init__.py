"""Parallel execution substrate mirroring the paper's multi-GPU setup.

:mod:`repro.parallel.backend` is the pluggable execution layer every engine
speaks — the :class:`ClientJob` -> :class:`ClientResult` contract, handed
over through the streaming ``submit(job) -> JobHandle`` /
``collect(handles)`` interface (``submit_many`` batches the hand-off,
``run_jobs`` remains as a batch shim); :mod:`repro.parallel.shm` publishes
broadcast arrays into shared memory so pool jobs ship descriptors instead
of payloads; :mod:`repro.parallel.pool` keeps the lower-level fork-pool
primitives (:func:`parallel_map`, the per-round
:class:`ParallelClientRunner`).
"""

from repro.parallel.backend import (
    BACKENDS,
    ClientJob,
    ClientResult,
    ExecutionBackend,
    JobHandle,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    build_job_runtime,
    execute_client_job,
    execute_job,
    make_backend,
    resolve_backend,
    resolve_job_batch,
    resolve_shared_memory,
    resolve_streaming,
)
from repro.parallel.pool import ParallelClientRunner, parallel_map, resolve_workers
from repro.parallel.shm import ArrayRef, BroadcastStore, resolve_job_refs

__all__ = [
    "ClientJob",
    "ClientResult",
    "JobHandle",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadBackend",
    "BACKENDS",
    "ArrayRef",
    "BroadcastStore",
    "resolve_job_refs",
    "make_backend",
    "resolve_backend",
    "resolve_job_batch",
    "resolve_shared_memory",
    "resolve_streaming",
    "execute_job",
    "execute_client_job",
    "build_job_runtime",
    "ParallelClientRunner",
    "parallel_map",
    "resolve_workers",
]
