"""Parallel execution substrate mirroring the paper's multi-GPU setup.

:mod:`repro.parallel.backend` is the pluggable execution layer every engine
speaks (the :class:`ClientJob` -> :class:`ClientResult` contract);
:mod:`repro.parallel.pool` keeps the lower-level fork-pool primitives
(:func:`parallel_map`, the per-round :class:`ParallelClientRunner`).
"""

from repro.parallel.backend import (
    BACKENDS,
    ClientJob,
    ClientResult,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    execute_job,
    make_backend,
    resolve_backend,
)
from repro.parallel.pool import ParallelClientRunner, parallel_map, resolve_workers

__all__ = [
    "ClientJob",
    "ClientResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadBackend",
    "BACKENDS",
    "make_backend",
    "resolve_backend",
    "execute_job",
    "ParallelClientRunner",
    "parallel_map",
    "resolve_workers",
]
