"""Parallel execution substrate mirroring the paper's multi-GPU setup."""

from repro.parallel.pool import ParallelClientRunner, parallel_map, resolve_workers

__all__ = ["ParallelClientRunner", "parallel_map", "resolve_workers"]
