"""Process-pool client execution.

FL client updates within a round are embarrassingly parallel — the paper's
4-GPU workstation trains clients concurrently; we mirror that with a
fork-based process pool.  Each worker process lazily builds its own model
replica (models are not picklable across processes cheaply, and must not be
shared), so the pool amortises construction across rounds.

Determinism: client RNG streams are derived from ``(seed, round, client)``
(see :meth:`repro.simulation.SimulationContext.client_rng`), so results are
identical regardless of scheduling order or worker count — verified by
``tests/test_parallel.py``.

Note: this runner ships only broadcast attributes; per-client state and
model buffers do not travel with its jobs, so it remains limited to
stateless-per-client algorithms.  The engines no longer use it — they speak
the richer :class:`repro.parallel.backend.ClientJob` contract through
:class:`~repro.parallel.backend.ProcessPoolBackend`, which carries packed
client state and buffer dicts and therefore runs SCAFFOLD/FedDyn and
BatchNorm models bit-identically to serial execution.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable

import numpy as np

from repro.data.registry import FederatedDataset
from repro.simulation.config import FLConfig
from repro.simulation.context import SimulationContext
from repro.simulation.engine import attach_train_loss

__all__ = ["ParallelClientRunner", "parallel_map", "resolve_workers"]


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit arg > ``REPRO_MAX_WORKERS`` > default.

    The default remains ``min(cpu_count, 8)``; the env var lets deployments
    raise or lower the cap fleet-wide without touching call sites.
    """
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"REPRO_MAX_WORKERS must be an integer, got {env!r}") from None
        if value < 1:
            raise ValueError(f"REPRO_MAX_WORKERS must be >= 1, got {value}")
        return value
    return min(os.cpu_count() or 1, 8)

# worker-global cache: (context, algorithm) built once per process
_WORKER_STATE: dict = {}


def _worker_init(model_builder, dataset, config, loss_builder, sampler_builder, algo_builder):
    ctx = SimulationContext(
        model_builder(),
        dataset,
        config,
        loss_builder=loss_builder,
        sampler_builder=sampler_builder,
    )
    algo = algo_builder()
    algo.setup(ctx)
    _WORKER_STATE["ctx"] = ctx
    _WORKER_STATE["algo"] = algo
    # BatchNorm-style buffers: snapshot the replica's initial buffers so every
    # job starts from the same state regardless of job order or worker count
    _WORKER_STATE["buf0"] = ctx.model.get_buffers(copy=True) if ctx.model.buffers else None


def _worker_run(args):
    round_idx, client_id, x_global, algo_state = args
    ctx = _WORKER_STATE["ctx"]
    algo = _WORKER_STATE["algo"]
    if _WORKER_STATE["buf0"] is not None:
        ctx.model.set_buffers(_WORKER_STATE["buf0"])
    if algo_state is not None:
        for k, v in algo_state.items():
            setattr(algo, k, v)
    update = algo.client_update(ctx, round_idx, client_id, x_global)
    return attach_train_loss(algo, update)


class ParallelClientRunner:
    """Run one round's client updates across worker processes.

    Args:
        model_builder: zero-arg callable creating a model replica.
        dataset / config: the shared problem definition.
        algo_builder: zero-arg callable creating the algorithm (workers need
            their own instance; per-round broadcast state is shipped via
            ``broadcast_state``).
        loss_builder / sampler_builder: per-client factories.
        workers: process count (default: ``REPRO_MAX_WORKERS`` env var,
            falling back to CPU count capped at 8).
    """

    def __init__(
        self,
        model_builder: Callable,
        dataset: FederatedDataset,
        config: FLConfig,
        algo_builder: Callable,
        loss_builder=None,
        sampler_builder=None,
        workers: int | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        ctx_builder = (
            model_builder,
            dataset,
            config,
            loss_builder,
            sampler_builder,
            algo_builder,
        )
        self._pool = mp.get_context("fork").Pool(
            processes=self.workers, initializer=_worker_init, initargs=ctx_builder
        )

    def run_round(
        self,
        round_idx: int,
        selected: np.ndarray,
        x_global: np.ndarray,
        broadcast_state: dict | None = None,
    ) -> list:
        """Execute the selected clients' updates in parallel.

        Args:
            broadcast_state: attribute dict applied to each worker's
                algorithm before the update (e.g. FedCM's ``_delta`` or
                FedWCM's ``momentum``).
        """
        jobs = [(round_idx, int(k), x_global, broadcast_state) for k in selected]
        return self._pool.map(_worker_run, jobs)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ParallelClientRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _indexed_apply(args):
    i, fn, item = args
    return i, fn(item)


def parallel_map(fn: Callable, items: list, workers: int | None = None) -> list:
    """Order-preserving multiprocessing map with a fork pool.

    For coarse-grained jobs (full federated runs in a parameter sweep —
    the benchmark harnesses use this to mirror the paper's multi-GPU grid).
    Internally uses ``imap_unordered`` so uneven jobs load-balance across
    workers, then restores input order deterministically by index.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    out = [None] * len(items)
    jobs = [(i, fn, item) for i, item in enumerate(items)]
    with mp.get_context("fork").Pool(processes=min(workers, len(items))) as pool:
        for i, result in pool.imap_unordered(_indexed_apply, jobs):
            out[i] = result
    return out
