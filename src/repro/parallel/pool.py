"""Process-pool client execution.

FL client updates within a round are embarrassingly parallel — the paper's
4-GPU workstation trains clients concurrently; we mirror that with a
fork-based process pool.  Each worker process lazily builds its own model
replica (models are not picklable across processes cheaply, and must not be
shared), so the pool amortises construction across rounds.

Determinism: client RNG streams are derived from ``(seed, round, client)``
(see :meth:`repro.simulation.SimulationContext.client_rng`), so results are
identical regardless of scheduling order or worker count — verified by
``tests/test_parallel.py``.

Note: only stateless-per-client algorithms (FedAvg/FedProx/FedCM/FedWCM
families, i.e. those whose ``client_update`` reads only broadcast state) are
supported; stateful-per-client methods (SCAFFOLD, FedDyn) must run serially.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable

import numpy as np

from repro.data.registry import FederatedDataset
from repro.simulation.config import FLConfig
from repro.simulation.context import SimulationContext

__all__ = ["ParallelClientRunner", "parallel_map"]

# worker-global cache: (context, algorithm) built once per process
_WORKER_STATE: dict = {}


def _worker_init(model_builder, dataset, config, loss_builder, sampler_builder, algo_builder):
    ctx = SimulationContext(
        model_builder(),
        dataset,
        config,
        loss_builder=loss_builder,
        sampler_builder=sampler_builder,
    )
    algo = algo_builder()
    algo.setup(ctx)
    _WORKER_STATE["ctx"] = ctx
    _WORKER_STATE["algo"] = algo


def _worker_run(args):
    round_idx, client_id, x_global, algo_state = args
    ctx = _WORKER_STATE["ctx"]
    algo = _WORKER_STATE["algo"]
    if algo_state is not None:
        for k, v in algo_state.items():
            setattr(algo, k, v)
    return algo.client_update(ctx, round_idx, client_id, x_global)


class ParallelClientRunner:
    """Run one round's client updates across worker processes.

    Args:
        model_builder: zero-arg callable creating a model replica.
        dataset / config: the shared problem definition.
        algo_builder: zero-arg callable creating the algorithm (workers need
            their own instance; per-round broadcast state is shipped via
            ``broadcast_state``).
        loss_builder / sampler_builder: per-client factories.
        workers: process count (default: CPU count capped at 8).
    """

    def __init__(
        self,
        model_builder: Callable,
        dataset: FederatedDataset,
        config: FLConfig,
        algo_builder: Callable,
        loss_builder=None,
        sampler_builder=None,
        workers: int | None = None,
    ) -> None:
        self.workers = workers or min(os.cpu_count() or 1, 8)
        ctx_builder = (
            model_builder,
            dataset,
            config,
            loss_builder,
            sampler_builder,
            algo_builder,
        )
        self._pool = mp.get_context("fork").Pool(
            processes=self.workers, initializer=_worker_init, initargs=ctx_builder
        )

    def run_round(
        self,
        round_idx: int,
        selected: np.ndarray,
        x_global: np.ndarray,
        broadcast_state: dict | None = None,
    ) -> list:
        """Execute the selected clients' updates in parallel.

        Args:
            broadcast_state: attribute dict applied to each worker's
                algorithm before the update (e.g. FedCM's ``_delta`` or
                FedWCM's ``momentum``).
        """
        jobs = [(round_idx, int(k), x_global, broadcast_state) for k in selected]
        return self._pool.map(_worker_run, jobs)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ParallelClientRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parallel_map(fn: Callable, items: list, workers: int | None = None) -> list:
    """Order-preserving multiprocessing map with a fork pool.

    For coarse-grained jobs (full federated runs in a parameter sweep —
    the benchmark harnesses use this to mirror the paper's multi-GPU grid).
    """
    workers = workers or min(os.cpu_count() or 1, 8)
    if workers <= 1 or len(items) <= 1:
        return [fn(it) for it in items]
    with mp.get_context("fork").Pool(processes=min(workers, len(items))) as pool:
        return pool.map(fn, items)
