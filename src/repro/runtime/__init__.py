"""Event-driven FL runtime: one event core, every engine kind.

* :mod:`repro.runtime.events` — the single :class:`EventCore` loop (typed
  :class:`Dispatch` / :class:`Completion` / :class:`DeadlineTick` events, a
  per-client :class:`ClientStateStore`) and the dispatch policies that turn
  it into each engine kind: :class:`BarrierPolicy` (synchronous rounds),
  :class:`DeadlinePolicy` (semi-sync deadlines with ``downweight`` or true
  ``trickle`` late handling), :class:`AsyncPolicy` (continuous
  staleness-aware dispatch).
* :mod:`repro.runtime.clock` — deterministic virtual clock and pluggable
  client latency models (constant / lognormal / Pareto / dropout-retry).
* :mod:`repro.runtime.async_engine` — :class:`AsyncFederatedSimulation`,
  the staleness-aware engine facade driving FedAsync / FedBuff (and, via
  :class:`~repro.algorithms.AsyncAdapter`, any method's local rule —
  including stateful SCAFFOLD/FedDyn).
* :mod:`repro.runtime.semisync` — :class:`SemiSyncFederatedSimulation`,
  deadline-based rounds wrapping any synchronous algorithm (and, with
  ``deadline=None``, the straggler-blocked synchronous timing baseline).
* :mod:`repro.runtime.scheduling` — adaptive :class:`DeadlineController` /
  :class:`ConcurrencyController` and time-aware cohort samplers
  (:class:`FastFirstSampler`, :class:`LongIdleSampler`,
  :class:`UtilitySampler`) usable per-round (semi-sync) and per-dispatch
  (async ``pick_next``), plus comm-profile resolution for latency pricing.

Histories are built from :class:`repro.simulation.TimedRoundRecord`, so
all existing :class:`~repro.simulation.History` / :mod:`repro.viz` tooling
works unchanged — plus time-to-accuracy via ``History.time_to_accuracy``.
"""

from repro.runtime.events import (
    BUFFER_EMA_MODES,
    AsyncPolicy,
    BarrierPolicy,
    ClientStateStore,
    Completion,
    DeadlinePolicy,
    DeadlineTick,
    Dispatch,
    EventCore,
    LATE_POLICIES,
)
from repro.runtime.clock import (
    ConstantLatency,
    DropoutRetryLatency,
    Event,
    LATENCY_MODELS,
    LatencyModel,
    LognormalLatency,
    ParetoLatency,
    VirtualClock,
    make_latency_model,
)
from repro.runtime.async_engine import AsyncFederatedSimulation
from repro.runtime.fastpath import IdleTracker, resolve_fast_path
from repro.runtime.scheduling import (
    ConcurrencyController,
    DeadlineController,
    FastFirstSampler,
    LongIdleSampler,
    SAMPLERS,
    TimeAwareSampler,
    UtilitySampler,
    make_sampler,
    resolve_auto_comm,
)
from repro.runtime.semisync import SemiSyncFederatedSimulation
from repro.simulation.engine import TimedRoundRecord

__all__ = [
    "EventCore",
    "Dispatch",
    "Completion",
    "DeadlineTick",
    "ClientStateStore",
    "BarrierPolicy",
    "DeadlinePolicy",
    "AsyncPolicy",
    "LATE_POLICIES",
    "BUFFER_EMA_MODES",
    "DeadlineController",
    "ConcurrencyController",
    "TimeAwareSampler",
    "FastFirstSampler",
    "LongIdleSampler",
    "UtilitySampler",
    "SAMPLERS",
    "make_sampler",
    "resolve_auto_comm",
    "VirtualClock",
    "Event",
    "LatencyModel",
    "ConstantLatency",
    "LognormalLatency",
    "ParetoLatency",
    "DropoutRetryLatency",
    "LATENCY_MODELS",
    "make_latency_model",
    "IdleTracker",
    "resolve_fast_path",
    "AsyncFederatedSimulation",
    "SemiSyncFederatedSimulation",
    "TimedRoundRecord",
]
