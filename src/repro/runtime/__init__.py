"""Event-driven asynchronous FL runtime.

* :mod:`repro.runtime.clock` — deterministic virtual clock and pluggable
  client latency models (constant / lognormal / Pareto / dropout-retry).
* :mod:`repro.runtime.async_engine` — :class:`AsyncFederatedSimulation`,
  the staleness-aware event loop driving FedAsync / FedBuff.
* :mod:`repro.runtime.semisync` — :class:`SemiSyncFederatedSimulation`,
  deadline-based rounds wrapping any synchronous algorithm (and, with
  ``deadline=None``, the straggler-blocked synchronous timing baseline).
* :mod:`repro.runtime.scheduling` — adaptive :class:`DeadlineController` /
  :class:`ConcurrencyController` and time-aware cohort samplers
  (:class:`FastFirstSampler`, :class:`LongIdleSampler`,
  :class:`UtilitySampler`), plus comm-profile resolution for latency
  pricing.

Histories are built from :class:`repro.simulation.TimedRoundRecord`, so
all existing :class:`~repro.simulation.History` / :mod:`repro.viz` tooling
works unchanged — plus time-to-accuracy via ``History.time_to_accuracy``.
"""

from repro.runtime.clock import (
    ConstantLatency,
    DropoutRetryLatency,
    Event,
    LATENCY_MODELS,
    LatencyModel,
    LognormalLatency,
    ParetoLatency,
    VirtualClock,
    make_latency_model,
)
from repro.runtime.async_engine import AsyncFederatedSimulation
from repro.runtime.scheduling import (
    ConcurrencyController,
    DeadlineController,
    FastFirstSampler,
    LongIdleSampler,
    SAMPLERS,
    TimeAwareSampler,
    UtilitySampler,
    make_sampler,
    resolve_auto_comm,
)
from repro.runtime.semisync import SemiSyncFederatedSimulation
from repro.simulation.engine import TimedRoundRecord

__all__ = [
    "DeadlineController",
    "ConcurrencyController",
    "TimeAwareSampler",
    "FastFirstSampler",
    "LongIdleSampler",
    "UtilitySampler",
    "SAMPLERS",
    "make_sampler",
    "resolve_auto_comm",
    "VirtualClock",
    "Event",
    "LatencyModel",
    "ConstantLatency",
    "LognormalLatency",
    "ParetoLatency",
    "DropoutRetryLatency",
    "LATENCY_MODELS",
    "make_latency_model",
    "AsyncFederatedSimulation",
    "SemiSyncFederatedSimulation",
    "TimedRoundRecord",
]
