"""Heterogeneity-aware scheduling: adaptive controllers and time-aware samplers.

PR 1 exposed *time* as a first-class simulation output, but every knob that
determines time-to-accuracy — the semi-sync deadline, the async concurrency,
the cohort choice — was fixed by hand.  This module closes the loop:

* :class:`DeadlineController` — tunes the semi-sync round deadline with a
  multiplicative control law so the observed drop-rate converges to a
  target budget (FedBuff-style staleness control, applied to deadlines).
* :class:`ConcurrencyController` — additive-increase/multiplicative-decrease
  (AIMD, the TCP congestion-control rule) on the async engine's max
  in-flight clients, targeting a mean-staleness budget.
* Time-aware cohort samplers built on the :mod:`repro.simulation.sampling`
  protocol, extended with a ``bind``/``observe`` handshake so the engine can
  feed back priced latencies:

  - :class:`FastFirstSampler` — oversample fast devices (power-weighted);
  - :class:`LongIdleSampler` — deterministic longest-idle-first rotation;
  - :class:`UtilitySampler` — Oort-style utility blending a statistical
    score (data size, optionally scarcity-weighted) with a speed term that
    penalises clients expected to overshoot a preferred round duration.

Everything is deterministic under a seed: controllers are pure functions of
their observation sequence, and samplers draw only from the context's
per-round RNG streams.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.scoring import client_scores
from repro.runtime.clock import LatencyModel
from repro.simulation.communication import comm_profile
from repro.simulation.context import SimulationContext
from repro.simulation.sampling import RoundRobinSampler, ScoreBiasedSampler, UniformSampler
from repro.utils.rng import keyed_rng

__all__ = [
    "DeadlineController",
    "ConcurrencyController",
    "TimeAwareSampler",
    "FastFirstSampler",
    "LongIdleSampler",
    "UtilitySampler",
    "SAMPLERS",
    "make_sampler",
    "resolve_auto_comm",
]


def resolve_auto_comm(latency_model: LatencyModel, algorithm) -> None:
    """Resolve a ``comm_method="auto"`` sentinel to the algorithm's profile.

    Unknown algorithm names (e.g. user plugins) fall back to the generic
    one-down/one-up estimate rather than failing the run.  Dropout-retry
    wrappers propagate the resolved method to their inner per-attempt model
    at bind time.
    """
    if latency_model.comm_method != "auto":
        return
    name = getattr(algorithm, "name", type(algorithm).__name__)
    try:
        comm_profile(name)
    except KeyError:
        latency_model.comm_method = None
    else:
        latency_model.comm_method = name
    inner = getattr(latency_model, "inner", None)
    if inner is not None and inner.comm_method == "auto":
        inner.comm_method = latency_model.comm_method


class DeadlineController:
    """Tune the semi-sync deadline to hit a target drop-rate budget.

    The controller starts from a quantile of the first observed cohort's
    priced latencies and then applies a multiplicative-ratio update after
    every round::

        deadline *= exp(gain * (observed_drop_rate - target_drop_rate))

    Dropping more clients than budgeted relaxes the deadline; dropping fewer
    tightens it — the fixed point is a deadline whose drop-rate equals the
    budget, reached geometrically for any stationary latency distribution.

    Args:
        target_drop_rate: budgeted fraction of the cohort allowed to miss
            the deadline (0 = wait for everyone, ~0.3 cuts the straggler
            tail).
        initial: starting deadline in virtual seconds; None derives it from
            the first round's latencies at the ``1 - target_drop_rate``
            quantile (already near the fixed point).
        gain: control gain; larger adapts faster but oscillates more.
        min_deadline / max_deadline: clamp bounds for the tuned deadline.
    """

    def __init__(
        self,
        target_drop_rate: float = 0.3,
        initial: float | None = None,
        gain: float = 0.5,
        min_deadline: float = 1e-9,
        max_deadline: float = math.inf,
    ) -> None:
        if not 0.0 <= target_drop_rate < 1.0:
            raise ValueError(f"target_drop_rate must be in [0, 1), got {target_drop_rate}")
        if initial is not None and initial <= 0:
            raise ValueError(f"initial deadline must be > 0, got {initial}")
        if gain <= 0:
            raise ValueError(f"gain must be > 0, got {gain}")
        if not 0 < min_deadline <= max_deadline:
            raise ValueError("need 0 < min_deadline <= max_deadline")
        self.target_drop_rate = float(target_drop_rate)
        self.gain = float(gain)
        self.min_deadline = float(min_deadline)
        self.max_deadline = float(max_deadline)
        self._initial = float(initial) if initial is not None else None
        self.deadline = self._initial
        self.history: list[float] = []

    def reset(self) -> None:
        """Forget adapted state so a re-run reproduces the first run."""
        self.deadline = self._initial
        self.history.clear()

    def start(self, latencies: np.ndarray) -> float:
        """Seed the deadline from a cohort's priced latencies (first round)."""
        if self.deadline is None:
            q = float(np.quantile(np.asarray(latencies), 1.0 - self.target_drop_rate))
            self.deadline = float(np.clip(q, self.min_deadline, self.max_deadline))
        return self.deadline

    def observe(self, n_late: int, n_selected: int) -> float:
        """Feed one round's outcome; returns the next round's deadline."""
        if self.deadline is None:
            raise RuntimeError("DeadlineController.start() must run before observe()")
        if n_selected < 1 or n_late < 0 or n_late > n_selected:
            raise ValueError(f"need 0 <= n_late <= n_selected, got {n_late}/{n_selected}")
        drop_rate = n_late / n_selected
        self.history.append(drop_rate)
        self.deadline = float(
            np.clip(
                self.deadline * math.exp(self.gain * (drop_rate - self.target_drop_rate)),
                self.min_deadline,
                self.max_deadline,
            )
        )
        return self.deadline


class ConcurrencyController:
    """AIMD control of the async engine's max in-flight clients.

    Mean staleness in an async run grows with the number of concurrent
    clients (every in-flight peer that completes first bumps the model
    version).  This controller probes for the highest concurrency whose mean
    staleness stays within budget, using TCP's additive-increase /
    multiplicative-decrease rule over observation windows:

    * window mean within budget  -> ``limit += increase`` (probe upward);
    * window mean over budget    -> ``limit = floor(limit * decrease)``.

    Args:
        staleness_budget: target mean staleness per observation window.
        limit: initial max in-flight clients; None lets the engine seed it
            with its configured concurrency.
        window: observations per control decision; None lets the engine use
            its evaluation window (one synchronous round's worth of work).
        increase: additive probe step.
        decrease: multiplicative back-off factor in (0, 1).
        min_limit / max_limit: clamp bounds for the tuned limit.
    """

    def __init__(
        self,
        staleness_budget: float = 2.0,
        limit: int | None = None,
        window: int | None = None,
        increase: int = 1,
        decrease: float = 0.5,
        min_limit: int = 1,
        max_limit: int | None = None,
    ) -> None:
        if staleness_budget < 0:
            raise ValueError(f"staleness_budget must be >= 0, got {staleness_budget}")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if increase < 1:
            raise ValueError(f"increase must be >= 1, got {increase}")
        if not 0.0 < decrease < 1.0:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        if min_limit < 1 or (max_limit is not None and max_limit < min_limit):
            raise ValueError("need 1 <= min_limit <= max_limit")
        self.staleness_budget = float(staleness_budget)
        self.limit = limit
        self.window = window
        self.increase = int(increase)
        self.decrease = float(decrease)
        self.min_limit = int(min_limit)
        self.max_limit = max_limit
        self._pending: list[float] = []
        self._seeded_limit: int | None = None
        self.history: list[int] = []

    def seed(self, limit: int, window: int, max_limit: int) -> None:
        """Fill engine-derived defaults for unset knobs (called once).

        The default probe ceiling is ``max(max_limit, limit)`` — an engine
        concurrency above the client count (deliberate oversubscription) is
        honoured, never silently clipped; an explicit ``max_limit`` from the
        constructor always wins.
        """
        if self.window is None:
            self.window = int(window)
        if self.max_limit is None:
            self.max_limit = max(int(max_limit), int(limit), self.min_limit)
        if self.limit is None:
            self.limit = int(limit)
        self.limit = int(np.clip(self.limit, self.min_limit, self.max_limit))
        self._seeded_limit = self.limit

    def reset(self) -> None:
        """Forget adapted state so a re-run reproduces the first run."""
        if self._seeded_limit is not None:
            self.limit = self._seeded_limit
        self._pending.clear()
        self.history.clear()

    def observe(self, staleness: float) -> int:
        """Feed one applied update's staleness; returns the current limit."""
        if self.limit is None or self.window is None:
            raise RuntimeError("ConcurrencyController.seed() must run before observe()")
        self._pending.append(float(staleness))
        if len(self._pending) >= self.window:
            mean = float(np.mean(self._pending))
            self._pending.clear()
            if mean > self.staleness_budget:
                self.limit = int(self.limit * self.decrease)
            else:
                self.limit = self.limit + self.increase
            hi = self.max_limit if self.max_limit is not None else self.limit
            self.limit = int(np.clip(self.limit, self.min_limit, hi))
            self.history.append(self.limit)
        return self.limit


class TimeAwareSampler:
    """Base for cohort samplers that price clients by expected latency.

    The engine calls :meth:`bind` once (handing over the context and its
    bound latency model), then :meth:`observe` with every priced completion;
    subclasses read :meth:`expected_seconds` — an exponential moving average
    of observations, falling back to the latency model's deterministic base
    cost for clients never observed — when drawing a cohort.

    Two sampling interfaces share that state:

    * *per-round* — ``sampler(ctx, round_idx)`` draws a whole cohort (the
      semi-synchronous engine);
    * *per-dispatch* — :meth:`pick_next` chooses one replacement client
      among the currently idle set (the asynchronous engine), weighted by
      :meth:`dispatch_weights` from a dedicated per-dispatch RNG stream so
      runs stay pure functions of the seed.
    """

    def __init__(self, ema: float = 0.3) -> None:
        if not 0.0 < ema <= 1.0:
            raise ValueError(f"ema must be in (0, 1], got {ema}")
        self.ema = float(ema)
        self._prior: np.ndarray | None = None
        self._observed: np.ndarray | None = None
        self._seen: np.ndarray | None = None
        self._seed = 0
        self._dispatch_count = 0
        self._last_dispatch: np.ndarray | None = None
        # monotone estimate version: bumped by every observe()/observe_loss()
        # so per-dispatch weight caches know when to rebuild (incremental
        # weights instead of an O(N) recompute per dispatch)
        self._estimate_version = 0

    def bind(self, ctx: SimulationContext, latency_model: LatencyModel) -> "TimeAwareSampler":
        k = ctx.num_clients
        # prior = the priced first dispatch: deterministic under the seed and
        # carries persistent device speed, unlike the data-size-only base cost
        # (sample_many batches the draws; bit-equal to the per-client loop)
        self._prior = latency_model.sample_many(
            np.arange(k, dtype=np.int64), np.zeros(k, dtype=np.int64)
        )
        self._observed = self._prior.copy()
        self._seen = np.zeros(k, dtype=bool)
        self._seed = ctx.config.seed
        self._dispatch_count = 0
        self._last_dispatch = np.full(k, -np.inf)
        self._bump_estimates()
        return self

    def reset(self) -> None:
        """Forget observations so a re-run reproduces the first run."""
        if self._prior is not None:
            self._observed = self._prior.copy()
            self._seen[:] = False
            self._dispatch_count = 0
            self._last_dispatch[:] = -np.inf
            self._bump_estimates()

    def _bump_estimates(self) -> None:
        # getattr: sampler instances can ride in snapshots pickled before
        # the version counter existed
        self._estimate_version = getattr(self, "_estimate_version", 0) + 1

    # -- per-dispatch interface (async engine) -------------------------------
    def dispatch_weights(self, idle: np.ndarray, now: float) -> np.ndarray:
        """Unnormalized pick weights over the ``idle`` client ids."""
        return np.ones(len(idle))

    def pick_next(self, idle: np.ndarray, now: float) -> int:
        """Choose the next client to dispatch among the idle set.

        Weighted draw over :meth:`dispatch_weights` from a stream keyed by
        ``(seed, tag, dispatch_count)`` — independent of execution details,
        like every other stream in the library.
        """
        if self._observed is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before pick_next()")
        idle = np.asarray(idle, dtype=np.int64)
        w = np.maximum(self.dispatch_weights(idle, now), 1e-12)
        rng = keyed_rng(self._seed, 0xD1, self._dispatch_count)
        self._dispatch_count += 1
        cid = int(idle[rng.choice(idle.size, p=w / w.sum())])
        self._last_dispatch[cid] = now
        return cid

    def observe(self, client_id: int, seconds: float) -> None:
        """Blend one priced completion into the client's latency estimate."""
        if self._observed is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before observe()")
        if self._seen[client_id]:
            self._observed[client_id] += self.ema * (seconds - self._observed[client_id])
        else:
            self._observed[client_id] = float(seconds)
            self._seen[client_id] = True
        self._bump_estimates()

    def expected_seconds(self) -> np.ndarray:
        if self._observed is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before sampling")
        return self._observed

    @staticmethod
    def cohort_size(ctx: SimulationContext) -> int:
        k = ctx.num_clients
        return min(k, max(1, int(round(ctx.config.participation * k))))

    def __call__(self, ctx: SimulationContext, round_idx: int) -> np.ndarray:
        raise NotImplementedError


class FastFirstSampler(TimeAwareSampler):
    """Oversample fast devices: P(k) proportional to ``1 / latency^power``.

    ``power=0`` degrades to uniform; large powers approach a deterministic
    fastest-m cohort.  Speeds up semi-sync wall-clock at the cost of seeing
    slow clients' data less often (quantify with the fairness analyses).
    """

    def __init__(self, power: float = 1.0, ema: float = 0.3) -> None:
        super().__init__(ema=ema)
        if power < 0:
            raise ValueError(f"power must be >= 0, got {power}")
        self.power = float(power)
        self._w_cache: np.ndarray | None = None
        self._w_cache_version = -1

    def _full_weights(self) -> np.ndarray:
        """Population weight array, rebuilt only when an estimate changed.

        Incremental in the sense that per-dispatch cost drops from O(N)
        to O(idle-index): the O(N) power transform runs once per
        ``observe``, not once per dispatch.  Bit-identity with the old
        per-dispatch recompute holds because ``power(maximum(lat, eps),
        -p)`` is elementwise — computing it over the population and then
        indexing equals indexing first and then computing.
        """
        version = getattr(self, "_estimate_version", 0)
        cache = getattr(self, "_w_cache", None)
        if cache is None or self._w_cache_version != version:
            lat = self.expected_seconds()
            cache = np.power(np.maximum(lat, 1e-12), -self.power)
            self._w_cache = cache
            self._w_cache_version = version
        return cache

    def __call__(self, ctx: SimulationContext, round_idx: int) -> np.ndarray:
        w = self._full_weights()
        p = w / w.sum()
        m = self.cohort_size(ctx)
        rng = ctx.round_rng(round_idx)
        return np.sort(rng.choice(ctx.num_clients, size=m, replace=False, p=p))

    def dispatch_weights(self, idle: np.ndarray, now: float) -> np.ndarray:
        return self._full_weights()[idle]


class LongIdleSampler(TimeAwareSampler):
    """Deterministic longest-idle-first rotation.

    Picks the m clients that have waited longest since their last selection
    (never-selected clients first), breaking ties by client id.  Guarantees
    every client participates once per ceil(K/m) rounds — full coverage with
    bounded per-client idle time, useful for fairness baselines and for
    keeping stale per-client state (SCAFFOLD controls) fresh.
    """

    def bind(self, ctx: SimulationContext, latency_model: LatencyModel) -> "LongIdleSampler":
        super().bind(ctx, latency_model)
        self._last = np.full(ctx.num_clients, -np.inf)
        return self

    def reset(self) -> None:
        super().reset()
        if self._prior is not None:
            self._last[:] = -np.inf

    def __call__(self, ctx: SimulationContext, round_idx: int) -> np.ndarray:
        if self._prior is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before sampling")
        m = self.cohort_size(ctx)
        idle = round_idx - self._last
        # stable argsort on (-idle, id): longest idle first, ids break ties
        order = np.argsort(-idle, kind="stable")
        chosen = np.sort(order[:m])
        self._last[chosen] = round_idx
        return chosen

    def pick_next(self, idle: np.ndarray, now: float) -> int:
        """Deterministic: the idle client unselected longest (ties by id)."""
        if self._prior is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before pick_next()")
        idle = np.asarray(idle, dtype=np.int64)
        waited = now - self._last_dispatch[idle]
        cid = int(idle[int(np.argmax(waited))])  # argmax takes first on ties
        self._last_dispatch[cid] = now
        return cid


class UtilitySampler(TimeAwareSampler):
    """Oort-style utility sampling: statistical value times a speed penalty.

    Each client's utility is::

        util_k = stat_k * loss_k * min(1, (T / latency_k)) ** alpha

    where ``stat_k = sqrt(n_k)`` (optionally blended with the scarcity score
    of :func:`repro.core.scoring.client_scores` via ``score_blend``),
    ``loss_k`` is the client's last reported mean training loss (true Oort
    statistical utility — high-loss clients carry more informative updates)
    and ``T`` is the preferred round duration — the ``round_pref`` quantile
    of current expected latencies.  Clients faster than ``T`` keep their full
    statistical utility; slower ones are discounted polynomially, exactly
    Oort's global-system-utility shape.  Cohorts are drawn
    utility-proportionally without replacement from the round's RNG stream.

    The engine feeds losses through :meth:`observe_loss` (participants report
    after every local pass); clients never yet observed take the *maximum*
    observed loss as an optimistic prior, so unexplored clients stay
    attractive — Oort's exploration rule.  Before the first loss report the
    loss term is 1 for everyone, so the first cohort matches the loss-free
    sampler exactly.

    Args:
        alpha: speed-penalty exponent (0 disables the time term).
        round_pref: quantile of expected latencies used as the preferred
            round duration T.
        score_blend: weight in [0, 1] mixing the (positively shifted)
            scarcity score into the statistical term.
        loss_feedback: scale the statistical term by reported training
            losses (True, the Oort rule); False keeps the data-size-only
            proxy of earlier revisions.
        ema: observation smoothing, see :class:`TimeAwareSampler` (shared by
            the latency and loss moving averages).
    """

    def __init__(
        self,
        alpha: float = 2.0,
        round_pref: float = 0.5,
        score_blend: float = 0.0,
        loss_feedback: bool = True,
        ema: float = 0.3,
    ) -> None:
        super().__init__(ema=ema)
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        if not 0.0 < round_pref < 1.0:
            raise ValueError(f"round_pref must be in (0, 1), got {round_pref}")
        if not 0.0 <= score_blend <= 1.0:
            raise ValueError(f"score_blend must be in [0, 1], got {score_blend}")
        self.alpha = float(alpha)
        self.round_pref = float(round_pref)
        self.score_blend = float(score_blend)
        self.loss_feedback = bool(loss_feedback)
        self._stat: np.ndarray | None = None
        self._loss: np.ndarray | None = None
        self._loss_seen: np.ndarray | None = None

    def bind(self, ctx: SimulationContext, latency_model: LatencyModel) -> "UtilitySampler":
        super().bind(ctx, latency_model)
        stat = np.sqrt(np.maximum(ctx.client_sizes().astype(np.float64), 1.0))
        stat /= stat.max()
        if self.score_blend > 0.0:
            s = client_scores(ctx.dataset.client_counts.astype(np.float64))
            s = s - s.min()
            if s.max() > 0:
                s /= s.max()
            stat = (1.0 - self.score_blend) * stat + self.score_blend * s
        self._stat = np.maximum(stat, 1e-6)
        self._loss = np.zeros(ctx.num_clients)
        self._loss_seen = np.zeros(ctx.num_clients, dtype=bool)
        return self

    def reset(self) -> None:
        super().reset()
        if self._loss is not None:
            self._loss[:] = 0.0
            self._loss_seen[:] = False

    def observe_loss(self, client_id: int, loss: float) -> None:
        """Blend one participant's mean training loss into its estimate."""
        if self._loss is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before observe_loss()")
        if self._loss_seen[client_id]:
            self._loss[client_id] += self.ema * (loss - self._loss[client_id])
        else:
            self._loss[client_id] = float(loss)
            self._loss_seen[client_id] = True
        self._bump_estimates()

    def statistical_utilities(self) -> np.ndarray:
        """Size/scarcity term, loss-scaled once any client reported a loss."""
        stat = self._stat
        if self.loss_feedback and self._loss_seen is not None and self._loss_seen.any():
            # optimistic prior: unexplored clients assume the largest
            # observed loss, so exploration never starves (Oort sec. 4.2)
            prior = float(self._loss[self._loss_seen].max())
            loss = np.where(self._loss_seen, self._loss, prior)
            top = float(loss.max())
            if top > 0:
                stat = stat * np.maximum(loss / top, 1e-6)
        return stat

    def utilities(self) -> np.ndarray:
        """Population utilities, cached between estimate changes.

        The full product — quantile, speed penalty, statistical term — is
        O(N); recomputing it per *dispatch* was the async hot loop's cost.
        It now reruns only when :meth:`observe` / :meth:`observe_loss`
        moved an estimate (the inputs are pure functions of those arrays),
        which keeps the values bit-identical to an uncached recompute.
        """
        version = getattr(self, "_estimate_version", 0)
        cache = getattr(self, "_util_cache", None)
        if cache is None or getattr(self, "_util_cache_version", -1) != version:
            lat = self.expected_seconds()
            t_pref = float(np.quantile(lat, self.round_pref))
            speed = np.minimum(1.0, t_pref / np.maximum(lat, 1e-12)) ** self.alpha
            cache = self.statistical_utilities() * np.maximum(speed, 1e-9)
            self._util_cache = cache
            self._util_cache_version = version
        return cache

    def __call__(self, ctx: SimulationContext, round_idx: int) -> np.ndarray:
        if self._stat is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before sampling")
        util = self.utilities()
        p = util / util.sum()
        m = self.cohort_size(ctx)
        rng = ctx.round_rng(round_idx)
        return np.sort(rng.choice(ctx.num_clients, size=m, replace=False, p=p))

    def dispatch_weights(self, idle: np.ndarray, now: float) -> np.ndarray:
        if self._stat is None:
            raise RuntimeError("sampler.bind(ctx, latency_model) must run before pick_next()")
        return self.utilities()[idle]


SAMPLERS: dict[str, type] = {
    "uniform": UniformSampler,
    "score": ScoreBiasedSampler,
    "round-robin": RoundRobinSampler,
    "fast": FastFirstSampler,
    "long-idle": LongIdleSampler,
    "utility": UtilitySampler,
}


def make_sampler(name: str, **kwargs):
    """Instantiate a cohort sampler by registry name (case-insensitive)."""
    key = name.lower()
    if key not in SAMPLERS:
        raise KeyError(f"unknown sampler {name!r}; available: {sorted(SAMPLERS)}")
    return SAMPLERS[key](**kwargs)
