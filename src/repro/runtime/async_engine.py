"""Event-driven asynchronous federated simulation.

Where :class:`repro.simulation.FederatedSimulation` runs lock-step rounds,
this engine dispatches client updates as *events* on a
:class:`~repro.runtime.clock.VirtualClock`: a fixed number of clients is
kept in flight; whenever one completes (at its latency-model-priced virtual
time) the server applies a staleness-aware update through the algorithm's
``server_apply`` hook (:mod:`repro.algorithms.async_fl`) and immediately
dispatches a replacement from the *current* global model.

Bookkeeping groups completed updates into evaluation windows of ``m``
arrivals (m = the synchronous cohort size), so a window consumes exactly
one synchronous round's client work and the resulting
:class:`~repro.simulation.engine.TimedRoundRecord` history plots directly
against synchronous baselines — per round *and* per simulated second.

Determinism and parallelism: every client RNG stream is keyed by the
dispatch sequence number, and event ties break on schedule order, so the
run is a pure function of the seed.  With ``workers > 1`` the engine
batches dispatches that started from the same global model version through
:class:`repro.parallel.ParallelClientRunner` — training is computed lazily
at first need, which lets FedBuff-style runs (where the model changes only
every K arrivals) parallelise near-perfectly while remaining bit-identical
to the serial schedule.

The loop itself lives in :class:`repro.runtime.events.AsyncPolicy`; this
class is the construction-and-validation facade.  Beyond plain FedAsync /
FedBuff it supports

* *stateful per-client methods* — algorithms declaring
  ``stateful_per_client`` (SCAFFOLD, FedDyn — typically wrapped in an
  :class:`~repro.algorithms.AsyncAdapter`) have each client's state
  snapshotted at dispatch and committed at completion through the event
  core's :class:`~repro.runtime.events.ClientStateStore`; they must run
  serially (``workers=1``);
* *per-dispatch time-aware sampling* — pass ``sampler`` (a
  :class:`~repro.runtime.scheduling.TimeAwareSampler`) and each replacement
  dispatch is chosen by ``sampler.pick_next(idle, now)`` instead of the
  uniform idle draw, with priced latencies and training losses fed back as
  completions land.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.data.registry import FederatedDataset
from repro.nn.module import Module
from repro.parallel.pool import ParallelClientRunner, resolve_workers
from repro.runtime.clock import ConstantLatency, LatencyModel
from repro.runtime.events import AsyncPolicy, EventCore
from repro.runtime.scheduling import ConcurrencyController, resolve_auto_comm
from repro.simulation.config import FLConfig, resolve_lr_schedule
from repro.simulation.context import SimulationContext
from repro.simulation.engine import History

__all__ = ["AsyncFederatedSimulation"]


def _warn_on_replica_config_mismatch(algorithm) -> None:
    """Default worker replicas are ``type(algorithm)()`` — flag silently
    diverging hyperparameters.

    Worker processes only run ``client_update``, so a replica built with
    default constructor arguments is correct as long as every non-default
    hyperparameter is server-side.  Algorithms declare such knobs via a
    ``replica_safe_hyperparams`` class attribute (FedAsync/FedBuff whitelist
    all of theirs); anything else that differs from the default-constructed
    probe draws a warning instead of silently breaking the workers>1 ==
    serial bit-identity guarantee.
    """
    try:
        probe = type(algorithm)()
    except TypeError:
        warnings.warn(
            f"{type(algorithm).__name__} cannot be rebuilt with no arguments "
            "for worker replicas; pass algo_builder to AsyncFederatedSimulation",
            stacklevel=3,
        )
        return
    # private attributes are runtime state (buffers, last-alpha traces), not
    # constructor config, and declared server-side knobs cannot affect
    # client_update — only the remaining public knobs are compared
    safe = getattr(algorithm, "replica_safe_hyperparams", frozenset())

    def config_of(obj) -> dict:
        return {
            k: v for k, v in vars(obj).items()
            if not k.startswith("_") and k not in safe
        }

    a, b = config_of(algorithm), config_of(probe)
    mismatched = set(a) ^ set(b)
    for key in set(a) & set(b):
        try:
            if not bool(np.all(a[key] == b[key])):
                mismatched.add(key)
        except (TypeError, ValueError):
            mismatched.add(key)
    if mismatched:
        warnings.warn(
            f"worker replicas of {type(algorithm).__name__} are built with "
            f"default hyperparameters but the main instance differs in "
            f"{sorted(mismatched)}; pass algo_builder if any of these affect "
            "client_update, or results will differ from workers=1",
            stacklevel=3,
        )


class AsyncFederatedSimulation:
    """Run a staleness-aware algorithm under an event-driven virtual clock.

    Args:
        algorithm: an algorithm implementing ``server_apply(ctx, x, update,
            staleness, x_dispatch)`` (e.g. :class:`repro.algorithms.FedAsync`,
            :class:`~repro.algorithms.FedBuff`, or an
            :class:`~repro.algorithms.AsyncAdapter` wrapping any method's
            local rule).  Stateless ``client_update`` is required for
            ``workers > 1``; stateful methods run serially.
        model / dataset / config: the problem definition (as the sync engine).
        latency_model: prices each dispatch in virtual seconds (default
            :class:`~repro.runtime.clock.ConstantLatency`); bound to the
            context automatically.  ``comm_method="auto"`` resolves to the
            algorithm's communication profile.
        concurrency: clients kept in flight (default: the synchronous cohort
            size ``max(1, round(participation * num_clients))``).
        concurrency_controller: optional
            :class:`~repro.runtime.scheduling.ConcurrencyController`; when
            given, ``concurrency`` only seeds the controller's initial limit
            and the max in-flight count then tracks the controller's AIMD
            limit (staleness-budget control).
        max_updates: total client updates to process (default
            ``config.rounds * cohort``, i.e. the same client work as the
            synchronous run — this makes time-to-accuracy comparisons fair).
        workers: process count for batched client training (1 = in-process).
        model_builder / algo_builder: zero-arg factories for worker replicas;
            required when ``workers > 1`` (``algo_builder`` defaults to the
            algorithm's class called with no arguments).
        sampler: optional :class:`~repro.runtime.scheduling.TimeAwareSampler`
            picking each replacement dispatch (``pick_next``); None keeps the
            uniform idle draw.
        loss_builder / sampler_builder / metric_hooks: as the sync engine.

    Notes:
        ``FLConfig.lr_schedule`` is evaluated per evaluation *window* (one
        window = one synchronous round's client work), so scheduled-lr runs
        stay comparable to synchronous baselines.  Models with BatchNorm
        buffers keep a server-side exponential moving average over arriving
        clients' post-training statistics in serial mode; worker pools
        cannot ship buffers back and keep them frozen at their initial
        values (a warning is emitted).
    """

    def __init__(
        self,
        algorithm,
        model: Module,
        dataset: FederatedDataset,
        config: FLConfig,
        latency_model: LatencyModel | None = None,
        concurrency: int | None = None,
        concurrency_controller: ConcurrencyController | None = None,
        max_updates: int | None = None,
        workers: int | None = None,
        model_builder: Callable | None = None,
        algo_builder: Callable | None = None,
        sampler=None,
        loss_builder=None,
        sampler_builder=None,
        metric_hooks: Sequence = (),
    ) -> None:
        if not hasattr(algorithm, "server_apply"):
            raise TypeError(
                f"{type(algorithm).__name__} has no server_apply(); use a "
                "staleness-aware method (fedasync, fedbuff), wrap one in an "
                "AsyncAdapter, or run it under SemiSyncFederatedSimulation"
            )
        self.algorithm = algorithm
        self.window = max(1, int(round(config.participation * dataset.num_clients)))
        schedule = resolve_lr_schedule(config.lr_schedule, config.rounds)
        if schedule is not None:
            # client_update receives the dispatch sequence number as its
            # round index (for unique RNG streams), so remap the schedule to
            # evaluation windows — one window = one synchronous round's work —
            # keeping scheduled-lr runs comparable to the sync baseline
            window = self.window
            config = replace(config, lr_schedule=lambda seq: schedule(seq // window))
        self.ctx = SimulationContext(
            model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
        )
        latency_model = latency_model or ConstantLatency()
        resolve_auto_comm(latency_model, algorithm)
        self.latency_model = latency_model.bind(self.ctx)
        self.concurrency = concurrency if concurrency is not None else self.window
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        self.concurrency_controller = concurrency_controller
        if concurrency_controller is not None:
            concurrency_controller.seed(
                self.concurrency, self.window, dataset.num_clients
            )
            self.concurrency = concurrency_controller.limit
        self.max_updates = max_updates if max_updates is not None else config.rounds * self.window
        if self.max_updates < 1:
            raise ValueError(f"max_updates must be >= 1, got {self.max_updates}")
        self.workers = 1 if workers is None else resolve_workers(workers)
        if self.workers > 1 and getattr(algorithm, "stateful_per_client", False):
            raise ValueError(
                f"{getattr(algorithm, 'name', type(algorithm).__name__)} keeps "
                "per-client state and must run serially (workers=1); the "
                "process pool cannot ship client state"
            )
        if self.workers > 1 and model_builder is None:
            raise ValueError("workers > 1 requires a model_builder for worker replicas")
        if self.workers > 1 and model.buffers:
            warnings.warn(
                "worker pools cannot ship BatchNorm-style buffers back; "
                "buffers stay frozen at their initial values (run serially "
                "for the server-side buffer moving average)",
                stacklevel=2,
            )
        self._model_builder = model_builder
        if algo_builder is None and self.workers > 1:
            _warn_on_replica_config_mismatch(algorithm)
        self._algo_builder = algo_builder or type(algorithm)
        self._loss_builder = loss_builder
        self._sampler_builder = sampler_builder
        self.sampler = sampler
        if sampler is not None:
            if not hasattr(sampler, "pick_next"):
                raise TypeError(
                    f"{type(sampler).__name__} has no pick_next(idle, now); "
                    "async dispatch needs a TimeAwareSampler"
                )
            sampler.bind(self.ctx, self.latency_model)
        self.metric_hooks = list(metric_hooks)
        self.final_params: np.ndarray | None = None
        self.total_virtual_time = 0.0

    def run(self, verbose: bool = False) -> History:
        runner: ParallelClientRunner | None = None
        if self.workers > 1:
            runner = ParallelClientRunner(
                self._model_builder,
                self.ctx.dataset,
                self.ctx.config,
                self._algo_builder,
                loss_builder=self._loss_builder,
                sampler_builder=self._sampler_builder,
                workers=self.workers,
            )
        policy = AsyncPolicy(
            self.latency_model,
            window=self.window,
            concurrency=self.concurrency,
            max_updates=self.max_updates,
            concurrency_controller=self.concurrency_controller,
            sampler=self.sampler,
            runner=runner,
        )
        core = EventCore(
            self.ctx, self.algorithm, policy, metric_hooks=self.metric_hooks
        )
        try:
            history = core.run(verbose=verbose)
        finally:
            if runner is not None:
                runner.close()
        self.final_params = core.x
        self.total_virtual_time = core.clock.now
        return history
