"""Event-driven asynchronous federated simulation.

Where :class:`repro.simulation.FederatedSimulation` runs lock-step rounds,
this engine dispatches client updates as *events* on a
:class:`~repro.runtime.clock.VirtualClock`: a fixed number of clients is
kept in flight; whenever one completes (at its latency-model-priced virtual
time) the server applies a staleness-aware update through the algorithm's
``server_apply`` hook (:mod:`repro.algorithms.async_fl`) and immediately
dispatches a replacement from the *current* global model.

Bookkeeping groups completed updates into evaluation windows of ``m``
arrivals (m = the synchronous cohort size), so a window consumes exactly
one synchronous round's client work and the resulting
:class:`~repro.simulation.engine.TimedRoundRecord` history plots directly
against synchronous baselines — per round *and* per simulated second.

Determinism and parallelism: every client RNG stream is keyed by the
dispatch sequence number, and event ties break on schedule order, so the
run is a pure function of the seed.  With ``workers > 1`` the engine
batches dispatches that started from the same global model version through
:class:`repro.parallel.ParallelClientRunner` — training is computed lazily
at first need, which lets FedBuff-style runs (where the model changes only
every K arrivals) parallelise near-perfectly while remaining bit-identical
to the serial schedule.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.data.registry import FederatedDataset
from repro.nn.module import Module
from repro.parallel.pool import ParallelClientRunner, resolve_workers
from repro.runtime.clock import ConstantLatency, LatencyModel, VirtualClock
from repro.runtime.scheduling import ConcurrencyController, resolve_auto_comm
from repro.simulation.config import FLConfig
from repro.simulation.context import SimulationContext
from repro.simulation.engine import (
    History,
    TimedRoundRecord,
    attach_train_loss,
    evaluate_into_record,
)

__all__ = ["AsyncFederatedSimulation"]


def _warn_on_replica_config_mismatch(algorithm) -> None:
    """Default worker replicas are ``type(algorithm)()`` — flag silently
    diverging hyperparameters.

    Worker processes only run ``client_update``, so a replica built with
    default constructor arguments is correct as long as every non-default
    hyperparameter is server-side.  Algorithms declare such knobs via a
    ``replica_safe_hyperparams`` class attribute (FedAsync/FedBuff whitelist
    all of theirs); anything else that differs from the default-constructed
    probe draws a warning instead of silently breaking the workers>1 ==
    serial bit-identity guarantee.
    """
    try:
        probe = type(algorithm)()
    except TypeError:
        warnings.warn(
            f"{type(algorithm).__name__} cannot be rebuilt with no arguments "
            "for worker replicas; pass algo_builder to AsyncFederatedSimulation",
            stacklevel=3,
        )
        return
    # private attributes are runtime state (buffers, last-alpha traces), not
    # constructor config, and declared server-side knobs cannot affect
    # client_update — only the remaining public knobs are compared
    safe = getattr(algorithm, "replica_safe_hyperparams", frozenset())

    def config_of(obj) -> dict:
        return {
            k: v for k, v in vars(obj).items()
            if not k.startswith("_") and k not in safe
        }

    a, b = config_of(algorithm), config_of(probe)
    mismatched = set(a) ^ set(b)
    for key in set(a) & set(b):
        try:
            if not bool(np.all(a[key] == b[key])):
                mismatched.add(key)
        except (TypeError, ValueError):
            mismatched.add(key)
    if mismatched:
        warnings.warn(
            f"worker replicas of {type(algorithm).__name__} are built with "
            f"default hyperparameters but the main instance differs in "
            f"{sorted(mismatched)}; pass algo_builder if any of these affect "
            "client_update, or results will differ from workers=1",
            stacklevel=3,
        )


class AsyncFederatedSimulation:
    """Run a staleness-aware algorithm under an event-driven virtual clock.

    Args:
        algorithm: an algorithm implementing ``server_apply(ctx, x, update,
            staleness, x_dispatch)`` (e.g. :class:`repro.algorithms.FedAsync`
            or :class:`~repro.algorithms.FedBuff`); ``client_update`` must be
            stateless (reads only broadcast state), as in the process pool.
        model / dataset / config: the problem definition (as the sync engine).
        latency_model: prices each dispatch in virtual seconds (default
            :class:`~repro.runtime.clock.ConstantLatency`); bound to the
            context automatically.  ``comm_method="auto"`` resolves to the
            algorithm's communication profile.
        concurrency: clients kept in flight (default: the synchronous cohort
            size ``max(1, round(participation * num_clients))``).
        concurrency_controller: optional
            :class:`~repro.runtime.scheduling.ConcurrencyController`; when
            given, ``concurrency`` only seeds the controller's initial limit
            and the max in-flight count then tracks the controller's AIMD
            limit (staleness-budget control).
        max_updates: total client updates to process (default
            ``config.rounds * cohort``, i.e. the same client work as the
            synchronous run — this makes time-to-accuracy comparisons fair).
        workers: process count for batched client training (1 = in-process).
        model_builder / algo_builder: zero-arg factories for worker replicas;
            required when ``workers > 1`` (``algo_builder`` defaults to the
            algorithm's class called with no arguments).
        loss_builder / sampler_builder / metric_hooks: as the sync engine.

    Notes:
        ``FLConfig.lr_schedule`` is evaluated per evaluation *window* (one
        window = one synchronous round's client work), so scheduled-lr runs
        stay comparable to synchronous baselines.  Models with BatchNorm
        buffers are supported but their running statistics stay frozen at
        their initial values (a warning is emitted); use GroupNorm models
        for meaningful async accuracy.
    """

    def __init__(
        self,
        algorithm,
        model: Module,
        dataset: FederatedDataset,
        config: FLConfig,
        latency_model: LatencyModel | None = None,
        concurrency: int | None = None,
        concurrency_controller: ConcurrencyController | None = None,
        max_updates: int | None = None,
        workers: int | None = None,
        model_builder: Callable | None = None,
        algo_builder: Callable | None = None,
        loss_builder=None,
        sampler_builder=None,
        metric_hooks: Sequence = (),
    ) -> None:
        if not hasattr(algorithm, "server_apply"):
            raise TypeError(
                f"{type(algorithm).__name__} has no server_apply(); use a "
                "staleness-aware method (fedasync, fedbuff) or wrap a "
                "synchronous one in SemiSyncFederatedSimulation"
            )
        self.algorithm = algorithm
        self.window = max(1, int(round(config.participation * dataset.num_clients)))
        if config.lr_schedule is not None:
            # client_update receives the dispatch sequence number as its
            # round index (for unique RNG streams), so remap the schedule to
            # evaluation windows — one window = one synchronous round's work —
            # keeping scheduled-lr runs comparable to the sync baseline
            base_schedule, window = config.lr_schedule, self.window
            config = replace(config, lr_schedule=lambda seq: base_schedule(seq // window))
        if model.buffers:
            warnings.warn(
                "model has BatchNorm-style buffers; the async engine keeps "
                "them frozen at their initial values (no staleness-aware "
                "buffer aggregation yet — see ROADMAP open items). Prefer "
                "GroupNorm models for async runs.",
                stacklevel=2,
            )
        self.ctx = SimulationContext(
            model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
        )
        latency_model = latency_model or ConstantLatency()
        resolve_auto_comm(latency_model, algorithm)
        self.latency_model = latency_model.bind(self.ctx)
        self.concurrency = concurrency if concurrency is not None else self.window
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        self.concurrency_controller = concurrency_controller
        if concurrency_controller is not None:
            concurrency_controller.seed(
                self.concurrency, self.window, dataset.num_clients
            )
            self.concurrency = concurrency_controller.limit
        self.max_updates = max_updates if max_updates is not None else config.rounds * self.window
        if self.max_updates < 1:
            raise ValueError(f"max_updates must be >= 1, got {self.max_updates}")
        self.workers = 1 if workers is None else resolve_workers(workers)
        if self.workers > 1 and model_builder is None:
            raise ValueError("workers > 1 requires a model_builder for worker replicas")
        self._model_builder = model_builder
        if algo_builder is None and self.workers > 1:
            _warn_on_replica_config_mismatch(algorithm)
        self._algo_builder = algo_builder or type(algorithm)
        self._loss_builder = loss_builder
        self._sampler_builder = sampler_builder
        self.metric_hooks = list(metric_hooks)
        self.final_params: np.ndarray | None = None
        self.total_virtual_time = 0.0

    def run(self, verbose: bool = False) -> History:
        ctx = self.ctx
        cfg = ctx.config
        algo = self.algorithm
        algo.setup(ctx)
        if self.concurrency_controller is not None:
            # restart from the seeded limit so a re-run reproduces the first
            self.concurrency_controller.reset()
            self.concurrency = self.concurrency_controller.limit

        x = ctx.x0.copy()
        history = History(algorithm=getattr(algo, "name", type(algo).__name__))
        clock = VirtualClock()
        buf0 = ctx.model.get_buffers(copy=True) if ctx.model.buffers else None

        runner: ParallelClientRunner | None = None
        if self.workers > 1:
            runner = ParallelClientRunner(
                self._model_builder,
                ctx.dataset,
                cfg,
                self._algo_builder,
                loss_builder=self._loss_builder,
                sampler_builder=self._sampler_builder,
                workers=self.workers,
            )

        in_flight: dict[int, tuple[int, int, np.ndarray]] = {}  # seq -> (cid, version, x_ref)
        pending: list[tuple[int, int, np.ndarray]] = []  # uncomputed (seq, cid, x_ref)
        results: dict[int, object] = {}
        busy: dict[int, int] = {}  # client -> outstanding dispatches
        state = {"dispatched": 0, "version": 0, "applied": 0}

        def dispatch() -> None:
            # choose among idle clients with a stream keyed by dispatch index,
            # so the schedule is independent of execution details
            rng = np.random.default_rng((cfg.seed, 0xA7, state["dispatched"]))
            avail = np.array(
                [k for k in range(ctx.num_clients) if not busy.get(k)], dtype=np.int64
            )
            if avail.size == 0:  # concurrency exceeds the client pool
                avail = np.arange(ctx.num_clients, dtype=np.int64)
            cid = int(avail[rng.integers(avail.size)])
            seq = state["dispatched"]
            state["dispatched"] += 1
            clock.schedule(self.latency_model.latency(cid, seq), client_id=cid, seq=seq)
            in_flight[seq] = (cid, state["version"], x)
            pending.append((seq, cid, x))
            busy[cid] = busy.get(cid, 0) + 1

        def flush() -> None:
            # compute every pending dispatch, batching groups that share a
            # broadcast vector (consecutive by construction: x only advances)
            while pending:
                x_ref = pending[0][2]
                n = 1
                while n < len(pending) and pending[n][2] is x_ref:
                    n += 1
                group = pending[:n]
                del pending[:n]
                if runner is not None and len(group) > 1:
                    outs = runner.run_jobs([(s, c) for s, c, _ in group], x_ref)
                else:
                    outs = []
                    for s, c, _ in group:
                        if buf0 is not None:
                            ctx.model.set_buffers(buf0)
                        outs.append(attach_train_loss(algo, algo.client_update(ctx, s, c, x_ref)))
                for (s, _, _), upd in zip(group, outs):
                    results[s] = upd

        completed = 0
        round_idx = 0
        win_tau: list[float] = []
        win_conc: list[int] = []
        win_clients: list[int] = []
        t0 = time.perf_counter()

        try:
            for _ in range(min(self.concurrency, self.max_updates)):
                dispatch()

            while len(clock):
                ev = clock.pop()
                seq = ev.data["seq"]
                if seq not in results:
                    flush()
                update = results.pop(seq)
                cid, v_dispatch, x_dispatch = in_flight.pop(seq)
                if busy.get(cid, 0) <= 1:
                    busy.pop(cid, None)
                else:
                    busy[cid] -= 1

                tau = state["version"] - v_dispatch
                x_new = algo.server_apply(ctx, x, update, tau, x_dispatch)
                if x_new is not None:
                    x = x_new
                    state["version"] += 1
                    state["applied"] += 1
                completed += 1
                win_tau.append(float(tau))
                win_conc.append(len(in_flight) + 1)
                win_clients.append(cid)

                if self.concurrency_controller is not None:
                    limit = self.concurrency_controller.observe(float(tau))
                else:
                    limit = self.concurrency
                # refill up to the (possibly AIMD-adjusted) in-flight limit;
                # when the limit drops, replacements pause until the
                # in-flight population drains below it
                while state["dispatched"] < self.max_updates and len(in_flight) < limit:
                    dispatch()

                if completed % self.window == 0 or completed == self.max_updates:
                    if completed == self.max_updates:
                        x_final = algo.finalize(ctx, x)
                        if x_final is not None:
                            x = x_final
                            state["version"] += 1
                            state["applied"] += 1
                    rec = TimedRoundRecord(
                        round=round_idx,
                        selected=np.asarray(win_clients, dtype=np.int64),
                        wall_time=time.perf_counter() - t0,
                        virtual_time=clock.now,
                        staleness=float(np.mean(win_tau)),
                        concurrency=float(np.mean(win_conc)),
                        updates_applied=state["applied"],
                    )
                    t0 = time.perf_counter()
                    if (round_idx % cfg.eval_every == 0) or (completed == self.max_updates):
                        if buf0 is not None:
                            ctx.model.set_buffers(buf0)
                        evaluate_into_record(ctx, rec, round_idx, x, self.metric_hooks)
                    rec.extras["concurrency_limit"] = (
                        self.concurrency_controller.limit
                        if self.concurrency_controller is not None
                        else self.concurrency
                    )
                    rec.extras.update(algo.round_extras())
                    history.records.append(rec)
                    if verbose and not np.isnan(rec.test_accuracy):
                        print(
                            f"[{history.algorithm}] window {round_idx:4d}  "
                            f"t={clock.now:9.2f}s  acc={rec.test_accuracy:.4f}  "
                            f"stale={rec.staleness:.2f}"
                        )
                    round_idx += 1
                    win_tau, win_conc, win_clients = [], [], []
        finally:
            if runner is not None:
                runner.close()

        self.final_params = x
        self.total_virtual_time = clock.now
        return history
