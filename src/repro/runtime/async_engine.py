"""Event-driven asynchronous federated simulation.

Where :class:`repro.simulation.FederatedSimulation` runs lock-step rounds,
this engine dispatches client updates as *events* on a
:class:`~repro.runtime.clock.VirtualClock`: a fixed number of clients is
kept in flight; whenever one completes (at its latency-model-priced virtual
time) the server applies a staleness-aware update through the algorithm's
``server_apply`` hook (:mod:`repro.algorithms.async_fl`) and immediately
dispatches a replacement from the *current* global model.

Bookkeeping groups completed updates into evaluation windows of ``m``
arrivals (m = the synchronous cohort size), so a window consumes exactly
one synchronous round's client work and the resulting
:class:`~repro.simulation.engine.TimedRoundRecord` history plots directly
against synchronous baselines — per round *and* per simulated second.

Determinism and parallelism: every client RNG stream is keyed by the
dispatch sequence number, and event ties break on schedule order, so the
run is a pure function of the seed.  Client compute goes through a
pluggable :class:`~repro.parallel.backend.ExecutionBackend`.  With
``streaming`` on (the default) each dispatch's job is *submitted* to the
backend the moment it is issued and collected when its virtual completion
pops, overlapping worker compute with event processing on the pool
backends; with streaming off (or on the serial backend) the engine batches
dispatches lazily (training is computed at first need).  Both paths build
jobs from dispatch-time state and apply results in virtual-time order, so
their histories are bit-identical.  Because jobs carry packed client state
and buffer dicts, stateful methods (SCAFFOLD, FedDyn via
:class:`~repro.algorithms.AsyncAdapter`) and BatchNorm buffer tracking
work on *every* backend.

The loop itself lives in :class:`repro.runtime.events.AsyncPolicy`; this
class is the construction-and-validation facade.  Beyond plain FedAsync /
FedBuff it supports

* *stateful per-client methods* — algorithms declaring
  ``stateful_per_client`` have each client's state snapshotted at dispatch
  and committed at completion through the event core's
  :class:`~repro.runtime.events.ClientStateStore`;
* *per-dispatch time-aware sampling* — pass ``sampler`` (a
  :class:`~repro.runtime.scheduling.TimeAwareSampler`) and each replacement
  dispatch is chosen by ``sampler.pick_next(idle, now)`` instead of the
  uniform idle draw, with priced latencies and training losses fed back as
  completions land;
* *buffer EMA modes* — models with BatchNorm buffers keep a server-side
  moving average over arriving clients' statistics; ``buffer_ema``
  selects the fixed ``1/window`` blend or the staleness-discounted
  ``1/(window * (1 + tau))`` rule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.data.registry import FederatedDataset
from repro.nn.module import Module
from repro.parallel.backend import (
    ExecutionBackend,
    make_backend,
    prepare_engine_backend,
    resolve_streaming,
)
from repro.runtime.clock import ConstantLatency, LatencyModel
from repro.runtime.events import BUFFER_EMA_MODES, AsyncPolicy, EventCore
from repro.runtime.fastpath import resolve_fast_path
from repro.runtime.scheduling import ConcurrencyController, resolve_auto_comm
from repro.simulation.config import FLConfig, resolve_lr_schedule
from repro.simulation.context import SimulationContext
from repro.simulation.engine import History

__all__ = ["AsyncFederatedSimulation"]


class AsyncFederatedSimulation:
    """Run a staleness-aware algorithm under an event-driven virtual clock.

    Args:
        algorithm: an algorithm implementing ``server_apply(ctx, x, update,
            staleness, x_dispatch)`` (e.g. :class:`repro.algorithms.FedAsync`,
            :class:`~repro.algorithms.FedBuff`, or an
            :class:`~repro.algorithms.AsyncAdapter` wrapping any method's
            local rule — stateful methods included, on any backend).
        model / dataset / config: the problem definition (as the sync engine).
        latency_model: prices each dispatch in virtual seconds (default
            :class:`~repro.runtime.clock.ConstantLatency`); bound to the
            context automatically.  ``comm_method="auto"`` resolves to the
            algorithm's communication profile.
        concurrency: clients kept in flight (default: the synchronous cohort
            size ``max(1, round(participation * num_clients))``).
        concurrency_controller: optional
            :class:`~repro.runtime.scheduling.ConcurrencyController`; when
            given, ``concurrency`` only seeds the controller's initial limit
            and the max in-flight count then tracks the controller's AIMD
            limit (staleness-budget control).
        max_updates: total client updates to process (default
            ``config.rounds * cohort``, i.e. the same client work as the
            synchronous run — this makes time-to-accuracy comparisons fair).
        backend: execution backend for batched client training — an
            :class:`~repro.parallel.backend.ExecutionBackend` instance, a
            registry name (``"serial"`` / ``"process"`` / ``"thread"``), or
            None to derive one from ``workers`` (>1 selects the process
            pool, the historical behavior).
        workers: worker count for pool backends (None keeps the backend's
            default: ``REPRO_MAX_WORKERS`` or the capped CPU count).
        model_builder / algo_builder: zero-arg factories for worker replicas;
            ``model_builder`` is required by the non-serial backends
            (``algo_builder`` defaults to the algorithm's class called with
            no arguments).
        sampler: optional :class:`~repro.runtime.scheduling.TimeAwareSampler`
            picking each replacement dispatch (``pick_next``); None keeps the
            uniform idle draw.
        buffer_ema: ``"fixed"`` (1/window blend, default) or ``"staleness"``
            (stale arrivals discounted like the parameter rule).
        streaming: submit each dispatch's job to the backend eagerly (True,
            the default) or accumulate lazy batches (False); None resolves
            to the default.  Histories are bit-identical either way — the
            knob only trades wall-clock overlap — and the serial backend
            always uses the lazy-batch path.
        fast_path: route dispatch bursts through the vectorized control
            plane — incremental idle tracking, batched latency draws,
            batched heap insertion (True, the default); False keeps the
            scalar per-dispatch loop; None resolves to the default.
            Histories are bit-identical either way (pinned by
            ``tests/test_fastpath.py``) — the knob is a debugging opt-out.
        loss_builder / sampler_builder / metric_hooks: as the sync engine.

    Notes:
        ``FLConfig.lr_schedule`` is evaluated per evaluation *window* (one
        window = one synchronous round's client work), so scheduled-lr runs
        stay comparable to synchronous baselines.
    """

    def __init__(
        self,
        algorithm,
        model: Module,
        dataset: FederatedDataset,
        config: FLConfig,
        latency_model: LatencyModel | None = None,
        concurrency: int | None = None,
        concurrency_controller: ConcurrencyController | None = None,
        max_updates: int | None = None,
        workers: int | None = None,
        backend: ExecutionBackend | str | None = None,
        model_builder: Callable | None = None,
        algo_builder: Callable | None = None,
        sampler=None,
        buffer_ema: str = "fixed",
        streaming: bool | None = None,
        fast_path: bool | None = None,
        loss_builder=None,
        sampler_builder=None,
        metric_hooks: Sequence = (),
    ) -> None:
        if not hasattr(algorithm, "server_apply"):
            raise TypeError(
                f"{type(algorithm).__name__} has no server_apply(); use a "
                "staleness-aware method (fedasync, fedbuff), wrap one in an "
                "AsyncAdapter, or run it under SemiSyncFederatedSimulation"
            )
        if buffer_ema not in BUFFER_EMA_MODES:
            raise ValueError(
                f"buffer_ema must be one of {BUFFER_EMA_MODES}, got {buffer_ema!r}"
            )
        self.algorithm = algorithm
        self.window = max(1, int(round(config.participation * dataset.num_clients)))
        schedule = resolve_lr_schedule(config.lr_schedule, config.rounds)
        if schedule is not None:
            # client_update receives the dispatch sequence number as its
            # round index (for unique RNG streams), so remap the schedule to
            # evaluation windows — one window = one synchronous round's work —
            # keeping scheduled-lr runs comparable to the sync baseline
            window = self.window
            config = replace(config, lr_schedule=lambda seq: schedule(seq // window))
        self.ctx = SimulationContext(
            model, dataset, config, loss_builder=loss_builder, sampler_builder=sampler_builder
        )
        latency_model = latency_model or ConstantLatency()
        resolve_auto_comm(latency_model, algorithm)
        self.latency_model = latency_model.bind(self.ctx)
        self.concurrency = concurrency if concurrency is not None else self.window
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        self.concurrency_controller = concurrency_controller
        if concurrency_controller is not None:
            concurrency_controller.seed(
                self.concurrency, self.window, dataset.num_clients
            )
            self.concurrency = concurrency_controller.limit
        self.max_updates = max_updates if max_updates is not None else config.rounds * self.window
        if self.max_updates < 1:
            raise ValueError(f"max_updates must be >= 1, got {self.max_updates}")
        self.buffer_ema = buffer_ema
        self.streaming = resolve_streaming(streaming)
        self.fast_path = resolve_fast_path(fast_path)
        self._workers = workers
        self.backend_name, self._backend, self._algo_builder = prepare_engine_backend(
            backend, workers, algorithm, model_builder, algo_builder
        )
        self._model_builder = model_builder
        self._loss_builder = loss_builder
        self._sampler_builder = sampler_builder
        self.sampler = sampler
        if sampler is not None:
            if not hasattr(sampler, "pick_next"):
                raise TypeError(
                    f"{type(sampler).__name__} has no pick_next(idle, now); "
                    "async dispatch needs a TimeAwareSampler"
                )
            sampler.bind(self.ctx, self.latency_model)
        self.metric_hooks = list(metric_hooks)
        self.final_params: np.ndarray | None = None
        self.total_virtual_time = 0.0

    def run(
        self,
        verbose: bool = False,
        recorder=None,
        resume: dict | None = None,
        stop_after_rounds: int | None = None,
        profiler=None,
    ) -> History:
        owned = self._backend is None
        backend = (
            make_backend(self.backend_name, workers=self._workers)
            if owned
            else self._backend
        )
        policy = AsyncPolicy(
            self.latency_model,
            window=self.window,
            concurrency=self.concurrency,
            max_updates=self.max_updates,
            concurrency_controller=self.concurrency_controller,
            sampler=self.sampler,
            buffer_ema=self.buffer_ema,
            streaming=self.streaming,
            fast_path=self.fast_path,
        )
        core = EventCore(
            self.ctx, self.algorithm, policy, metric_hooks=self.metric_hooks,
            backend=backend,
        )
        # bind inside the guard: a failed bind (or run) must still reap an
        # owned backend's workers instead of leaking the fork pool
        try:
            backend.bind(
                self.ctx,
                self.algorithm,
                model_builder=self._model_builder,
                algo_builder=self._algo_builder,
                loss_builder=self._loss_builder,
                sampler_builder=self._sampler_builder,
            )
            history = core.run(
                verbose=verbose, recorder=recorder, resume=resume,
                stop_after_rounds=stop_after_rounds, profiler=profiler,
            )
        finally:
            # engine_owned instances (the facade's RemoteBackend) carry
            # run-scoped resources — a listener and its worker fleet — and
            # are reaped here too, unlike plain caller-owned instances
            if owned or getattr(backend, "engine_owned", False):
                backend.close()
        self.final_params = core.x
        self.total_virtual_time = core.clock.now
        return history
