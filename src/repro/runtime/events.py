"""One event loop for every engine kind.

Before this module the repo carried three training loops — lock-step rounds
(:class:`repro.simulation.FederatedSimulation`), deadline rounds
(:class:`repro.runtime.SemiSyncFederatedSimulation`) and the asynchronous
event loop (:class:`repro.runtime.AsyncFederatedSimulation`) — each
re-implementing dispatch, completion handling, sampler binding and history
recording.  They are now all *policies* over one :class:`EventCore`:

* :class:`BarrierPolicy` — synchronous rounds: every cohort member is
  dispatched at once, completions land immediately, the round closes when
  the barrier (a :class:`DeadlineTick`) pops.  No latency, plain
  :class:`~repro.simulation.RoundRecord` history.
* :class:`DeadlinePolicy` — semi-synchronous rounds on the virtual clock:
  cohort completions are priced by a latency model, a ``DeadlineTick``
  closes the round, and late clients follow one of two late policies —
  ``"downweight"`` (the historical same-round approximation: late
  displacements are scaled by ``late_weight`` — or dropped at 0 — and merged
  *before they arrive*, which is exactly why it cannot be expressed as
  honest events and bypasses the queue) or ``"trickle"`` (the honest event
  path: the late completion stays in the queue and merges into the round
  that is open when it actually arrives).
* :class:`AsyncPolicy` — continuous dispatch: a bounded number of clients
  in flight, each completion immediately applied through the algorithm's
  ``server_apply`` and replaced, with FedAsync/FedBuff semantics living in
  the algorithm.  Supports per-dispatch time-aware samplers
  (:meth:`~repro.runtime.scheduling.TimeAwareSampler.pick_next`) and —
  through the :class:`ClientStateStore` — stateful per-client methods
  (SCAFFOLD/FedDyn control variates snapshotted at dispatch, committed at
  completion).

Client *compute* is delegated to a pluggable
:class:`~repro.parallel.backend.ExecutionBackend`: every policy describes
work as :class:`~repro.parallel.backend.ClientJob` values (broadcast
params + packed client state + buffers + broadcast state) and the backend
— serial, process pool, threads, or remote workers over TCP
(:mod:`repro.net`) — executes them with identical semantics, so stateful
methods and BatchNorm buffer tracking work on every backend and the
histories are bit-identical across them (``tests/test_backends.py``,
``tests/test_net.py``).  The hand-off is streaming
(``submit``/``collect`` through :meth:`EventCore.submit_job` /
:meth:`EventCore.collect_jobs`): the async policy submits each job as its
dispatch is issued, overlapping worker compute with event processing,
while round policies submit whole cohorts and collect at the barrier.

Events are typed (:class:`Dispatch`, :class:`Completion`,
:class:`DeadlineTick`) and ride the deterministic
:class:`~repro.runtime.clock.VirtualClock`; ties pop in schedule order, so
every run remains a pure function of its seed.  For the pre-existing knob
space, all three policies reproduce the retired loops' histories
bit-for-bit (``tests/test_engine_equivalence.py`` pins this against frozen
copies of the old code).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro.parallel.backend import ClientJob, SerialBackend
from repro.runtime.clock import VirtualClock
from repro.runtime.fastpath import IdleTracker, mask_positions
from repro.utils.rng import keyed_rng
from repro.simulation.engine import (
    History,
    RoundRecord,
    TimedRoundRecord,
    evaluate_into_record,
)

__all__ = [
    "Dispatch",
    "Completion",
    "DeadlineTick",
    "ClientStateStore",
    "EventCore",
    "BarrierPolicy",
    "DeadlinePolicy",
    "AsyncPolicy",
    "LATE_POLICIES",
    "BUFFER_EMA_MODES",
]

logger = logging.getLogger("repro.runtime")

LATE_POLICIES = ("downweight", "trickle")

BUFFER_EMA_MODES = ("fixed", "staleness")


@dataclass(frozen=True)
class Dispatch:
    """One unit of client work issued by a policy.

    Attributes:
        seq: global dispatch counter (unique per run).
        client_id: which client trains.
        round_idx: RNG round key handed to ``client_update`` (the round for
            barrier/deadline policies, the dispatch sequence for async).
        issued_at: virtual time the dispatch was issued.
        version: server model version at dispatch (async staleness anchor).
        cohort_pos: position inside the round's cohort (-1 for async).
        late: True when the dispatch is already known to miss its deadline.
        x_ref: the broadcast parameter vector trained from.
        state: per-client state snapshot (stateful methods under async).
        state_version: the store's per-client version at snapshot time; the
            commit compares against it so oversubscribed stateful dispatch
            (two dispatches of one client in flight) is observable.
    """

    seq: int
    client_id: int
    round_idx: int
    issued_at: float
    version: int = 0
    cohort_pos: int = -1
    late: bool = False
    x_ref: np.ndarray | None = field(default=None, repr=False, compare=False)
    state: dict | None = field(default=None, repr=False, compare=False)
    state_version: int = 0


@dataclass(frozen=True)
class Completion:
    """A dispatch finishing at its priced virtual time.

    Round policies precompute ``update`` when the dispatch is issued (their
    compute order is the cohort order, not the arrival order — that is what
    keeps buffer averaging and aggregation sums bit-identical to the
    synchronous loops); the async policy resolves updates through the
    backend at completion time — submitted eagerly under streaming
    dispatch, or as a lazy batch.
    """

    dispatch: Dispatch
    latency: float
    update: object | None = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class DeadlineTick:
    """Round boundary marker: ``phase="open"`` starts, ``"close"`` settles."""

    round_idx: int
    phase: str = "close"


class ClientStateStore:
    """Canonical per-client algorithm state for the event-driven policies.

    Synchronous rounds leave state inside the algorithm's own arrays (their
    compute order is the commit order, so nothing extra is needed).  The
    async policy instead snapshots a client's state when a dispatch is
    issued and commits the trained state when the completion is applied —
    making state visibility a function of virtual time, not of Python
    execution order, and keeping oversubscribed clients (two dispatches in
    flight) training from the state they physically had.
    """

    def __init__(self, algorithm, num_clients: int, active: bool = True) -> None:
        self.active = active and bool(getattr(algorithm, "stateful_per_client", False))
        self._algo = algorithm
        self._num = int(num_clients)
        self._state: dict[int, dict] = {}
        self._versions: dict[int, int] = {}
        #: commits that landed on top of a state newer than their snapshot —
        #: the observable footprint of oversubscribed stateful dispatch
        #: (last-writer-wins is still the resolution, but no longer silent)
        self.stale_commits = 0

    def capture_initial(self) -> None:
        """Reset the store to the post-``setup`` baseline (called once).

        Materialization is *lazy*: nothing is packed here.  A client's state
        is first packed — from the algorithm's own post-``setup`` arrays —
        when its first dispatch snapshots it, and cached from then on, so a
        100k-client simulation holds packed state for the clients that
        actually ran, O(active) not O(total).  Laziness is identity-safe
        because a client's first snapshot always happens before anything
        can mutate its slot in the algorithm (only ``commit`` writes, and a
        commit is always preceded by the dispatch that snapshotted).
        """
        self.stale_commits = 0
        self._versions = {}
        self._state = {}

    def snapshot(self, client_id: int) -> dict | None:
        """State a dispatch issued now should train from (packed on first
        use, cached after — see :meth:`capture_initial`)."""
        if not self.active:
            return None
        state = self._state.get(client_id)
        if state is None:
            state = self._state[client_id] = self._algo.pack_client_state(client_id)
        return state

    def version(self, client_id: int) -> int:
        """Monotone per-client commit counter (0 until the first commit)."""
        return self._versions.get(client_id, 0)

    def commit(
        self, client_id: int, state: dict | None, expected_version: int | None = None
    ) -> None:
        """Make a completed dispatch's trained state the canonical one.

        Args:
            expected_version: the version the dispatch snapshotted; when the
                current version has moved past it (a concurrent self-dispatch
                committed in between), ``stale_commits`` is incremented.
        """
        if self.active and state is not None:
            if (
                expected_version is not None
                and self._versions.get(client_id, 0) != expected_version
            ):
                self.stale_commits += 1
                logger.warning(
                    "stale state commit for client %d: snapshot version %d, "
                    "store moved to %d (oversubscribed stateful dispatch; "
                    "last writer wins)",
                    client_id, expected_version, self._versions.get(client_id, 0),
                )
            self._state[client_id] = state
            self._versions[client_id] = self._versions.get(client_id, 0) + 1


class EventCore:
    """Shared machinery of every engine kind: one clock, one loop.

    The core owns the virtual clock, the global model vector, the history,
    the client-state store, cohort selection and the execution backend; a
    *policy* object decides when to dispatch whom and how completions
    merge.  ``run`` processes the event queue until the policy stops
    scheduling.
    """

    def __init__(
        self,
        ctx,
        algorithm,
        policy,
        metric_hooks: Sequence = (),
        client_sampler=None,
        backend=None,
    ) -> None:
        self.ctx = ctx
        self.algorithm = algorithm
        self.policy = policy
        self.metric_hooks = list(metric_hooks)
        self.client_sampler = client_sampler
        self.backend = backend if backend is not None else SerialBackend().bind(ctx, algorithm)
        self.verbose = False
        self.x: np.ndarray | None = None
        self.clock = VirtualClock()
        self.history: History | None = None
        self.state_store: ClientStateStore | None = None
        self.recorder = None
        self.profiler = None
        self.stopped = False
        self._seq = 0

    # -- primitives policies build on ---------------------------------------
    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def post(self, delay: float, payload, client_id: int = -1):
        """Schedule a typed event ``delay`` virtual seconds from now."""
        if self.recorder is not None and isinstance(payload, Completion):
            self.recorder.on_dispatch(self, payload.dispatch, delay)
        return self.clock.schedule(delay, client_id=client_id, event=payload)

    def select_cohort(self, round_idx: int) -> np.ndarray:
        """The round's cohort: the context's default stream or a sampler."""
        if self.client_sampler is None:
            return self.ctx.sample_clients(round_idx)
        return np.asarray(self.client_sampler(self.ctx, round_idx))

    def make_jobs(self, pairs, buffers=None, with_state=True) -> list[ClientJob]:
        """Build :class:`ClientJob`\\ s for ``(round_idx, client_id)`` pairs.

        Per-job inputs come from the core's canonical state: the current
        broadcast vector, the client's packed state (when the store is
        active), ``buffers`` verbatim, and — only when the backend does not
        execute against the live algorithm — one shared broadcast-state
        snapshot.
        """
        bstate = None
        if not self.backend.shares_state:
            bstate = self.algorithm.pack_broadcast_state() or None
        store = self.state_store
        return [
            ClientJob(
                round_idx=int(r),
                client_id=int(k),
                x_ref=self.x,
                client_state=store.snapshot(int(k)) if with_state else None,
                buffers=buffers,
                broadcast_state=bstate,
            )
            for r, k in pairs
        ]

    def submit_job(self, job: ClientJob):
        """Submit one job to the backend; returns its ``JobHandle``.

        The streaming half of the policy/backend choke point: when a
        recorder is attached the job is stamped to collect timing.  The
        queue-wait anchor is whichever came first — a policy stamping at
        dispatch time, this method, or the backend's own submit-time stamp —
        so journal records report real queueing on every path.
        """
        if self.recorder is not None and not job.collect_timing:
            job = replace(job, collect_timing=True, submitted_at=time.monotonic())
        return self.backend.submit(job)

    def submit_jobs(self, jobs: list[ClientJob]) -> list:
        """Batch submit through ``backend.submit_many``; handles in order.

        Same timing stamps as :meth:`submit_job`, one backend call: batching
        backends (pool ``job_batch``, the remote service) amortize a pickle
        + transport round-trip across the list.  Identity-safe for the same
        reason streaming is: every job is already stamped from
        dispatch-time state before it gets here.
        """
        if self.recorder is not None:
            now = time.monotonic()
            jobs = [
                replace(job, collect_timing=True, submitted_at=now)
                if not job.collect_timing
                else job
                for job in jobs
            ]
        return self.backend.submit_many(jobs)

    def collect_jobs(self, handles=None, block: bool = True) -> list:
        """Collect completed ``(handle, result)`` pairs from the backend.

        The collecting half of the choke point: each collected job's timing
        dict becomes a ``job`` journal record the moment it lands.
        """
        pairs = self.backend.collect(handles, block=block)
        rec = self.recorder
        if rec is not None:
            for handle, res in pairs:
                rec.on_job(self, handle.job, res)
        return pairs

    def run_backend_jobs(self, jobs: list[ClientJob]) -> list:
        """Batch both halves: submit every job, collect in submit order.

        Round policies (whole-cohort compute) and the async lazy flush go
        through here; unrecorded runs pass jobs through untouched, so the
        hot path pays nothing.  Submission is batched (one
        ``submit_many``), so a cohort costs one transport round-trip on
        batching backends.  Backends offering ``run_jobs_inline`` (the
        serial reference) skip the handle round-trip entirely when no
        recorder needs per-job journal records — the handles would be
        dropped on the floor one line later anyway.
        """
        if self.recorder is None:
            inline = getattr(self.backend, "run_jobs_inline", None)
            if inline is not None:
                return inline(jobs)
        handles = self.submit_jobs(jobs)
        return [res for _, res in self.collect_jobs(handles, block=True)]

    def run_cohort(self, round_idx: int, clients) -> list:
        """Execute one round's cohort through the backend, in cohort order.

        Returns the :class:`~repro.parallel.backend.ClientResult` list.
        Client state commits at *compute* time in cohort order — exactly the
        mutation order of serial in-process execution, which keeps round
        policies bit-identical across backends.  Model buffers follow the
        FedAvg-with-BN treatment: every job starts from the model's current
        buffers and the server commits their post-training mean (same
        accumulation order and arithmetic as the serial path).
        """
        model = self.ctx.model
        buffers = model.get_buffers(copy=True) if model.buffers else None
        jobs = self.make_jobs(
            [(round_idx, k) for k in clients], buffers=buffers
        )
        results = self.run_backend_jobs(jobs)
        for k, res in zip(clients, results):
            self.state_store.commit(int(k), res.new_state)
        if buffers is not None:
            acc = {name: np.zeros_like(v) for name, v in buffers.items()}
            n = 0
            for res in results:
                n += 1
                for name, v in res.buffers.items():
                    acc[name] += v
            inv = 1.0 / max(n, 1)
            model.set_buffers({name: v * inv for name, v in acc.items()})
        return results

    def record(self, rec: RoundRecord, evaluate: bool, round_idx: int) -> RoundRecord:
        """Optionally evaluate into ``rec``, stamp extras, append to history."""
        if evaluate:
            evaluate_into_record(self.ctx, rec, round_idx, self.x, self.metric_hooks)
        rec.extras.update(self.algorithm.round_extras())
        self.history.records.append(rec)
        return rec

    # -- the loop ------------------------------------------------------------
    def run(
        self,
        verbose: bool = False,
        recorder=None,
        resume: dict | None = None,
        stop_after_rounds: int | None = None,
        profiler=None,
    ) -> History:
        """Process events until the policy stops scheduling.

        Args:
            recorder: optional :class:`~repro.observe.RunRecorder`; every
                typed event becomes a journal record and round boundaries
                snapshot resumable state.
            resume: a snapshot dict (:func:`repro.observe.snapshot_core`) to
                continue from instead of starting fresh; the policy's
                ``begin`` is skipped — its packed mid-run state rides in.
            stop_after_rounds: checkpoint-and-stop once the history holds
                this many records (a round boundary); ``core.stopped`` tells
                a stopped run apart from a completed one.
            profiler: optional :class:`~repro.observe.HotPathProfiler`; hot
                sites feed it per-phase wall counters (pure observation —
                profiled runs stay bit-identical) and recorded runs journal
                its summary as a ``profile`` record.
        """
        ctx, algo = self.ctx, self.algorithm
        self.verbose = verbose
        self.recorder = recorder
        self.profiler = profiler
        self.stopped = False
        t_wall = time.perf_counter()
        algo.setup(ctx)
        self.x = ctx.x0.copy()
        self.history = History(algorithm=getattr(algo, "name", type(algo).__name__))
        self.clock = VirtualClock()
        self._seq = 0
        # round policies keep state inside the live algorithm when the
        # backend shares it; any remote backend needs the store to ship
        # per-client state through the job contract
        self.state_store = ClientStateStore(
            algo,
            ctx.num_clients,
            active=self.policy.uses_state_store or not self.backend.shares_state,
        )
        self.state_store.capture_initial()

        if resume is not None:
            # everything begin() would initialize is overwritten wholesale
            # by the snapshot (pending events included), so it is skipped
            from repro.observe.snapshot import restore_core

            restore_core(self, resume)
        else:
            self.policy.begin(self)
        if recorder is not None:
            recorder.begin(self, resumed=resume is not None)
        n_records = len(self.history.records)
        while len(self.clock):
            ev = self.clock.pop()
            payload = ev.data["event"]
            if isinstance(payload, Completion):
                if recorder is not None:
                    # before the handler: staleness reads the pre-apply version
                    recorder.on_completion(self, payload, ev.time)
                if profiler is not None:
                    profiler.completions += 1
                self.policy.on_completion(self, payload, ev.time)
            elif isinstance(payload, DeadlineTick):
                if recorder is not None:
                    recorder.on_tick(self, payload)
                self.policy.on_deadline(self, payload)
            else:  # pragma: no cover - policies only post the two kinds above
                raise TypeError(f"unknown event payload {payload!r}")
            if len(self.history.records) > n_records:
                # a round boundary: the next round's opening event is already
                # in the heap, so a snapshot taken here resumes seamlessly
                n_records = len(self.history.records)
                if recorder is not None:
                    recorder.on_round(self)
                if (
                    stop_after_rounds is not None
                    and n_records >= stop_after_rounds
                    and len(self.clock)
                ):
                    self.stopped = True
                    if recorder is not None:
                        recorder.on_stop(self)
                    self.clock.clear()
                    break
        self.policy.finish(self)
        if profiler is not None:
            # close before recorder.finish so the journaled profile record
            # carries the final wall total and the recorder's own overhead
            profiler.finish(
                time.perf_counter() - t_wall,
                journal_seconds=recorder.hook_seconds if recorder is not None else 0.0,
            )
        if recorder is not None:
            recorder.finish(self)
        return self.history


class _RoundPolicy:
    """Skeleton shared by the barrier and deadline policies.

    A round is two ticks: ``open`` samples the cohort, computes its updates
    in cohort order and schedules their completions plus the ``close`` tick;
    completions popped in between stash; ``close`` merges the stash (current
    round sorted back to cohort order, trickled arrivals appended in arrival
    order), aggregates, records and opens the next round.
    """

    uses_state_store = False

    def begin(self, core: EventCore) -> None:
        self._stash: list[Completion] = []
        self._late_stash: list[tuple[int, object]] = []
        self._pending_late = 0
        self.reset_scheduling(core)
        core.post(0.0, DeadlineTick(0, "open"))

    def reset_scheduling(self, core: EventCore) -> None:
        """Forget adapted scheduling state so re-runs reproduce run one."""
        if core.client_sampler is not None and hasattr(core.client_sampler, "reset"):
            core.client_sampler.reset()

    def on_completion(self, core: EventCore, comp: Completion, now: float) -> None:
        self._stash.append(comp)
        if comp.dispatch.late:
            self._pending_late -= 1

    def on_deadline(self, core: EventCore, tick: DeadlineTick) -> None:
        if tick.phase == "open":
            self.open_round(core, tick.round_idx)
        else:
            self.close_round(core, tick.round_idx)

    def finish(self, core: EventCore) -> None:
        pass

    # subclasses implement
    def open_round(self, core: EventCore, r: int) -> None:
        raise NotImplementedError

    def close_round(self, core: EventCore, r: int) -> None:
        raise NotImplementedError


class BarrierPolicy(_RoundPolicy):
    """Lock-step synchronous rounds (the classic FedAvg loop).

    Every cohort member is dispatched at virtual delay 0, so completions pop
    in cohort order before the barrier tick; no latency model, no timing
    fields — histories are plain :class:`RoundRecord` sequences, bit-equal
    to the retired ``FederatedSimulation`` loop.
    """

    def open_round(self, core: EventCore, r: int) -> None:
        self._t0 = time.perf_counter()
        selected = core.select_cohort(r)
        self._selected = selected
        results = core.run_cohort(r, selected)
        # the cohort's zero-delay completions enter the clock as one batch
        # (heapify instead of per-event pushes); pop order is unchanged —
        # (time, seq) keys are identical to sequential core.post calls, and
        # each dispatch is journaled before its event is queued, as before
        rec = core.recorder
        entries = []
        for i, (k, res) in enumerate(zip(selected, results)):
            d = Dispatch(
                seq=core.next_seq(), client_id=int(k), round_idx=r,
                issued_at=core.clock.now, cohort_pos=i, x_ref=core.x,
            )
            comp = Completion(d, 0.0, update=res.update)
            if rec is not None:
                rec.on_dispatch(core, d, 0.0)
            entries.append((0.0, d.client_id, {"event": comp}))
        core.clock.push_many(entries)
        core.post(0.0, DeadlineTick(r, "close"))

    def close_round(self, core: EventCore, r: int) -> None:
        ctx, cfg, algo = core.ctx, core.ctx.config, core.algorithm
        updates = [c.update for c in self._stash]  # pop order == cohort order
        self._stash = []
        core.x = algo.aggregate(ctx, r, self._selected, updates, core.x)
        rec = RoundRecord(
            round=r, selected=self._selected, wall_time=time.perf_counter() - self._t0
        )
        do_eval = (r % cfg.eval_every == 0) or (r == cfg.rounds - 1)
        core.record(rec, do_eval, r)
        if core.verbose and not np.isnan(rec.test_accuracy):
            print(f"[{core.history.algorithm}] round {r:4d}  acc={rec.test_accuracy:.4f}")
        if r + 1 < cfg.rounds:
            core.post(0.0, DeadlineTick(r + 1, "open"))


class DeadlinePolicy(_RoundPolicy):
    """Deadline-based semi-synchronous rounds on the virtual clock.

    Args:
        latency_model: bound model pricing each sampled client's response.
        deadline: fixed round deadline in virtual seconds, or None to wait
            for the slowest client (pure synchronous timing).
        deadline_controller: optional adaptive controller; wins over
            ``deadline`` (which then only seeds it).
        late_weight: ``"downweight"`` mode's scale on late displacements
            (0 drops them without computing).
        late_policy: ``"downweight"`` merges late clients into their own
            round (the historical approximation); ``"trickle"`` keeps their
            completions in the event queue and merges each into the round
            open at its actual arrival (leftovers at the end of the run are
            abandoned and counted).
    """

    def __init__(
        self,
        latency_model,
        deadline: float | None = None,
        deadline_controller=None,
        late_weight: float = 0.0,
        late_policy: str = "downweight",
    ) -> None:
        if late_policy not in LATE_POLICIES:
            raise ValueError(
                f"late_policy must be one of {LATE_POLICIES}, got {late_policy!r}"
            )
        if late_policy == "trickle" and late_weight != 0.0:
            raise ValueError(
                "late_weight only applies to late_policy='downweight' "
                "(trickled updates merge at full weight when they arrive)"
            )
        self.latency_model = latency_model
        self.deadline = deadline
        self.deadline_controller = deadline_controller
        self.late_weight = late_weight
        self.late_policy = late_policy

    def reset_scheduling(self, core: EventCore) -> None:
        super().reset_scheduling(core)
        if self.deadline_controller is not None:
            self.deadline_controller.reset()

    def round_latencies(self, num_clients: int, round_idx: int, selected) -> np.ndarray:
        """Priced cohort response times (unique stream per (round, k)).

        The single home of the latency-stream keying; the engine facade's
        public ``round_latencies`` delegates here so benchmarks calibrating
        deadlines from it can never drift from what the rounds price.
        Draws batch through :meth:`~repro.runtime.clock.LatencyModel
        .sample_many` (bit-equal to the per-client loop it replaced).
        """
        ids = np.asarray(selected, dtype=np.int64)
        return self.latency_model.sample_many(ids, round_idx * num_clients + ids)

    def open_round(self, core: EventCore, r: int) -> None:
        ctx = core.ctx
        sampler = core.client_sampler
        self._t0 = time.perf_counter()
        selected = core.select_cohort(r)
        latencies = self.round_latencies(ctx.num_clients, r, selected)
        if self.deadline_controller is not None:
            deadline = self.deadline_controller.start(latencies)
        else:
            deadline = self.deadline
        if deadline is None:
            on_time = np.ones(len(selected), dtype=bool)
            round_time = float(latencies.max())
        else:
            on_time = latencies <= deadline
            if not on_time.any():
                # empty round: keep the fastest client and wait for it, so
                # the clock reflects the forced overrun
                keep = int(np.argmin(latencies))
                on_time[keep] = True
                round_time = float(latencies[keep])
                logger.warning(
                    "round %d: no client met the %.2fs deadline; forcing the "
                    "fastest (client %d, %.2fs) to avoid an empty round",
                    r, deadline, int(selected[keep]), round_time,
                )
            elif on_time.all():
                round_time = float(latencies.max())
            else:
                # the server closes at the deadline, dropping the tail
                round_time = deadline
        if self.deadline_controller is not None:
            self.deadline_controller.observe(int((~on_time).sum()), len(selected))
        if sampler is not None and hasattr(sampler, "observe"):
            # feed priced completions back (stragglers included: the server
            # eventually learns their speed, independent of the deadline)
            for i, k in enumerate(selected):
                sampler.observe(int(k), float(latencies[i]))

        trickle = self.late_policy == "trickle"
        if trickle:
            include = np.ones(len(selected), dtype=bool)
        elif self.late_weight == 0.0:
            include = on_time
        else:
            include = np.ones(len(selected), dtype=bool)

        # the shared busy-mask helper replaces the per-round index-list
        # comprehension (one flatnonzero over the include mask)
        positions = mask_positions(include)
        results = core.run_cohort(r, np.asarray(selected)[positions])
        for i, res in zip(positions, results):
            k, u = int(selected[i]), res.update
            if not on_time[i] and not trickle:
                u.displacement = u.displacement * self.late_weight
            d = Dispatch(
                seq=core.next_seq(), client_id=k, round_idx=r,
                issued_at=core.clock.now, cohort_pos=i, late=not on_time[i],
                x_ref=core.x,
            )
            if on_time[i]:
                core.post(latencies[i], Completion(d, float(latencies[i]), update=u),
                          client_id=k)
            elif trickle:
                # the honest event path: the update arrives when it arrives
                core.post(latencies[i], Completion(d, float(latencies[i]), update=u),
                          client_id=k)
                self._pending_late += 1
            else:
                # the same-round approximation merges an update *before* its
                # arrival time — inexpressible as an event, hence no queue
                self._late_stash.append((i, u))
        core.post(round_time, DeadlineTick(r, "close"))
        self._round_meta = (selected, on_time, deadline, round_time)

    def close_round(self, core: EventCore, r: int) -> None:
        ctx, cfg, algo = core.ctx, core.ctx.config, core.algorithm
        sampler = core.client_sampler
        selected, on_time, deadline, round_time = self._round_meta

        current = [c for c in self._stash if c.dispatch.round_idx == r and not c.dispatch.late]
        trickled = [c for c in self._stash if c.dispatch.late]
        self._stash = []
        # current-round completions sort back to cohort order (aggregation
        # and loss feedback stay bit-identical to the synchronous loops);
        # downweighted late updates interleave at their cohort positions
        merged = sorted(
            [(c.dispatch.cohort_pos, c.update) for c in current] + self._late_stash
        )
        self._late_stash = []
        updates = [u for _, u in merged] + [c.update for c in trickled]
        included_ids = [int(u.client_id) for u in updates]

        if sampler is not None and hasattr(sampler, "observe_loss"):
            # Oort statistical utility: participants report their local
            # training loss back (dropped clients never trained)
            for u in updates:
                if "train_loss" in u.extras:
                    sampler.observe_loss(int(u.client_id), float(u.extras["train_loss"]))

        core.x = algo.aggregate(
            ctx, r, np.asarray(included_ids, dtype=np.int64), updates, core.x
        )

        n_late = int((~on_time).sum())
        rec = TimedRoundRecord(
            round=r,
            selected=np.asarray(included_ids, dtype=np.int64),
            wall_time=time.perf_counter() - self._t0,
            virtual_time=core.clock.now,
            staleness=float(n_late),
            concurrency=float(len(selected)),
            updates_applied=r + 1,
        )
        rec.extras["n_late"] = n_late
        rec.extras["n_dropped"] = (
            0 if self.late_policy == "trickle"
            else int(len(selected) - len(included_ids))
        )
        if deadline is not None:
            rec.extras["deadline"] = float(deadline)
        if self.late_policy == "trickle":
            rec.extras["n_trickled_in"] = len(trickled)
            rec.extras["n_pending"] = self._pending_late
            if r == cfg.rounds - 1 and self._pending_late:
                # the server stops here; in-flight late updates are lost
                rec.extras["n_abandoned"] = self._pending_late
                logger.warning(
                    "final round %d closed with %d trickled update(s) still "
                    "in flight; they are abandoned",
                    r, self._pending_late,
                )
        do_eval = (r % cfg.eval_every == 0) or (r == cfg.rounds - 1)
        core.record(rec, do_eval, r)
        if core.verbose and not np.isnan(rec.test_accuracy):
            print(
                f"[{core.history.algorithm}] round {r:4d}  t={core.clock.now:9.2f}s  "
                f"acc={rec.test_accuracy:.4f}  late={n_late}"
            )
        if r + 1 < cfg.rounds:
            core.post(0.0, DeadlineTick(r + 1, "open"))
        else:
            # drop still-flying trickle completions without letting them
            # advance the clock past the final round's close
            core.clock.clear()


class AsyncPolicy:
    """Continuous staleness-aware dispatch (FedAsync / FedBuff).

    The direct translation of the retired ``AsyncFederatedSimulation`` loop
    onto the core: a bounded population of in-flight dispatches, each
    completion applied through ``server_apply`` and immediately replaced.
    Additions over the old loop, all default-off so existing runs stay
    bit-identical:

    * ``sampler`` — a :class:`~repro.runtime.scheduling.TimeAwareSampler`
      consulted per dispatch (``pick_next(idle, now)``) instead of the
      uniform idle draw, fed priced latencies and training losses as
      completions land;
    * stateful per-client methods — when the algorithm declares
      ``stateful_per_client``, dispatches snapshot the client's state from
      the core's :class:`ClientStateStore` and completions commit it (the
      job contract ships the state, so this works on every backend);
    * BatchNorm-style buffers — instead of freezing at their initial
      values, the server keeps an exponential moving average over arriving
      clients' post-training buffers.  ``buffer_ema="fixed"`` blends at the
      constant rate ``1/window``; ``"staleness"`` discounts stale arrivals
      at ``1/(window * (1 + tau))``, mirroring the parameter rule's
      polynomial staleness treatment.

    Compute scheduling: every dispatch builds its :class:`ClientJob` from
    *dispatch-time* server state (broadcast vector, packed client state, a
    copy of the buffer EMA, packed broadcast state).  With ``streaming``
    on (the default) and a backend that does not share live state, the job
    is submitted the moment the dispatch is issued — workers compute while
    the event loop keeps processing — and ``on_completion`` collects it
    when its virtual arrival pops.  With streaming off (or on the serial
    backend) jobs accumulate and run as one lazy batch at first need.
    Because the job inputs are identical either way and results always
    apply in virtual-time completion order, the two paths produce
    bit-identical histories (``tests/test_backends.py`` pins this).
    """

    uses_state_store = True

    def __init__(
        self,
        latency_model,
        window: int,
        concurrency: int,
        max_updates: int,
        concurrency_controller=None,
        sampler=None,
        buffer_ema: str = "fixed",
        streaming: bool = True,
        fast_path: bool = True,
    ) -> None:
        if buffer_ema not in BUFFER_EMA_MODES:
            raise ValueError(
                f"buffer_ema must be one of {BUFFER_EMA_MODES}, got {buffer_ema!r}"
            )
        self.latency_model = latency_model
        self.window = int(window)
        self.concurrency = int(concurrency)
        self.max_updates = int(max_updates)
        self.concurrency_controller = concurrency_controller
        self.sampler = sampler
        self.buffer_ema = buffer_ema
        self.streaming = bool(streaming)
        #: vectorized dispatch planning (idle tracker + batched latency
        #: draws + batched heap insertion); bit-identical to the scalar
        #: per-dispatch path, so on by default — the knob is a debugging
        #: opt-out (runtime.fast_path / REPRO_FAST_PATH)
        self.fast_path = bool(fast_path)
        # set here as well as in begin() so resumed runs (begin is skipped;
        # pre-streaming snapshots carry neither attribute) stay runnable
        self._handles: dict[int, object] = {}
        self._jobs: dict[int, ClientJob] = {}
        self._burst: list[tuple[int, ClientJob]] = []
        self._tracker: IdleTracker | None = None

    # -- lifecycle -----------------------------------------------------------
    def begin(self, core: EventCore) -> None:
        if self.concurrency_controller is not None:
            # restart from the seeded limit so a re-run reproduces the first
            self.concurrency_controller.reset()
            self.concurrency = self.concurrency_controller.limit
        if self.sampler is not None and hasattr(self.sampler, "reset"):
            self.sampler.reset()
        ctx = core.ctx
        self._in_flight: dict[int, Dispatch] = {}
        self._pending: list[Dispatch] = []
        self._results: dict[int, tuple] = {}
        self._handles = {}
        self._jobs = {}
        self._busy: dict[int, int] = {}
        self._state = {"dispatched": 0, "version": 0, "applied": 0}
        self._completed = 0
        self._round_idx = 0
        self._win_tau: list[float] = []
        self._win_conc: list[int] = []
        self._win_clients: list[int] = []
        # live server-side buffer estimate: an EMA over arrivals, shipped to
        # every job through the contract (so it works on every backend)
        buf0 = ctx.model.get_buffers(copy=True) if ctx.model.buffers else None
        self._buffers = buf0
        self._burst = []
        self._tracker = IdleTracker(ctx.num_clients) if self.fast_path else None
        self._t0 = time.perf_counter()
        self._issue(core, min(self.concurrency, self.max_updates))
        self._submit_burst(core)

    def finish(self, core: EventCore) -> None:
        pass

    def on_deadline(self, core: EventCore, tick) -> None:  # pragma: no cover
        raise TypeError("the async policy schedules no deadline ticks")

    # -- dispatch ------------------------------------------------------------
    def _issue(self, core: EventCore, n: int) -> None:
        """Issue ``n`` dispatches: one vectorized planning pass when the
        fast path is on, else ``n`` scalar :meth:`dispatch` calls."""
        if n <= 0:
            return
        if self.fast_path:
            self._dispatch_many(core, n)
        else:
            for _ in range(n):
                self.dispatch(core)

    def _tracker_for(self, core: EventCore) -> IdleTracker:
        """The idle tracker, rebuilt lazily from ``_busy`` when absent.

        Runs resumed from snapshots that predate the fast path (and
        policies whose ``fast_path`` was flipped after construction) land
        here with ``_tracker`` unset; the tracker is pure densified
        ``_busy`` state, so rebuilding it mid-run is exact.
        """
        tracker = getattr(self, "_tracker", None)
        if tracker is None:
            tracker = IdleTracker(core.ctx.num_clients, busy=self._busy)
            self._tracker = tracker
        return tracker

    def _dispatch_many(self, core: EventCore, n: int) -> None:
        """Vectorized dispatch planning: one pass for an ``n``-dispatch burst.

        Bit-identical to ``n`` scalar :meth:`dispatch` calls (pinned by
        ``tests/test_fastpath.py``): picks stay sequential — each draw must
        see the busy marks of the ones before it — but the O(population)
        idle-list rebuild becomes an O(log N) Fenwick rank lookup, the
        latency draws batch through ``sample_many``, and the completion
        events enter the clock through one ``push_many``.  Within a burst
        ``clock.now`` is frozen and state snapshots are read-only, so
        regrouping picks/draws/hooks/pushes across the burst's dispatches
        is unobservable in both the history and the journal.
        """
        ctx, cfg = core.ctx, core.ctx.config
        st, busy = self._state, self._busy
        prof = core.profiler
        tracker = self._tracker_for(core)
        t0 = time.perf_counter() if prof is not None else 0.0
        seq0 = st["dispatched"]
        cids: list[int] = []
        for i in range(n):
            if self.sampler is None:
                # choose among idle clients with a stream keyed by dispatch
                # index, so the schedule is independent of execution details
                rng = keyed_rng(cfg.seed, 0xA7, seq0 + i)
                if tracker.n_idle > 0:
                    # rank draw -> j-th smallest idle id, which is exactly
                    # what indexing the scalar path's ascending idle
                    # comprehension returned
                    cid = tracker.kth_idle(int(rng.integers(tracker.n_idle)))
                else:  # concurrency exceeds the client pool
                    cid = int(rng.integers(ctx.num_clients))
            else:
                ids = tracker.idle_ids()
                if ids.size == 0:
                    ids = np.arange(ctx.num_clients, dtype=np.int64)
                cid = int(self.sampler.pick_next(ids, core.clock.now))
            cids.append(cid)
            busy[cid] = busy.get(cid, 0) + 1
            tracker.mark_busy(cid)
        st["dispatched"] = seq0 + n
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("pick", t1 - t0)
            t0 = t1
        store, rec = core.state_store, core.recorder
        # the store's activity is run-constant; hoisting the check lets the
        # inactive (stateless) case skip two method calls per dispatch —
        # snapshot() returns None and version() returns 0 when inactive
        store_active = store.active
        if n == 1:
            # steady-state refills are single dispatches: the scalar draw is
            # what sample_many reduces to (pinned), the single schedule() is
            # what push_many reduces to, and no burst lists are built
            cid = cids[0]
            lat = float(self.latency_model.latency(cid, seq0))
            if prof is not None:
                t1 = time.perf_counter()
                prof.add("latency", t1 - t0)
                t0 = t1
            d = Dispatch(
                seq=seq0, client_id=cid, round_idx=seq0,
                issued_at=core.clock.now,
                version=st["version"], x_ref=core.x,
                state=store.snapshot(cid) if store_active else None,
                state_version=store.version(cid) if store_active else 0,
            )
            self._in_flight[seq0] = d
            if rec is not None:
                rec.on_dispatch(core, d, lat)
            core.clock.schedule(lat, client_id=cid, event=Completion(d, lat))
            if prof is not None:
                t1 = time.perf_counter()
                prof.add("heap", t1 - t0)
                prof.dispatches += 1
                t0 = t1
            job = self._make_job(core, d)
            if self._streaming_active(core):
                self._burst.append((seq0, job))
            else:
                self._pending.append(d)
                self._jobs[seq0] = job
            if prof is not None:
                prof.add("job_build", time.perf_counter() - t0)
            return
        lats = self.latency_model.sample_many(
            np.asarray(cids, dtype=np.int64),
            np.arange(seq0, seq0 + n, dtype=np.int64),
        )
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("latency", t1 - t0)
            t0 = t1
        now = core.clock.now
        dispatches: list[Dispatch] = []
        entries: list[tuple[float, int, dict]] = []
        for i in range(n):
            cid, seq, lat = cids[i], seq0 + i, float(lats[i])
            d = Dispatch(
                seq=seq, client_id=cid, round_idx=seq, issued_at=now,
                version=st["version"], x_ref=core.x,
                state=store.snapshot(cid) if store_active else None,
                state_version=store.version(cid) if store_active else 0,
            )
            dispatches.append(d)
            self._in_flight[seq] = d
            if rec is not None:
                rec.on_dispatch(core, d, lat)
            entries.append((lat, cid, {"event": Completion(d, lat)}))
        core.clock.push_many(entries)
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("heap", t1 - t0)
            prof.dispatches += n
            t0 = t1
        streaming = self._streaming_active(core)
        for d in dispatches:
            job = self._make_job(core, d)
            if streaming:
                self._burst.append((d.seq, job))
            else:
                self._pending.append(d)
                self._jobs[d.seq] = job
        if prof is not None:
            prof.add("job_build", time.perf_counter() - t0)

    def dispatch(self, core: EventCore) -> None:
        """Scalar single-dispatch path (``fast_path`` off; kept bit-equal
        to :meth:`_dispatch_many` with ``n=1`` by the fast-path tests)."""
        ctx, cfg = core.ctx, core.ctx.config
        st, busy = self._state, self._busy
        prof = core.profiler
        t0 = time.perf_counter() if prof is not None else 0.0
        avail = np.array(
            [k for k in range(ctx.num_clients) if not busy.get(k)], dtype=np.int64
        )
        if avail.size == 0:  # concurrency exceeds the client pool
            avail = np.arange(ctx.num_clients, dtype=np.int64)
        if self.sampler is None:
            # choose among idle clients with a stream keyed by dispatch
            # index, so the schedule is independent of execution details
            rng = keyed_rng(cfg.seed, 0xA7, st["dispatched"])
            cid = int(avail[rng.integers(avail.size)])
        else:
            cid = int(self.sampler.pick_next(avail, core.clock.now))
        seq = st["dispatched"]
        st["dispatched"] += 1
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("pick", t1 - t0)
            t0 = t1
        lat = self.latency_model.latency(cid, seq)
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("latency", t1 - t0)
            t0 = t1
        d = Dispatch(
            seq=seq, client_id=cid, round_idx=seq, issued_at=core.clock.now,
            version=st["version"], x_ref=core.x,
            state=core.state_store.snapshot(cid),
            state_version=core.state_store.version(cid),
        )
        core.post(lat, Completion(d, float(lat)), client_id=cid)
        self._in_flight[seq] = d
        busy[cid] = busy.get(cid, 0) + 1
        tracker = getattr(self, "_tracker", None)
        if tracker is not None:
            tracker.mark_busy(cid)
        if prof is not None:
            t1 = time.perf_counter()
            prof.add("heap", t1 - t0)
            prof.dispatches += 1
            t0 = t1
        job = self._make_job(core, d)
        if self._streaming_active(core):
            # eager hand-off: workers start computing while the event loop
            # keeps processing; the result still applies at virtual arrival.
            # Dispatches issued back-to-back (the begin() prime, a refill
            # burst after a completion) accumulate and go to the backend as
            # one submit_many at the end of the burst, so batching
            # transports amortize a round-trip across them.
            self._burst.append((seq, job))
        else:
            self._pending.append(d)
            self._jobs[seq] = job
        if prof is not None:
            prof.add("job_build", time.perf_counter() - t0)

    def _submit_burst(self, core: EventCore) -> None:
        """Hand the accumulated dispatch burst to the backend in one call."""
        if not self._burst:
            return
        prof = core.profiler
        t0 = time.perf_counter() if prof is not None else 0.0
        seqs = [s for s, _ in self._burst]
        handles = core.submit_jobs([j for _, j in self._burst])
        self._burst = []
        self._handles.update(zip(seqs, handles))
        if prof is not None:
            prof.add("submit", time.perf_counter() - t0)

    def _make_job(self, core: EventCore, d: Dispatch) -> ClientJob:
        """Build the dispatch's job from *dispatch-time* server state.

        Every input is stamped when the dispatch is issued: the broadcast
        vector and client state come off the dispatch, the buffer EMA is
        copied (it mutates in place as later completions land) and the
        broadcast state packed (a deep copy).  Streaming and lazy-batch
        execution therefore see identical inputs, which is what keeps their
        histories bit-identical.
        """
        buffers = (
            {k: v.copy() for k, v in self._buffers.items()}
            if self._buffers is not None
            else None
        )
        job = ClientJob(
            round_idx=d.round_idx,
            client_id=d.client_id,
            x_ref=d.x_ref,
            client_state=d.state,
            buffers=buffers,
            broadcast_state=core.algorithm.pack_broadcast_state() or None,
        )
        if core.recorder is not None:
            # queue wait anchors at dispatch — when the work logically
            # enqueues — not at whenever a lazy flush reaches the backend
            job = replace(job, collect_timing=True, submitted_at=time.monotonic())
        return job

    def _streaming_active(self, core: EventCore) -> bool:
        # live-state backends keep the lazy-batch path: in-process compute
        # has nothing to overlap with, and batching amortizes bookkeeping
        return self.streaming and not core.backend.shares_state

    def _drain(self, core: EventCore, block: bool = False) -> None:
        """Move finished streaming jobs from the backend into ``_results``."""
        if not self._handles:
            return
        by_handle = {h: seq for seq, h in self._handles.items()}
        for handle, res in core.collect_jobs(list(by_handle), block=block):
            seq = by_handle[handle]
            self._results[seq] = res
            del self._handles[seq]

    def _obtain(self, core: EventCore, seq: int):
        """The result for dispatch ``seq``: cached, collected, or computed."""
        res = self._results.pop(seq, None)
        if res is not None:
            return res
        # a burst never stays unsubmitted across event-loop steps (every
        # dispatch site flushes it), but submit defensively before looking
        # the handle up so _obtain can never miss a burst-parked job
        if self._burst:
            self._submit_burst(core)
        if seq in self._handles:
            # sweep everything already finished, then wait on the one needed
            self._drain(core, block=False)
            if seq not in self._handles:
                return self._results.pop(seq)
            handle = self._handles.pop(seq)
            ((_, res),) = core.collect_jobs([handle], block=True)
            return res
        pending = self._pending
        if len(pending) == 1 and pending[0].seq == seq:
            # steady-state lazy path: each completion computes exactly the
            # job its refill dispatched, so the batch scaffolding (pending
            # zip, _results round-trip) reduces to one direct execution —
            # with the same stale-broadcast-state restore flush() does
            self._pending = []
            job = self._jobs.pop(seq)
            restore = None
            if core.backend.shares_state and job.broadcast_state is not None:
                restore = core.algorithm.pack_broadcast_state()
            (res,) = core.run_backend_jobs([job])
            if restore is not None:
                core.algorithm.unpack_broadcast_state(restore)
            return res
        self.flush(core)
        return self._results.pop(seq)

    def prepare_snapshot(self, core: EventCore) -> None:
        """Materialize in-flight streaming jobs before state is pickled.

        Backend futures are not picklable.  Jobs are pure functions of
        their stamped inputs, so collecting them early changes nothing but
        wall-clock overlap; lazy-batch jobs (``_jobs``) are plain data and
        simply ride the snapshot.
        """
        self._submit_burst(core)
        self._drain(core, block=True)

    def flush(self, core: EventCore) -> None:
        """Compute every pending dispatch through the execution backend.

        The lazy-batch path (streaming off, and always the serial backend):
        dispatches accumulate until a completion needs a result, so
        FedBuff-style runs batch many jobs per backend call.  Jobs carry
        dispatch-time broadcast state; when the backend executes against
        the *live* algorithm those stale snapshots unpack into it, so the
        current server state is saved first and restored after the batch.
        """
        if not self._pending:
            return
        jobs = [self._jobs.pop(d.seq) for d in self._pending]
        restore = None
        if core.backend.shares_state and any(
            j.broadcast_state is not None for j in jobs
        ):
            restore = core.algorithm.pack_broadcast_state()
        results = core.run_backend_jobs(jobs)
        if restore is not None:
            core.algorithm.unpack_broadcast_state(restore)
        for d, res in zip(self._pending, results):
            self._results[d.seq] = res
        self._pending = []

    # -- completions ---------------------------------------------------------
    def on_completion(self, core: EventCore, comp: Completion, now: float) -> None:
        ctx, algo = core.ctx, core.algorithm
        st = self._state
        seq = comp.dispatch.seq
        prof = core.profiler
        t0 = time.perf_counter() if prof is not None else 0.0
        res = self._obtain(core, seq)
        if prof is not None:
            prof.add("collect", time.perf_counter() - t0)
        update, new_state, client_bufs = res.update, res.new_state, res.buffers
        d = self._in_flight.pop(seq)
        cid = d.client_id
        if new_state is not None:  # commit() is a no-op for None state
            core.state_store.commit(cid, new_state, expected_version=d.state_version)
        if self._busy.get(cid, 0) <= 1:
            self._busy.pop(cid, None)
        else:
            self._busy[cid] -= 1
        tracker = getattr(self, "_tracker", None)
        if tracker is not None:
            tracker.mark_idle(cid)

        tau = st["version"] - d.version
        if prof is not None:
            t0 = time.perf_counter()
        x_new = algo.server_apply(ctx, core.x, update, tau, d.x_ref)
        if prof is not None:
            prof.add("apply", time.perf_counter() - t0)
        if x_new is not None:
            core.x = x_new
            st["version"] += 1
            st["applied"] += 1
        self._completed += 1
        self._win_tau.append(float(tau))
        self._win_conc.append(len(self._in_flight) + 1)
        self._win_clients.append(cid)
        if self._buffers is not None and client_bufs is not None:
            # EMA over arriving clients' buffer statistics; the staleness
            # mode discounts stale arrivals like the parameter rule does
            if self.buffer_ema == "staleness":
                beta = 1.0 / (self.window * (1.0 + max(float(tau), 0.0)))
            else:
                beta = 1.0 / self.window
            for k, v in client_bufs.items():
                self._buffers[k] += beta * (v - self._buffers[k])
        if self.sampler is not None:
            self.sampler.observe(cid, float(comp.latency))
            if hasattr(self.sampler, "observe_loss") and "train_loss" in update.extras:
                self.sampler.observe_loss(cid, float(update.extras["train_loss"]))

        if self.concurrency_controller is not None:
            limit = self.concurrency_controller.observe(float(tau))
        else:
            limit = self.concurrency
        # refill up to the (possibly AIMD-adjusted) in-flight limit; when the
        # limit drops, replacements pause until the population drains.  Each
        # dispatch shrinks both headrooms by one, so the burst size is just
        # the smaller of the two — equivalent to the old per-dispatch loop.
        self._issue(
            core,
            min(self.max_updates - st["dispatched"], limit - len(self._in_flight)),
        )
        self._submit_burst(core)

        if self._completed % self.window == 0 or self._completed == self.max_updates:
            self.close_window(core)

    def close_window(self, core: EventCore) -> None:
        ctx, cfg, algo = core.ctx, core.ctx.config, core.algorithm
        st = self._state
        if self._completed == self.max_updates:
            x_final = algo.finalize(ctx, core.x)
            if x_final is not None:
                core.x = x_final
                st["version"] += 1
                st["applied"] += 1
        round_idx = self._round_idx
        rec = TimedRoundRecord(
            round=round_idx,
            selected=np.asarray(self._win_clients, dtype=np.int64),
            wall_time=time.perf_counter() - self._t0,
            virtual_time=core.clock.now,
            staleness=float(np.mean(self._win_tau)),
            concurrency=float(np.mean(self._win_conc)),
            updates_applied=st["applied"],
        )
        self._t0 = time.perf_counter()
        do_eval = (round_idx % cfg.eval_every == 0) or (
            self._completed == self.max_updates
        )
        if do_eval and self._buffers is not None:
            ctx.model.set_buffers(self._buffers)
        rec.extras["concurrency_limit"] = (
            self.concurrency_controller.limit
            if self.concurrency_controller is not None
            else self.concurrency
        )
        if core.state_store.active:
            # cumulative count of commits that raced a concurrent
            # self-dispatch (oversubscribed stateful dispatch, see
            # ClientStateStore.commit); keyed off the store so stateless
            # histories keep their exact pre-existing extras schema
            rec.extras["state_stale_commits"] = core.state_store.stale_commits
        prof = core.profiler
        t0 = time.perf_counter() if prof is not None else 0.0
        core.record(rec, do_eval, round_idx)
        if prof is not None:
            prof.add("eval", time.perf_counter() - t0)
        if core.verbose and not np.isnan(rec.test_accuracy):
            print(
                f"[{core.history.algorithm}] window {round_idx:4d}  "
                f"t={core.clock.now:9.2f}s  acc={rec.test_accuracy:.4f}  "
                f"stale={rec.staleness:.2f}"
            )
        self._round_idx += 1
        self._win_tau, self._win_conc, self._win_clients = [], [], []
